//! Admission control: per-tenant fairness quotas and whole-server
//! overload rejection, applied before a request touches the dispatch
//! path.
//!
//! Two independent knobs (see [`AdmissionConfig`]):
//!
//! * **Tenant quota** (§3.1 fairness) — a tenant over its concurrent
//!   quota queues FIFO behind its *own* requests instead of starving
//!   other tenants.
//! * **Max in flight** — a hard ceiling on concurrently admitted
//!   requests (queued or executing); beyond it the server sheds load
//!   with [`InvokeError::Overloaded`] instead of building an unbounded
//!   queue. Off by default.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::rc::Rc;

use kaas_simtime::sync::{Semaphore, SemaphoreGuard};

use crate::protocol::InvokeError;

/// Admission-control settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionConfig {
    /// Per-tenant concurrent-invocation quota (§3.1 fairness): a tenant
    /// exceeding it queues FIFO behind its own requests instead of
    /// starving others. `None` disables tenant accounting.
    pub tenant_quota: Option<usize>,
    /// Server-wide cap on concurrently admitted requests; requests
    /// beyond it are rejected with [`InvokeError::Overloaded`]. `None`
    /// (the default) admits everything.
    pub max_in_flight: Option<usize>,
}

/// Applies [`AdmissionConfig`] to incoming requests.
pub(crate) struct AdmissionController {
    config: AdmissionConfig,
    tenants: std::cell::RefCell<BTreeMap<String, Semaphore>>,
    admitted: Rc<Cell<usize>>,
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionController")
            .field("config", &self.config)
            .field("admitted", &self.admitted.get())
            .finish()
    }
}

/// Proof of admission; releases the server-wide slot (and any tenant
/// permit) on drop, on every exit path.
#[derive(Debug)]
pub(crate) struct AdmissionPermit {
    admitted: Rc<Cell<usize>>,
    _tenant: Option<SemaphoreGuard>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.admitted.set(self.admitted.get() - 1);
    }
}

impl AdmissionController {
    pub(crate) fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            tenants: std::cell::RefCell::new(BTreeMap::new()),
            admitted: Rc::new(Cell::new(0)),
        }
    }

    /// Requests currently admitted (queued on a tenant quota or being
    /// dispatched/executed).
    #[cfg(test)]
    pub(crate) fn admitted(&self) -> usize {
        self.admitted.get()
    }

    /// Admits one request: sheds load if the server-wide cap is hit,
    /// then waits for the tenant's quota (FIFO per tenant).
    ///
    /// # Errors
    ///
    /// [`InvokeError::Overloaded`] when `max_in_flight` requests are
    /// already admitted.
    pub(crate) async fn admit(&self, tenant: Option<&str>) -> Result<AdmissionPermit, InvokeError> {
        if let Some(max) = self.config.max_in_flight {
            if self.admitted.get() >= max {
                return Err(InvokeError::Overloaded);
            }
        }
        // Count the request before any quota wait (so queued tenant
        // traffic contributes to overload pressure), releasing through
        // the permit even if this future is dropped mid-wait.
        self.admitted.set(self.admitted.get() + 1);
        let mut permit = AdmissionPermit {
            admitted: Rc::clone(&self.admitted),
            _tenant: None,
        };
        if let (Some(tenant), Some(quota)) = (tenant, self.config.tenant_quota) {
            let sem = self
                .tenants
                .borrow_mut()
                .entry(tenant.to_owned())
                .or_insert_with(|| Semaphore::new(quota))
                .clone();
            permit._tenant = Some(sem.acquire(1).await);
        }
        Ok(permit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_simtime::{sleep, spawn, Simulation};
    use std::time::Duration;

    #[test]
    fn unlimited_by_default() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let ctl = AdmissionController::new(AdmissionConfig::default());
            let mut permits = Vec::new();
            for _ in 0..1000 {
                permits.push(ctl.admit(Some("t")).await.expect("no limits configured"));
            }
            assert_eq!(ctl.admitted(), 1000);
            drop(permits);
            assert_eq!(ctl.admitted(), 0);
        });
    }

    #[test]
    fn overload_sheds_and_recovers() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let ctl = AdmissionController::new(AdmissionConfig {
                tenant_quota: None,
                max_in_flight: Some(2),
            });
            let a = ctl.admit(None).await.unwrap();
            let _b = ctl.admit(None).await.unwrap();
            assert!(matches!(
                ctl.admit(None).await,
                Err(InvokeError::Overloaded)
            ));
            drop(a);
            // Capacity freed: admission resumes.
            assert!(ctl.admit(None).await.is_ok());
        });
    }

    #[test]
    fn tenant_quota_queues_fifo_without_starving_others() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let ctl = Rc::new(AdmissionController::new(AdmissionConfig {
                tenant_quota: Some(1),
                max_in_flight: None,
            }));
            // Tenant A saturates its quota for 10 ms.
            let a1 = ctl.admit(Some("a")).await.unwrap();
            let ctl2 = Rc::clone(&ctl);
            let queued = spawn(async move {
                let start = kaas_simtime::now();
                let _a2 = ctl2.admit(Some("a")).await.unwrap();
                kaas_simtime::now() - start
            });
            sleep(Duration::from_millis(1)).await;
            // Tenant B is unaffected by A's backlog.
            let t0 = kaas_simtime::now();
            let _b = ctl.admit(Some("b")).await.unwrap();
            assert_eq!(kaas_simtime::now(), t0, "tenant b must not wait");
            sleep(Duration::from_millis(9)).await;
            drop(a1);
            let waited = queued.await;
            assert!(waited >= Duration::from_millis(10), "waited {waited:?}");
        });
    }
}
