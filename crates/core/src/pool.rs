//! Runner lifecycle: the [`RunnerPool`] owns every [`RunnerSlot`] —
//! spawning runners onto devices, warm lookup, idle reaping, failure
//! kills, and per-kernel / per-device accounting.
//!
//! The pool is pure mechanism: *when* to start or stop runners is
//! decided by the [scheduler](crate::scheduler) and
//! [autoscaler](crate::autoscaler) policies; the pool only enforces
//! physical placement limits (one runner per device, one per chip on
//! TPUs).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

use kaas_accel::{Device, DeviceClass, DeviceId, MemoryManager};
use kaas_kernels::Kernel;
use kaas_simtime::sync::Event;
use kaas_simtime::{now, sleep, spawn, SimTime, SpanSink};

use crate::server::KernelStats;

use crate::metrics::registry::MetricsRegistry;
use crate::metrics::RunnerId;
use crate::protocol::InvokeError;
use crate::runner::{RunnerConfig, TaskRunner};
use crate::scheduler::SlotView;

/// A runner slot: claimed synchronously at dispatch time, filled by an
/// asynchronous cold start.
pub struct RunnerSlot {
    device: DeviceId,
    claimed: Cell<usize>,
    ready: Event,
    runner: RefCell<Option<Rc<TaskRunner>>>,
    dead: Cell<bool>,
    last_used: Cell<SimTime>,
    consecutive_failures: Cell<u32>,
    /// Shared per-device claim ledger: every guard on any slot of this
    /// device moves the same signed counter, giving the sanitizer an
    /// independent balance to cross-check against the per-slot counts.
    #[cfg(feature = "sim-sanitizer")]
    device_ledger: Rc<Cell<i64>>,
}

impl std::fmt::Debug for RunnerSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunnerSlot")
            .field("device", &self.device)
            .field("claimed", &self.claimed.get())
            .field("warm", &self.is_warm())
            .field("dead", &self.dead.get())
            .finish()
    }
}

impl RunnerSlot {
    /// Device hosting this runner.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// In-flight invocations currently claimed against this slot.
    pub fn claimed(&self) -> usize {
        self.claimed.get()
    }

    /// Whether the runner finished its cold start.
    pub fn is_warm(&self) -> bool {
        self.ready.is_set()
    }

    /// Whether the slot can still serve work (not reaped or failed).
    pub fn is_usable(&self) -> bool {
        !self.dead.get()
    }

    /// Marks the slot dead so no further work routes to it.
    pub(crate) fn retire(&self) {
        self.dead.set(true);
    }

    /// Waits until the cold start completed and returns the runner.
    pub(crate) async fn runner(&self) -> Rc<TaskRunner> {
        self.ready.wait().await;
        self.runner
            .borrow()
            .clone()
            .expect("slot signalled ready without a runner")
    }

    /// Waits until the runner is warm (prewarm path).
    pub(crate) async fn wait_ready(&self) {
        self.ready.wait().await;
    }

    /// Records an invocation completion for idle accounting.
    pub(crate) fn touch(&self) {
        self.last_used.set(now());
    }

    /// Records a successful invocation: resets the failure streak.
    pub(crate) fn record_success(&self) {
        self.consecutive_failures.set(0);
    }

    /// Records a failed invocation; returns `true` when the streak
    /// reached `threshold` and the slot should be quarantined.
    pub(crate) fn record_failure(&self, threshold: u32) -> bool {
        let n = self.consecutive_failures.get() + 1;
        self.consecutive_failures.set(n);
        n >= threshold
    }

    /// A scheduler-facing snapshot of this slot. `resident` starts
    /// false; the dispatcher overlays data-plane residency when the
    /// request references a sealed object.
    fn view(&self, index: usize) -> SlotView {
        SlotView {
            index,
            claimed: self.claimed.get(),
            device: self.device,
            warm: self.is_warm(),
            resident: false,
        }
    }
}

/// RAII claim on a slot's in-flight budget: increments `claimed` on
/// construction and decrements on drop, so the count is released on
/// *every* exit path (success, kernel error, retry, panic).
///
/// When the invocation reads a device-resident object, the guard also
/// holds an in-flight reference on it in the device's memory manager
/// ([`MemoryManager::retain`]) so the operand cannot be evicted while
/// the kernel reads it; the reference releases on the same drop.
#[derive(Debug)]
pub(crate) struct InFlightGuard {
    slot: Rc<RunnerSlot>,
    object: Option<(Rc<MemoryManager>, u64)>,
}

impl InFlightGuard {
    #[cfg(test)]
    pub(crate) fn claim(slot: &Rc<RunnerSlot>) -> Self {
        Self::claim_with_object(slot, None)
    }

    pub(crate) fn claim_with_object(
        slot: &Rc<RunnerSlot>,
        object: Option<(Rc<MemoryManager>, u64)>,
    ) -> Self {
        slot.claimed.set(slot.claimed.get() + 1);
        #[cfg(feature = "sim-sanitizer")]
        slot.device_ledger.set(slot.device_ledger.get() + 1);
        if let Some((mgr, hash)) = &object {
            mgr.retain(*hash);
        }
        InFlightGuard {
            slot: Rc::clone(slot),
            object,
        }
    }
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.slot.claimed.set(self.slot.claimed.get() - 1);
        #[cfg(feature = "sim-sanitizer")]
        self.slot
            .device_ledger
            .set(self.slot.device_ledger.get() - 1);
        if let Some((mgr, hash)) = &self.object {
            mgr.release(*hash);
        }
    }
}

/// Callback dropping a device's cached residency set (see
/// [`RunnerPool::set_residency_invalidator`]).
type ResidencyInvalidator = Rc<dyn Fn(DeviceId)>;

/// Owns every runner slot in a deployment, keyed by kernel name.
pub struct RunnerPool {
    devices: Vec<Device>,
    /// Keyed by kernel name. Deliberately a `BTreeMap`: the pool is
    /// iterated on several paths (stats, device crashes) and replay
    /// determinism requires a stable visit order.
    slots: RefCell<BTreeMap<String, Vec<Rc<RunnerSlot>>>>,
    next_runner: Cell<u32>,
    reaped: Cell<usize>,
    quarantined: Cell<usize>,
    slow_start: Cell<Duration>,
    tracer: Option<SpanSink>,
    /// Bills guest warm-init phases (`guest.cold_start.{full,restore}`
    /// histograms) at cold-start time.
    metrics: Option<MetricsRegistry>,
    /// Called whenever a device's runner process dies (crash, kill,
    /// reap): device memory allocations die with the process, so the
    /// data plane must drop its residency for that device.
    residency_invalidator: RefCell<Option<ResidencyInvalidator>>,
    /// One signed claim counter per device, shared with every slot
    /// spawned on that device (see [`RunnerSlot::device_ledger`]).
    #[cfg(feature = "sim-sanitizer")]
    claim_ledgers: RefCell<BTreeMap<DeviceId, Rc<Cell<i64>>>>,
}

impl std::fmt::Debug for RunnerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunnerPool")
            .field("devices", &self.devices.len())
            .field("kernels", &self.slots.borrow().len())
            .field("reaped", &self.reaped.get())
            .finish()
    }
}

impl RunnerPool {
    /// Creates a pool managing `devices`.
    pub fn new(devices: Vec<Device>) -> Self {
        RunnerPool {
            devices,
            slots: RefCell::new(BTreeMap::new()),
            next_runner: Cell::new(0),
            reaped: Cell::new(0),
            quarantined: Cell::new(0),
            slow_start: Cell::new(Duration::ZERO),
            tracer: None,
            metrics: None,
            residency_invalidator: RefCell::new(None),
            #[cfg(feature = "sim-sanitizer")]
            claim_ledgers: RefCell::new(BTreeMap::new()),
        }
    }

    /// The shared claim ledger for `device`, created on first use.
    #[cfg(feature = "sim-sanitizer")]
    fn device_ledger(&self, device: DeviceId) -> Rc<Cell<i64>> {
        Rc::clone(self.claim_ledgers.borrow_mut().entry(device).or_default())
    }

    /// Sanitizer view: per-device `(device, ledger, per-slot sum)` claim
    /// balances. In a correct run the two counts agree and are never
    /// negative — the ledger moves only through [`InFlightGuard`], the
    /// per-slot counts through the slots themselves.
    #[cfg(feature = "sim-sanitizer")]
    pub fn claim_balances(&self) -> Vec<(DeviceId, i64, i64)> {
        let slots = self.slots.borrow();
        self.claim_ledgers
            .borrow()
            .iter()
            .map(|(dev, ledger)| {
                let counted: i64 = slots
                    .values()
                    .flat_map(|v| v.iter())
                    .filter(|s| s.device == *dev)
                    .map(|s| s.claimed.get() as i64)
                    .sum();
                (*dev, ledger.get(), counted)
            })
            .collect()
    }

    /// Registers the hook invoked with a device's id whenever a runner
    /// process on it dies — the data plane clears that device's
    /// residency so post-fault retries re-upload instead of reading
    /// stale device pointers.
    pub fn set_residency_invalidator(&self, f: impl Fn(DeviceId) + 'static) {
        *self.residency_invalidator.borrow_mut() = Some(Rc::new(f));
    }

    /// Reports the loss of every memory allocation on `device` (its
    /// owning runner process died).
    fn note_device_lost(&self, device: DeviceId) {
        let hook = self.residency_invalidator.borrow().clone();
        if let Some(f) = hook {
            f(device);
        }
    }

    /// Attaches a span sink: every cold start records a `cold_start`
    /// span on its runner's `runner{N}` track.
    pub fn set_tracer(&mut self, tracer: SpanSink) {
        self.tracer = Some(tracer);
    }

    /// Attaches a metrics registry: cold starts of guest kernels record
    /// their warm-init cost into the `guest.cold_start.{path}` histogram
    /// (`full` for a full instantiate, `restore` for a snapshot restore).
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = Some(metrics);
    }

    /// The managed devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Device classes available in this deployment.
    pub fn device_classes(&self) -> Vec<DeviceClass> {
        let mut classes: Vec<DeviceClass> = self.devices.iter().map(Device::class).collect();
        classes.sort();
        classes.dedup();
        classes
    }

    /// Total runner capacity across devices of `class` (one runner per
    /// device; one per chip on TPUs).
    pub fn class_capacity(&self, class: DeviceClass) -> usize {
        self.devices
            .iter()
            .filter(|d| d.class() == class)
            .map(|d| match d {
                Device::Tpu(t) => t.chips() as usize,
                _ => 1,
            })
            .sum()
    }

    /// Number of runner slots (starting or ready) for `kernel`.
    pub fn runner_count(&self, kernel: &str) -> usize {
        self.slots
            .borrow()
            .get(kernel)
            .map(|v| v.iter().filter(|s| s.is_usable()).count())
            .unwrap_or(0)
    }

    /// Total in-flight (claimed) invocations for `kernel`.
    pub fn in_flight(&self, kernel: &str) -> usize {
        self.slots
            .borrow()
            .get(kernel)
            .map(|v| v.iter().map(|s| s.claimed.get()).sum())
            .unwrap_or(0)
    }

    /// Number of runners reaped by the idle timeout so far.
    pub fn reaped(&self) -> usize {
        self.reaped.get()
    }

    /// Number of runner slots quarantined for persistent failure so far
    /// (see [`EvictionConfig`](crate::EvictionConfig)).
    pub fn quarantined(&self) -> usize {
        self.quarantined.get()
    }

    /// Quarantines a failing slot: retires it (no further placements)
    /// and counts the eviction.
    pub(crate) fn quarantine(&self, slot: &RunnerSlot) {
        if slot.is_usable() {
            slot.retire();
            self.quarantined.set(self.quarantined.get() + 1);
        }
    }

    /// The device with identity `id`, if this pool manages it.
    pub fn device(&self, id: DeviceId) -> Option<&Device> {
        self.devices.iter().find(|d| d.id() == id)
    }

    /// Fault injection: the next cold start pays an extra `extra` of
    /// process-spawn time (a slow-starting runner — contended host,
    /// cold page cache). One-shot; consumed by the next spawn.
    pub fn slow_start_next(&self, extra: Duration) {
        self.slow_start.set(self.slow_start.get() + extra);
    }

    /// Per-kernel `(runners, in_flight)` stats for every kernel the pool
    /// has seen, in sorted name order.
    pub fn per_kernel_stats(&self) -> BTreeMap<String, KernelStats> {
        self.slots
            .borrow()
            .iter()
            .map(|(name, slots)| {
                let usable = slots.iter().filter(|s| s.is_usable());
                (
                    name.clone(),
                    KernelStats {
                        runners: usable.clone().count(),
                        in_flight: usable.map(|s| s.claimed.get()).sum(),
                    },
                )
            })
            .collect()
    }

    /// In-flight invocations across every kernel.
    pub fn total_in_flight(&self) -> usize {
        self.slots
            .borrow()
            .values()
            .flat_map(|v| v.iter())
            .map(|s| s.claimed.get())
            .sum()
    }

    /// Usable runner slots across every kernel.
    pub fn total_runners(&self) -> usize {
        self.slots
            .borrow()
            .values()
            .flat_map(|v| v.iter())
            .filter(|s| s.is_usable())
            .count()
    }

    /// Usable slots for `kernel` in start order, additionally filtered
    /// by `pred` (resilience: skip offline devices and open breakers),
    /// plus their scheduler-facing views. Views are built over the
    /// filtered list so their indices stay valid.
    pub(crate) fn usable_slots_where(
        &self,
        kernel: &str,
        pred: impl Fn(&RunnerSlot) -> bool,
    ) -> (Vec<Rc<RunnerSlot>>, Vec<SlotView>) {
        let slots: Vec<Rc<RunnerSlot>> = self
            .slots
            .borrow()
            .get(kernel)
            .map(|v| {
                v.iter()
                    .filter(|s| s.is_usable() && pred(s))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        let views = slots.iter().enumerate().map(|(i, s)| s.view(i)).collect();
        (slots, views)
    }

    /// The usable slot passing `pred` with the fewest claims (queueing
    /// fallback when scale-out is denied or impossible).
    pub(crate) fn least_claimed_where(
        &self,
        kernel: &str,
        pred: impl Fn(&RunnerSlot) -> bool,
    ) -> Option<Rc<RunnerSlot>> {
        self.slots.borrow().get(kernel).and_then(|v| {
            v.iter()
                .filter(|s| s.is_usable() && pred(s))
                .min_by_key(|s| s.claimed.get())
                .cloned()
        })
    }

    /// Starts a new runner for `kernel` on a free device (synchronously
    /// reserving the slot, asynchronously cold-starting the runner).
    ///
    /// # Errors
    ///
    /// [`InvokeError::NoDevice`] if every suitable device already hosts
    /// this kernel (one runner per device; one per chip on TPUs).
    pub fn spawn_runner(
        &self,
        name: &str,
        kernel: &Rc<dyn Kernel>,
        config: RunnerConfig,
    ) -> Result<Rc<RunnerSlot>, InvokeError> {
        self.spawn_runner_where(name, kernel, config, kernel.device_class(), |_| true)
    }

    /// Like [`spawn_runner`](RunnerPool::spawn_runner), but targeting an
    /// explicit device `class` (degraded fallback may differ from the
    /// kernel's preferred class) and only considering online devices for
    /// which `pred` holds (resilience: skip open breakers).
    pub fn spawn_runner_where(
        &self,
        name: &str,
        kernel: &Rc<dyn Kernel>,
        config: RunnerConfig,
        class: DeviceClass,
        pred: impl Fn(&Device) -> bool,
    ) -> Result<Rc<RunnerSlot>, InvokeError> {
        let mut config = config;
        config.spawn_process += self.slow_start.replace(Duration::ZERO);
        let mut slots = self.slots.borrow_mut();
        let list = slots.entry(name.to_owned()).or_default();
        let device = self
            .devices
            .iter()
            .find(|d| {
                if d.class() != class || !d.is_online() || !pred(d) {
                    return false;
                }
                let occupied = list
                    .iter()
                    .filter(|s| s.is_usable() && s.device == d.id())
                    .count();
                let capacity = match d {
                    Device::Tpu(t) => t.chips() as usize,
                    _ => 1,
                };
                occupied < capacity
            })
            .cloned()
            .ok_or_else(|| InvokeError::NoDevice(class.to_string()))?;

        let chip = list
            .iter()
            .filter(|s| s.is_usable() && s.device == device.id())
            .count() as u32;
        let slot = Rc::new(RunnerSlot {
            device: device.id(),
            claimed: Cell::new(0),
            ready: Event::new(),
            runner: RefCell::new(None),
            dead: Cell::new(false),
            last_used: Cell::new(now()),
            consecutive_failures: Cell::new(0),
            #[cfg(feature = "sim-sanitizer")]
            device_ledger: self.device_ledger(device.id()),
        });
        list.push(Rc::clone(&slot));
        drop(slots);

        let id = RunnerId(self.next_runner.get());
        self.next_runner.set(id.0 + 1);
        let kernel = Rc::clone(kernel);
        let slot2 = Rc::clone(&slot);
        let tracer = self.tracer.clone();
        let metrics = self.metrics.clone();
        let warmup = kernel.warmup().cost();
        let kernel_name = name.to_owned();
        spawn(async move {
            let t0 = now();
            let runner = TaskRunner::cold_start(id, kernel, device, chip, config).await;
            // Warm-init is the runner's final cold-start phase, so its
            // interval is exactly the trailing `cost` of the whole span.
            if let Some((path, cost)) = warmup {
                if let Some(m) = &metrics {
                    m.observe(&format!("guest.cold_start.{path}"), cost.as_secs_f64());
                }
                if let Some(tracer) = &tracer {
                    let end = now();
                    tracer.record(
                        id.to_string(),
                        "warm_init",
                        end.saturating_sub(cost),
                        end,
                        None,
                        vec![("path".into(), path.into())],
                    );
                }
            }
            if let Some(tracer) = &tracer {
                tracer.record(
                    id.to_string(),
                    "cold_start",
                    t0,
                    now(),
                    None,
                    vec![("kernel".into(), kernel_name)],
                );
            }
            *slot2.runner.borrow_mut() = Some(Rc::new(runner));
            slot2.ready.set();
        });
        Ok(slot)
    }

    /// Schedules an idle check for `slot` one timeout from now; the slot
    /// is reaped if no invocation touched it in the meantime. Checks are
    /// one-shot (armed per completed invocation), so an idle deployment
    /// quiesces instead of polling forever. A busy slot (claims in
    /// flight) is never reaped.
    pub(crate) fn arm_reaper(self: &Rc<Self>, slot: &Rc<RunnerSlot>, timeout: Duration) {
        let slot = Rc::clone(slot);
        let pool = Rc::clone(self);
        let armed_at = now();
        spawn(async move {
            sleep(timeout).await;
            if slot.dead.get() || slot.claimed.get() > 0 {
                return;
            }
            if slot.last_used.get() > armed_at {
                // Someone used the runner since; their completion armed a
                // fresher check.
                return;
            }
            slot.dead.set(true);
            if let Some(runner) = slot.runner.borrow().as_ref() {
                runner.kill();
            }
            pool.note_device_lost(slot.device);
            pool.reaped.set(pool.reaped.get() + 1);
        });
    }

    /// Kills the runner currently serving `kernel` on `device` (failure
    /// injection for tests).
    pub fn kill_runner(&self, kernel: &str, device: DeviceId) -> bool {
        let slots = self.slots.borrow();
        if let Some(list) = slots.get(kernel) {
            for slot in list {
                if slot.device == device && slot.is_usable() {
                    if let Some(runner) = slot.runner.borrow().as_ref() {
                        runner.kill();
                        self.note_device_lost(device);
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Crashes the first warm usable runner of `kernel` (fault
    /// injection): the process dies, in-flight invocations on it fail
    /// with `RunnerFailed`. Returns the crashed runner's id.
    pub fn crash_runner(&self, kernel: &str) -> Option<RunnerId> {
        let slots = self.slots.borrow();
        let list = slots.get(kernel)?;
        for slot in list {
            if slot.is_usable() {
                if let Some(runner) = slot.runner.borrow().as_ref() {
                    runner.kill();
                    self.note_device_lost(slot.device);
                    return Some(runner.id());
                }
            }
        }
        None
    }

    /// Crashes every runner hosted on `device` and quarantines their
    /// slots (fault injection: the device dropped off the bus). Kernels
    /// are visited in sorted name order (the map is a `BTreeMap`) so
    /// identical simulations crash identically. Returns the number of
    /// runners taken down.
    pub fn crash_device(&self, device: DeviceId) -> usize {
        let slots = self.slots.borrow();
        let mut killed = 0;
        for list in slots.values() {
            for slot in list {
                if slot.device == device && slot.is_usable() {
                    if let Some(runner) = slot.runner.borrow().as_ref() {
                        runner.kill();
                    }
                    slot.retire();
                    killed += 1;
                }
            }
        }
        if killed > 0 {
            self.note_device_lost(device);
        }
        killed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_accel::{GpuDevice, GpuProfile};
    use kaas_kernels::MonteCarlo;
    use kaas_simtime::Simulation;

    fn gpus(n: u32) -> Vec<Device> {
        (0..n)
            .map(|i| GpuDevice::new(DeviceId(i), GpuProfile::p100()).into())
            .collect()
    }

    fn mci() -> Rc<dyn Kernel> {
        Rc::new(MonteCarlo::default())
    }

    #[test]
    fn spawn_fills_devices_then_errors() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let pool = Rc::new(RunnerPool::new(gpus(2)));
            let k = mci();
            pool.spawn_runner("mci", &k, RunnerConfig::default())
                .unwrap();
            pool.spawn_runner("mci", &k, RunnerConfig::default())
                .unwrap();
            assert_eq!(pool.runner_count("mci"), 2);
            let err = pool
                .spawn_runner("mci", &k, RunnerConfig::default())
                .unwrap_err();
            assert!(matches!(err, InvokeError::NoDevice(_)));
        });
    }

    #[test]
    fn in_flight_guard_releases_on_drop() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let pool = Rc::new(RunnerPool::new(gpus(1)));
            let k = mci();
            let slot = pool
                .spawn_runner("mci", &k, RunnerConfig::default())
                .unwrap();
            {
                let _a = InFlightGuard::claim(&slot);
                let _b = InFlightGuard::claim(&slot);
                assert_eq!(pool.in_flight("mci"), 2);
            }
            assert_eq!(pool.in_flight("mci"), 0);
        });
    }

    #[test]
    fn reaper_never_kills_a_busy_slot() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let pool = Rc::new(RunnerPool::new(gpus(1)));
            let k = mci();
            let slot = pool
                .spawn_runner("mci", &k, RunnerConfig::default())
                .unwrap();
            slot.wait_ready().await;
            // An invocation is in flight while the idle check fires.
            let guard = InFlightGuard::claim(&slot);
            pool.arm_reaper(&slot, Duration::from_secs(1));
            sleep(Duration::from_secs(5)).await;
            assert!(slot.is_usable(), "busy slot must survive the reaper");
            assert_eq!(pool.reaped(), 0);
            drop(guard);
            // Now idle: the next armed check reaps it.
            pool.arm_reaper(&slot, Duration::from_secs(1));
            sleep(Duration::from_secs(5)).await;
            assert!(!slot.is_usable());
            assert_eq!(pool.reaped(), 1);
        });
    }

    #[test]
    fn recent_use_defers_the_reaper() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let pool = Rc::new(RunnerPool::new(gpus(1)));
            let k = mci();
            let slot = pool
                .spawn_runner("mci", &k, RunnerConfig::default())
                .unwrap();
            slot.wait_ready().await;
            pool.arm_reaper(&slot, Duration::from_secs(10));
            // A completion touches the slot before the check fires.
            sleep(Duration::from_secs(5)).await;
            slot.touch();
            sleep(Duration::from_secs(6)).await;
            assert!(slot.is_usable(), "freshly used slot must not be reaped");
        });
    }

    #[test]
    fn class_capacity_counts_devices() {
        let pool = RunnerPool::new(gpus(3));
        assert_eq!(pool.class_capacity(DeviceClass::Gpu), 3);
        assert_eq!(pool.class_capacity(DeviceClass::Cpu), 0);
    }
}
