//! [`KernelRegistry`]: where developers register kernels (step ① of the
//! paper's Fig. 3 workflow).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use kaas_kernels::Kernel;

/// Registration errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A kernel with this name is already registered.
    DuplicateName(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::DuplicateName(n) => write!(f, "kernel '{n}' already registered"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// A name-indexed collection of registered kernels, shared between the
/// server and its task runners.
///
/// # Examples
///
/// ```
/// use kaas_core::KernelRegistry;
/// use kaas_kernels::MatMul;
///
/// let registry = KernelRegistry::new();
/// registry.register(MatMul::new()).unwrap();
/// assert!(registry.lookup("matmul").is_some());
/// assert_eq!(registry.names(), vec!["matmul".to_owned()]);
/// ```
#[derive(Clone, Default)]
pub struct KernelRegistry {
    kernels: Rc<RefCell<BTreeMap<String, Rc<dyn Kernel>>>>,
}

impl std::fmt::Debug for KernelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelRegistry")
            .field("kernels", &self.names())
            .finish()
    }
}

impl KernelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a kernel under its [`Kernel::name`].
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::DuplicateName`] if the name is taken.
    pub fn register<K: Kernel + 'static>(&self, kernel: K) -> Result<(), RegistryError> {
        self.register_rc(Rc::new(kernel))
    }

    /// Registers an already-shared kernel.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::DuplicateName`] if the name is taken.
    pub fn register_rc(&self, kernel: Rc<dyn Kernel>) -> Result<(), RegistryError> {
        let name = kernel.name().to_owned();
        let mut map = self.kernels.borrow_mut();
        if map.contains_key(&name) {
            return Err(RegistryError::DuplicateName(name));
        }
        map.insert(name, kernel);
        Ok(())
    }

    /// Looks a kernel up by name.
    pub fn lookup(&self, name: &str) -> Option<Rc<dyn Kernel>> {
        self.kernels.borrow().get(name).cloned()
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.kernels.borrow().keys().cloned().collect()
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.kernels.borrow().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_kernels::{MatMul, MonteCarlo};

    #[test]
    fn register_and_lookup() {
        let r = KernelRegistry::new();
        r.register(MatMul::new()).unwrap();
        r.register(MonteCarlo::default()).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.lookup("matmul").is_some());
        assert!(r.lookup("mci").is_some());
        assert!(r.lookup("nope").is_none());
    }

    #[test]
    fn duplicate_rejected() {
        let r = KernelRegistry::new();
        r.register(MatMul::new()).unwrap();
        assert_eq!(
            r.register(MatMul::new()),
            Err(RegistryError::DuplicateName("matmul".into()))
        );
    }

    #[test]
    fn clone_shares_state() {
        let r = KernelRegistry::new();
        let r2 = r.clone();
        r.register(MatMul::new()).unwrap();
        assert!(r2.lookup("matmul").is_some());
    }
}
