//! The device-resident data plane: a content-addressed object store
//! with per-device memory residency.
//!
//! The paper's out-of-band path (§4.1) only avoids *serialization*;
//! every invocation still pays the host→device copy, even when the same
//! bytes (GA populations, model weights, reference matrices) were
//! uploaded moments ago by the previous warm invocation. The data plane
//! closes that gap:
//!
//! * Clients [`put`](crate::KaasClient::put) a [`Value`] once and get
//!   back an [`ObjectRef`] — a content address (hash + length). Repeat
//!   invocations pass the 24-byte ref
//!   ([`InvokeBuilder::arg_ref`](crate::InvokeBuilder::arg_ref))
//!   instead of re-shipping the payload.
//! * [`seal`](crate::KaasClient::seal)ing a ref declares the object
//!   immutable, which makes device-side caching safe: the dispatcher
//!   tracks which devices already hold a sealed object (a
//!   [`MemoryManager`] per device) and serves cache hits with **zero
//!   `copy_in` cost**.
//! * Under memory pressure the device manager evicts least-recently-used
//!   objects; [`pin`](crate::KaasClient::pin)ned objects and operands of
//!   in-flight invocations are never victims. When nothing can be
//!   freed, the invocation fails with
//!   [`InvokeError::DeviceOom`](crate::InvokeError::DeviceOom).
//! * Device memory contents die with the runner process that owns them:
//!   runner crashes, device flaps, and idle reaps invalidate the
//!   device's residency, so a post-fault retry re-uploads instead of
//!   reading a stale device pointer.
//!
//! The store itself is host-side and unbounded (host RAM is the paper's
//! shared-memory region); only *device* residency is capacity-managed.
//!
//! On the wire the data plane reuses the reserved control-kernel idiom
//! (like [`DISCOVERY_KERNEL`](crate::DISCOVERY_KERNEL)): `put`/`get`/
//! `seal`/`pin` travel as invocations of `_kaas/data/*` kernels, with
//! payloads in-band or through shared memory (the fast path).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use kaas_accel::{Device, DeviceId, MemoryManager, OomError};
use kaas_kernels::Value;

/// Prefix of the reserved data-plane control kernels.
pub const DATA_KERNEL_PREFIX: &str = "_kaas/data/";
/// Control kernel storing a payload in the server's object store.
pub const DATA_PUT_KERNEL: &str = "_kaas/data/put";
/// Control kernel fetching a stored object back to the client.
pub const DATA_GET_KERNEL: &str = "_kaas/data/get";
/// Control kernel marking a stored object immutable (cacheable).
pub const DATA_SEAL_KERNEL: &str = "_kaas/data/seal";
/// Control kernel protecting a stored object from device eviction.
pub const DATA_PIN_KERNEL: &str = "_kaas/data/pin";

/// On-wire size of an [`ObjectRef`]: hash + length + framing tag.
pub const OBJECT_REF_WIRE_BYTES: u64 = 24;

const REF_TAG: &str = "kaas.ref";

/// A content address into the server's object store: the FNV-1a hash of
/// the object's canonical encoding plus its logical length. Obtained
/// from [`KaasClient::put`](crate::KaasClient::put); passed to
/// invocations with
/// [`InvokeBuilder::arg_ref`](crate::InvokeBuilder::arg_ref).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectRef {
    /// Content hash (FNV-1a over the canonical [`Value`] encoding).
    pub hash: u64,
    /// Logical payload size in bytes (the object's wire size).
    pub bytes: u64,
}

impl std::fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj:{:016x}/{}B", self.hash, self.bytes)
    }
}

impl ObjectRef {
    /// Encodes the ref as a [`Value`] for transport through the existing
    /// request/response payload channel.
    pub fn to_value(self) -> Value {
        Value::List(vec![
            Value::Text(REF_TAG.to_owned()),
            Value::U64(self.hash),
            Value::U64(self.bytes),
        ])
    }

    /// Decodes a ref previously encoded with
    /// [`to_value`](ObjectRef::to_value).
    pub fn from_value(v: &Value) -> Option<ObjectRef> {
        match v.payload() {
            Value::List(items) => match items.as_slice() {
                [Value::Text(tag), Value::U64(hash), Value::U64(bytes)] if tag == REF_TAG => {
                    Some(ObjectRef {
                        hash: *hash,
                        bytes: *bytes,
                    })
                }
                _ => None,
            },
            _ => None,
        }
    }
}

/// FNV-1a over a canonical byte encoding of `value` — the content
/// address of the data plane. Deterministic across runs (no hasher
/// randomization) so identical simulations produce identical refs.
pub fn content_hash(value: &Value) -> u64 {
    let mut h = Fnv::new();
    hash_value(value, &mut h);
    h.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.write(&n.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_value(value: &Value, h: &mut Fnv) {
    match value {
        Value::Unit => h.write(&[0]),
        Value::U64(n) => {
            h.write(&[1]);
            h.write_u64(*n);
        }
        Value::F64(x) => {
            h.write(&[2]);
            h.write_u64(x.to_bits());
        }
        Value::F64s(v) => {
            h.write(&[3]);
            h.write_u64(v.len() as u64);
            for x in v {
                h.write_u64(x.to_bits());
            }
        }
        Value::Bytes(b) => {
            h.write(&[4]);
            h.write_u64(b.len() as u64);
            h.write(b);
        }
        Value::Matrix { data, rows, cols } => {
            h.write(&[5]);
            h.write_u64(*rows as u64);
            h.write_u64(*cols as u64);
            for x in data {
                h.write_u64(x.to_bits());
            }
        }
        Value::Image {
            pixels,
            width,
            height,
            channels,
        } => {
            h.write(&[6]);
            h.write_u64(*width as u64);
            h.write_u64(*height as u64);
            h.write_u64(*channels as u64);
            h.write(pixels);
        }
        Value::Text(s) => {
            h.write(&[7]);
            h.write_u64(s.len() as u64);
            h.write(s.as_bytes());
        }
        Value::List(items) => {
            h.write(&[8]);
            h.write_u64(items.len() as u64);
            for item in items {
                hash_value(item, h);
            }
        }
        Value::Sized { bytes, body } => {
            // The declared size is part of the content: two envelopes
            // with the same body but different logical sizes are
            // different objects (they cost differently to copy).
            h.write(&[9]);
            h.write_u64(*bytes);
            hash_value(body, h);
        }
    }
}

#[derive(Debug)]
struct Stored {
    value: Value,
    bytes: u64,
    sealed: Cell<bool>,
    /// Pin count: client pins and flow-lifetime pins both increment it;
    /// the object is protected from device eviction (and from
    /// [`ObjectStore::remove`]) while it is non-zero. Client pins are
    /// sticky (never decremented); flow pins are released when the flow
    /// completes.
    pins: Cell<u32>,
}

/// The host-side content-addressed object store: deduplicated by
/// content hash, unbounded (host RAM), with seal/pin markers consulted
/// by the device-residency layer.
#[derive(Debug, Default)]
pub struct ObjectStore {
    objects: RefCell<BTreeMap<u64, Stored>>,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `value`, returning its content address. Identical content
    /// deduplicates to the same ref.
    pub fn put(&self, value: Value) -> ObjectRef {
        self.put_tracked(value).0
    }

    /// Stores `value` and reports whether this call **created** the
    /// entry (`false` = deduplicated against existing content). Flow
    /// executors use the flag to garbage-collect only the intermediates
    /// they introduced.
    pub fn put_tracked(&self, value: Value) -> (ObjectRef, bool) {
        let hash = content_hash(&value);
        let bytes = value.wire_bytes();
        let mut objects = self.objects.borrow_mut();
        let created = !objects.contains_key(&hash);
        objects.entry(hash).or_insert(Stored {
            value,
            bytes,
            sealed: Cell::new(false),
            pins: Cell::new(0),
        });
        (ObjectRef { hash, bytes }, created)
    }

    /// The stored object for `r`, if present (and the ref's length
    /// matches — a mismatched length means a forged or stale ref).
    pub fn get(&self, r: &ObjectRef) -> Option<Value> {
        self.objects
            .borrow()
            .get(&r.hash)
            .filter(|s| s.bytes == r.bytes)
            .map(|s| s.value.clone())
    }

    /// Marks the object immutable, making it eligible for device-side
    /// caching. Returns whether the object exists.
    pub fn seal(&self, hash: u64) -> bool {
        match self.objects.borrow().get(&hash) {
            Some(s) => {
                s.sealed.set(true);
                true
            }
            None => false,
        }
    }

    /// Marks the object pinned: device residency of this object is
    /// never evicted. Client pins are sticky — there is no public
    /// unpin. Returns whether the object exists.
    pub fn pin(&self, hash: u64) -> bool {
        match self.objects.borrow().get(&hash) {
            Some(s) => {
                s.pins.set(s.pins.get().saturating_add(1));
                true
            }
            None => false,
        }
    }

    /// Takes a flow-lifetime pin on the object (released with
    /// [`flow_unpin`](ObjectStore::flow_unpin) when the flow
    /// completes). Returns whether the object exists.
    pub fn flow_pin(&self, hash: u64) -> bool {
        self.pin(hash)
    }

    /// Releases one flow-lifetime pin, returning the remaining pin
    /// count (0 also when the object does not exist).
    pub fn flow_unpin(&self, hash: u64) -> u32 {
        match self.objects.borrow().get(&hash) {
            Some(s) => {
                let left = s.pins.get().saturating_sub(1);
                s.pins.set(left);
                left
            }
            None => 0,
        }
    }

    /// Drops an unpinned object from the store (flow GC of
    /// intermediates). Refuses — returning `false` — while any pin is
    /// outstanding or when the object does not exist.
    pub fn remove(&self, hash: u64) -> bool {
        let mut objects = self.objects.borrow_mut();
        match objects.get(&hash) {
            Some(s) if s.pins.get() == 0 => {
                objects.remove(&hash);
                true
            }
            _ => false,
        }
    }

    /// Whether the object is sealed (immutable, cacheable).
    pub fn is_sealed(&self, hash: u64) -> bool {
        self.objects
            .borrow()
            .get(&hash)
            .is_some_and(|s| s.sealed.get())
    }

    /// Whether the object is pinned against device eviction.
    pub fn is_pinned(&self, hash: u64) -> bool {
        self.pins(hash) > 0
    }

    /// The object's outstanding pin count (0 when absent).
    pub fn pins(&self, hash: u64) -> u32 {
        self.objects.borrow().get(&hash).map_or(0, |s| s.pins.get())
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.borrow().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.borrow().is_empty()
    }

    /// Total logical bytes stored.
    pub fn bytes_stored(&self) -> u64 {
        self.objects.borrow().values().map(|s| s.bytes).sum()
    }
}

/// The server's data plane: the host [`ObjectStore`] plus one
/// [`MemoryManager`] per managed device tracking which objects are
/// resident in that device's memory.
///
/// Owned by the [`KaasServer`](crate::KaasServer) and consulted on the
/// dispatch hot path; reachable for inspection via
/// [`KaasServer::dataplane`](crate::KaasServer::dataplane).
#[derive(Debug)]
pub struct DataPlane {
    store: ObjectStore,
    devices: BTreeMap<DeviceId, Rc<MemoryManager>>,
}

impl DataPlane {
    /// Creates a data plane for `devices`, sizing each device's memory
    /// manager from [`Device::mem_bytes`].
    pub fn new(devices: &[Device]) -> Self {
        DataPlane {
            store: ObjectStore::new(),
            devices: devices
                .iter()
                .map(|d| (d.id(), Rc::new(MemoryManager::new(d.mem_bytes()))))
                .collect(),
        }
    }

    /// The host-side object store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Stores `value` in the host object store.
    pub fn put(&self, value: Value) -> ObjectRef {
        self.store.put(value)
    }

    /// Resolves `r` to its stored value.
    pub fn resolve(&self, r: &ObjectRef) -> Option<Value> {
        self.store.get(r)
    }

    /// The memory manager of `device`, if this plane manages it.
    pub fn manager(&self, device: DeviceId) -> Option<&Rc<MemoryManager>> {
        self.devices.get(&device)
    }

    /// Whether object `hash` is resident in `device`'s memory.
    pub fn is_resident(&self, device: DeviceId, hash: u64) -> bool {
        self.devices.get(&device).is_some_and(|m| m.contains(hash))
    }

    /// Marks the object pinned in the store and in every device where it
    /// is currently resident (future admissions pin on upload). Returns
    /// whether the object exists.
    pub fn pin(&self, hash: u64) -> bool {
        if !self.store.pin(hash) {
            return false;
        }
        for mgr in self.devices.values() {
            mgr.pin(hash);
        }
        true
    }

    /// Marks the object sealed (immutable, device-cacheable). Returns
    /// whether the object exists.
    pub fn seal(&self, hash: u64) -> bool {
        self.store.seal(hash)
    }

    /// Takes a flow-lifetime pin: the object survives device eviction
    /// (and store GC) until [`flow_unpin`](DataPlane::flow_unpin)
    /// releases it. Pins every currently-resident device copy; future
    /// admissions inherit the pin via [`admit`](DataPlane::admit).
    pub fn flow_pin(&self, hash: u64) -> bool {
        if !self.store.flow_pin(hash) {
            return false;
        }
        for mgr in self.devices.values() {
            mgr.pin(hash);
        }
        true
    }

    /// Releases one flow-lifetime pin; when the last pin drops, the
    /// device copies become ordinary LRU-evictable residents again.
    /// Returns the remaining pin count.
    pub fn flow_unpin(&self, hash: u64) -> u32 {
        let left = self.store.flow_unpin(hash);
        if left == 0 {
            for mgr in self.devices.values() {
                mgr.unpin(hash);
            }
        }
        left
    }

    /// Garbage-collects an unpinned object: drops it from the store and
    /// from every device's residency. Refuses while pins are
    /// outstanding. Returns whether the object was removed.
    pub fn remove(&self, hash: u64) -> bool {
        if !self.store.remove(hash) {
            return false;
        }
        for mgr in self.devices.values() {
            mgr.remove(hash);
        }
        true
    }

    /// Admits object `r` into `device`'s memory (the caller pays the
    /// upload as its `copy_in`), evicting LRU victims as needed and
    /// preserving the object's pin. Returns the evicted hashes.
    ///
    /// # Errors
    ///
    /// [`OomError`] when the device cannot free enough memory.
    pub fn admit(&self, device: DeviceId, r: &ObjectRef) -> Result<Vec<u64>, OomError> {
        let mgr = self.devices.get(&device).ok_or(OomError {
            requested: r.bytes,
            capacity: 0,
            evictable: 0,
        })?;
        let evicted = mgr.insert(r.hash, r.bytes)?;
        if self.store.is_pinned(r.hash) {
            mgr.pin(r.hash);
        }
        Ok(evicted)
    }

    /// Drops a single residency entry (a failed upload must not look
    /// resident).
    pub fn unmark(&self, device: DeviceId, hash: u64) {
        if let Some(mgr) = self.devices.get(&device) {
            mgr.remove(hash);
        }
    }

    /// Invalidates every residency entry of `device`: its memory
    /// contents died with the runner process that owned them (crash,
    /// device flap, idle reap). Returns the number of objects dropped.
    pub fn invalidate_device(&self, device: DeviceId) -> usize {
        self.devices.get(&device).map_or(0, |m| m.clear())
    }

    /// Total bytes resident across every device.
    pub fn bytes_resident(&self) -> u64 {
        self.devices.values().map(|m| m.bytes_resident()).sum()
    }

    /// Total evictions across every device.
    pub fn evictions(&self) -> u64 {
        self.devices.values().map(|m| m.evictions()).sum()
    }

    /// Per-device `(device, bytes_resident)` in device order.
    pub fn residency(&self) -> Vec<(DeviceId, u64)> {
        self.devices
            .iter()
            .map(|(id, m)| (*id, m.bytes_resident()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_accel::{GpuDevice, GpuProfile};

    fn tiny_gpu(id: u32, mem: u64) -> Device {
        GpuDevice::new(
            DeviceId(id),
            GpuProfile {
                mem_bytes: mem,
                ..GpuProfile::p100()
            },
        )
        .into()
    }

    #[test]
    fn content_hash_is_deterministic_and_collision_aware() {
        let a = Value::F64s(vec![1.0, 2.0, 3.0]);
        assert_eq!(content_hash(&a), content_hash(&a.clone()));
        assert_ne!(
            content_hash(&Value::F64s(vec![1.0, 2.0])),
            content_hash(&Value::F64s(vec![2.0, 1.0]))
        );
        assert_ne!(content_hash(&Value::U64(1)), content_hash(&Value::F64(1.0)));
        // Envelope size is content: same body, different declared size.
        assert_ne!(
            content_hash(&Value::sized(10, Value::U64(1))),
            content_hash(&Value::sized(20, Value::U64(1)))
        );
    }

    #[test]
    fn put_dedupes_identical_content() {
        let store = ObjectStore::new();
        let a = store.put(Value::F64s(vec![1.0; 100]));
        let b = store.put(Value::F64s(vec![1.0; 100]));
        assert_eq!(a, b);
        assert_eq!(store.len(), 1);
        assert_eq!(a.bytes, 816);
        assert_eq!(store.get(&a), Some(Value::F64s(vec![1.0; 100])));
    }

    #[test]
    fn get_rejects_mismatched_length() {
        let store = ObjectStore::new();
        let r = store.put(Value::U64(7));
        let forged = ObjectRef {
            hash: r.hash,
            bytes: r.bytes + 1,
        };
        assert!(store.get(&forged).is_none());
    }

    #[test]
    fn ref_value_roundtrip() {
        let r = ObjectRef {
            hash: 0xdead_beef,
            bytes: 4096,
        };
        assert_eq!(ObjectRef::from_value(&r.to_value()), Some(r));
        assert!(ObjectRef::from_value(&Value::U64(1)).is_none());
        assert!(ObjectRef::from_value(&Value::List(vec![])).is_none());
    }

    #[test]
    fn admit_and_invalidate_track_residency() {
        let dp = DataPlane::new(&[tiny_gpu(0, 1000), tiny_gpu(1, 1000)]);
        let r = dp.put(Value::F64s(vec![0.0; 10]));
        assert_eq!(dp.admit(DeviceId(0), &r).unwrap(), Vec::<u64>::new());
        assert!(dp.is_resident(DeviceId(0), r.hash));
        assert!(!dp.is_resident(DeviceId(1), r.hash));
        assert_eq!(dp.bytes_resident(), r.bytes);
        assert_eq!(dp.invalidate_device(DeviceId(0)), 1);
        assert!(!dp.is_resident(DeviceId(0), r.hash));
        assert_eq!(dp.bytes_resident(), 0);
    }

    #[test]
    fn pin_applies_to_resident_and_future_devices() {
        let dp = DataPlane::new(&[tiny_gpu(0, 200), tiny_gpu(1, 200)]);
        let heavy = dp.put(Value::F64s(vec![1.0; 20])); // 176 B
        let small = dp.put(Value::U64(1)); // 16 B
        dp.admit(DeviceId(0), &heavy).unwrap();
        assert!(dp.pin(heavy.hash));
        // Already-resident copy is pinned: nothing can evict it.
        assert!(dp.admit(DeviceId(0), &heavy).is_ok());
        let err = dp.admit(DeviceId(0), &dp.put(Value::F64s(vec![2.0; 20])));
        assert!(err.is_err(), "pinned resident blocks a same-size admit");
        // A later admit on another device inherits the pin.
        dp.admit(DeviceId(1), &heavy).unwrap();
        dp.admit(DeviceId(1), &small).unwrap();
        assert!(dp
            .admit(DeviceId(1), &dp.put(Value::F64s(vec![3.0; 20])))
            .is_err());
        assert!(dp.is_resident(DeviceId(1), heavy.hash));
    }

    #[test]
    fn seal_is_a_store_marker() {
        let dp = DataPlane::new(&[tiny_gpu(0, 100)]);
        let r = dp.put(Value::U64(5));
        assert!(!dp.store().is_sealed(r.hash));
        assert!(dp.seal(r.hash));
        assert!(dp.store().is_sealed(r.hash));
        assert!(!dp.seal(0xbad));
    }

    #[test]
    fn counted_pins_gate_removal() {
        let store = ObjectStore::new();
        let (r, created) = store.put_tracked(Value::U64(9));
        assert!(created);
        let (_, again) = store.put_tracked(Value::U64(9));
        assert!(!again, "dedup is not creation");
        assert!(store.flow_pin(r.hash));
        assert!(store.is_pinned(r.hash));
        assert_eq!(store.pins(r.hash), 1);
        assert!(!store.remove(r.hash), "pinned objects cannot be removed");
        assert_eq!(store.flow_unpin(r.hash), 0);
        assert!(!store.is_pinned(r.hash));
        assert!(store.remove(r.hash));
        assert!(store.get(&r).is_none());
        assert!(!store.remove(r.hash));
    }

    #[test]
    fn flow_unpin_releases_device_pins() {
        let dp = DataPlane::new(&[tiny_gpu(0, 200)]);
        let heavy = dp.put(Value::F64s(vec![1.0; 20])); // 176 B
        dp.admit(DeviceId(0), &heavy).unwrap();
        assert!(dp.flow_pin(heavy.hash));
        let rival = dp.put(Value::F64s(vec![2.0; 20]));
        assert!(
            dp.admit(DeviceId(0), &rival).is_err(),
            "flow pin blocks eviction"
        );
        assert_eq!(dp.flow_unpin(heavy.hash), 0);
        assert!(
            dp.admit(DeviceId(0), &rival).is_ok(),
            "released pin makes the resident evictable again"
        );
        assert!(dp.remove(heavy.hash));
        assert!(!dp.is_resident(DeviceId(0), heavy.hash));
    }

    #[test]
    fn unknown_device_admit_is_oom() {
        let dp = DataPlane::new(&[]);
        let r = dp.put(Value::U64(5));
        assert!(dp.admit(DeviceId(9), &r).is_err());
    }
}
