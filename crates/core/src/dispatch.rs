//! The per-invocation data path: admission → dispatch (front door +
//! shard queues, or the serialized A/B baseline) → placement
//! (scheduler + autoscaler) → execution with retry.
//!
//! Split from [`server`](crate::server) so the orchestration skeleton
//! (lifecycle, accept loop, accessors) stays separate from the hot
//! path every request walks.
//!
//! ## Dispatch engines
//!
//! Under [`DispatchMode::Sharded`] (the default) the front door only
//! admits, parses, and enqueues — a short serialized section of
//! [`ShardConfig::front_door_overhead`] — then hands the job to one of
//! several per-shard worker tasks. Each worker serializes the full
//! [`dispatch_overhead`](crate::ServerConfig::dispatch_overhead) for
//! its own queue but overlaps it with every other shard, so aggregate
//! dispatch throughput scales with the shard count. Workers are
//! ordinary simtime tasks and every tie-break is seeded, so same-seed
//! replay stays byte-identical. [`DispatchMode::Serialized`] keeps the
//! historical single-lock router for A/B experiments (the `cluster`
//! bench reproduces the paper's router-contention knee with it).
//!
//! When a tracer is configured ([`ServerConfig::with_tracer`]
//! (crate::ServerConfig::with_tracer)) the hot path records a span per
//! stage — `admission`, `dispatch`, `deserialize`/`shm_take`,
//! `queue_wait`, then `copy_in`/`kernel_exec`/`copy_out` on the
//! serving runner's track, and finally `reply` — all parented under the
//! client's `roundtrip` span carried in [`Request::span`]. Every
//! invocation also feeds the [`MetricsRegistry`]
//! (crate::MetricsRegistry): counters (`invocations`, `cold_starts`,
//! `errors.*`), latency histograms, and level gauges.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use kaas_accel::{DeviceClass, DeviceId};
use kaas_kernels::{Kernel, Value};
use kaas_simtime::channel::{self, OneshotSender, Receiver};
use kaas_simtime::rng::DetRng;
use kaas_simtime::sync::Semaphore;
use kaas_simtime::{now, sleep, spawn, SimTime};

use crate::admission::AdmissionPermit;
use crate::autoscaler::{ScaleCtx, ScaleDecision};
use crate::config::{DispatchMode, ServerConfig, ShardConfig, ShardPolicy};
use crate::dataplane::{ObjectRef, DATA_KERNEL_PREFIX};
use crate::guest::CODE_KERNEL_PREFIX;
use crate::metrics::{InvocationReport, RunnerId};
use crate::pool::{InFlightGuard, RunnerPool, RunnerSlot};
use crate::protocol::{DataRef, InvokeError, Request, Response};
use crate::resilience::BreakerState;
use crate::scheduler::SchedCtx;
use crate::server::{KaasServer, DISCOVERY_KERNEL};

/// An admitted, parsed invocation: everything the execution pipeline
/// needs, carried from the front door to wherever it runs (inline under
/// the serialized engine, a shard worker under the sharded one).
pub(crate) struct ExecJob {
    req: Request,
    kernel: Rc<dyn Kernel>,
    /// RAII admission permit — rides with the job so the admission slot
    /// is held until execution finishes, on every exit path.
    permit: AdmissionPermit,
    submitted: SimTime,
}

/// One enqueued dispatch: the job plus what the shard worker needs to
/// finish the request and wake the front door's waiter. Carries a
/// strong server handle (a bounded `Rc` cycle while queued: the job
/// keeps the server alive, never the reverse — workers hold only the
/// receiving half, so they exit when the server drops its senders).
struct DispatchJob {
    server: KaasServer,
    job: ExecJob,
    /// When the request reached the dispatch layer (span start).
    t_dispatch: SimTime,
    /// When the front door enqueued it (the `dispatch.shard_ns` origin).
    enqueued: SimTime,
    reply: OneshotSender<Result<(DataRef, InvocationReport), InvokeError>>,
}

/// One shard's queue: the sending half plus its depth counter (the
/// worker task owns the receiving half).
pub(crate) struct ShardQueue {
    tx: channel::Sender<DispatchJob>,
    depth: Rc<Cell<usize>>,
    /// Requests this shard shed (over-cap at enqueue) or ejected
    /// (deadline passed while queued). Shared with the worker task; the
    /// sanitizer checks the per-shard sum equals the global tally and
    /// the `dispatch.ejected` counter — shedding is never silent.
    ejected: Rc<Cell<u64>>,
}

/// The server's dispatch engine, built from
/// [`ServerConfig::dispatch`](crate::ServerConfig) at construction.
pub(crate) enum DispatchState {
    /// One global router lock; every invocation pays
    /// `dispatch_overhead` inside it (the historical A/B baseline).
    Serialized { lock: Semaphore },
    /// Thin front door + per-shard worker queues.
    Sharded {
        front_lock: Semaphore,
        config: ShardConfig,
        shards: Vec<ShardQueue>,
        /// Jobs currently queued across all shards; the sanitizer
        /// checks it equals the sum of per-shard depths every step.
        queued: Rc<Cell<usize>>,
        /// Round-robin cursor ([`ShardPolicy::RoundRobin`]).
        rr: Cell<usize>,
        /// Seeded tie-break stream ([`ShardPolicy::LeastLoaded`]).
        rng: RefCell<DetRng>,
        /// Total requests shed or ejected across all shards.
        ejected_total: Rc<Cell<u64>>,
    },
}

impl DispatchState {
    /// Builds the engine selected by `config.dispatch` for a fleet of
    /// `devices` devices. Shard workers are ordinary simtime tasks,
    /// spawned only when an executor is running (the same guard as the
    /// sanitizer hook in [`KaasServer::new`]); outside a simulation the
    /// queues exist but nothing drains them.
    pub(crate) fn new(config: &ServerConfig, devices: usize) -> Self {
        match &config.dispatch {
            DispatchMode::Serialized => DispatchState::Serialized {
                lock: Semaphore::new(1),
            },
            DispatchMode::Sharded(sc) => {
                let n = if sc.shards == 0 {
                    devices.max(1)
                } else {
                    sc.shards
                };
                let queued = Rc::new(Cell::new(0usize));
                let ejected_total = Rc::new(Cell::new(0u64));
                let mut shards = Vec::with_capacity(n);
                for shard in 0..n {
                    let (tx, rx) = channel::unbounded();
                    let depth = Rc::new(Cell::new(0usize));
                    let ejected = Rc::new(Cell::new(0u64));
                    if kaas_simtime::Handle::try_current().is_some() {
                        spawn(shard_worker(
                            shard,
                            rx,
                            Rc::clone(&depth),
                            Rc::clone(&queued),
                            Rc::clone(&ejected),
                            Rc::clone(&ejected_total),
                            config.dispatch_overhead,
                            sc.queue_cap.is_some(),
                        ));
                    }
                    shards.push(ShardQueue { tx, depth, ejected });
                }
                DispatchState::Sharded {
                    front_lock: Semaphore::new(1),
                    config: sc.clone(),
                    shards,
                    queued,
                    rr: Cell::new(0),
                    rng: RefCell::new(DetRng::seed_from_u64(sc.seed)),
                    ejected_total,
                }
            }
        }
    }

    /// Current queue depth of every shard (empty under the serialized
    /// engine).
    pub(crate) fn shard_depths(&self) -> Vec<usize> {
        match self {
            DispatchState::Serialized { .. } => Vec::new(),
            DispatchState::Sharded { shards, .. } => shards.iter().map(|s| s.depth.get()).collect(),
        }
    }

    /// Total dispatch jobs queued across all shards.
    pub(crate) fn queued(&self) -> usize {
        match self {
            DispatchState::Serialized { .. } => 0,
            DispatchState::Sharded { queued, .. } => queued.get(),
        }
    }

    /// Requests each shard has shed or ejected (empty under the
    /// serialized engine).
    pub(crate) fn shard_ejected(&self) -> Vec<u64> {
        match self {
            DispatchState::Serialized { .. } => Vec::new(),
            DispatchState::Sharded { shards, .. } => {
                shards.iter().map(|s| s.ejected.get()).collect()
            }
        }
    }

    /// Total requests shed or ejected across all shards.
    pub(crate) fn ejected(&self) -> u64 {
        match self {
            DispatchState::Serialized { .. } => 0,
            DispatchState::Sharded { ejected_total, .. } => ejected_total.get(),
        }
    }

    /// Number of shard queues (1 under the serialized engine).
    pub(crate) fn shard_count(&self) -> usize {
        match self {
            DispatchState::Serialized { .. } => 1,
            DispatchState::Sharded { shards, .. } => shards.len(),
        }
    }

    /// Chooses the shard for a request. Every source of choice is
    /// deterministic: the round-robin cursor, an FNV-1a hash, or the
    /// seeded tie-break stream — cross-shard ordering replays exactly.
    fn pick_shard(&self, kernel: &str) -> usize {
        match self {
            DispatchState::Serialized { .. } => 0,
            DispatchState::Sharded {
                config,
                shards,
                rr,
                rng,
                ..
            } => {
                let n = shards.len();
                match config.policy {
                    ShardPolicy::RoundRobin => {
                        let i = rr.get();
                        rr.set((i + 1) % n);
                        i
                    }
                    ShardPolicy::KernelAffinity => {
                        // FNV-1a over the kernel name, seed-mixed into
                        // the offset basis so deployments can re-map
                        // kernels to shards without renaming them.
                        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ config.seed;
                        for b in kernel.bytes() {
                            h ^= b as u64;
                            h = h.wrapping_mul(0x0000_0100_0000_01b3);
                        }
                        (h % n as u64) as usize
                    }
                    ShardPolicy::LeastLoaded => {
                        let min = shards
                            .iter()
                            .map(|s| s.depth.get())
                            .min()
                            .expect("at least one shard");
                        let tied: Vec<usize> = shards
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| s.depth.get() == min)
                            .map(|(i, _)| i)
                            .collect();
                        if tied.len() == 1 {
                            tied[0]
                        } else {
                            tied[rng.borrow_mut().gen_range(0..tied.len())]
                        }
                    }
                }
            }
        }
    }
}

/// One shard's drain loop: dequeue, pay the shard's serialized routing
/// cost, then hand execution to a fresh task so long-running kernels
/// never block the queue behind them. Exits when the server drops its
/// sending halves.
#[allow(clippy::too_many_arguments)]
async fn shard_worker(
    shard: usize,
    mut rx: Receiver<DispatchJob>,
    depth: Rc<Cell<usize>>,
    queued: Rc<Cell<usize>>,
    ejected: Rc<Cell<u64>>,
    ejected_total: Rc<Cell<u64>>,
    overhead: Duration,
    eject_expired: bool,
) {
    while let Some(DispatchJob {
        server,
        job,
        t_dispatch,
        enqueued,
        reply,
    }) = rx.recv().await
    {
        // Paired decrements with no await in between keep
        // `sum(depths) == queued` at every executor step boundary.
        depth.set(depth.get() - 1);
        queued.set(queued.get() - 1);
        server
            .inner()
            .metrics_registry
            .set_gauge(&format!("dispatch.shard.{shard}.depth"), depth.get() as f64);
        {
            let inner = server.inner();
            let m = &inner.metrics_registry;
            // Lazy deadline ejection (bounded-queue mode only): the
            // deadline passed while the job sat in the queue, so it is
            // dead on arrival — reply now and never pay the routing
            // cost (or reach placement) for it. Unbounded queues keep
            // the historic behaviour: dead work still burns a full
            // dispatch slot before `execute` sheds it, which is exactly
            // the waste that sustains a metastable failure.
            if eject_expired && job.req.deadline.is_some_and(|d| now() > d) {
                ejected.set(ejected.get() + 1);
                ejected_total.set(ejected_total.get() + 1);
                m.inc("dispatch.ejected");
                m.inc(&format!("dispatch.shard.{shard}.ejected"));
                let _ = reply.send(Err(InvokeError::DeadlineExceeded));
                continue;
            }
            // The observed queue wait is the adaptive admission
            // limiter's control signal.
            inner.admission.observe_queue_wait(now() - enqueued);
            if let Some(limit) = inner.admission.current_limit() {
                m.set_gauge("admission.limit", limit as f64);
            }
        }
        // This worker is one task, so jobs on one shard pay the routing
        // cost back to back while other shards overlap theirs.
        sleep(overhead).await;
        let inner = server.inner();
        inner
            .metrics_registry
            .observe("dispatch.shard_ns", (now() - enqueued).as_nanos() as f64);
        if let Some(t) = &inner.config.tracer {
            t.record(
                "server",
                "dispatch",
                t_dispatch,
                now(),
                job.req.span,
                vec![],
            );
        }
        spawn(async move {
            let out = server.execute(job).await;
            // A dropped receiver means the front-door waiter is gone;
            // the work still completed, so the result is simply unread.
            let _ = reply.send(out);
        });
    }
}

impl KaasServer {
    /// Handles one request end to end (public for in-process use and
    /// tests; network callers go through [`KaasServer::serve`]).
    pub async fn handle(&self, req: Request) -> Response {
        // Reserved flow endpoints: register a workflow DAG / trigger a
        // server-side dataflow run. These shape their own response
        // (they carry a per-step report alongside the result).
        if req.kernel.starts_with(crate::flow::FLOW_KERNEL_PREFIX) {
            return self.flow_frame(req).await;
        }
        let id = req.id;
        let kernel = req.kernel.clone();
        match self.handle_inner(req).await {
            Ok((data, report)) => Response {
                id,
                result: Ok(data),
                report: Some(report),
                flow: None,
            },
            Err(e) => {
                if kernel != DISCOVERY_KERNEL {
                    let m = &self.inner().metrics_registry;
                    m.inc("errors");
                    m.inc(&format!("errors.{}", e.kind()));
                }
                Response {
                    id,
                    result: Err(e),
                    report: None,
                    flow: None,
                }
            }
        }
    }

    pub(crate) async fn handle_inner(
        &self,
        req: Request,
    ) -> Result<(DataRef, InvocationReport), InvokeError> {
        // Reserved discovery endpoint: federated clients list the
        // kernels a site serves before routing work to it.
        if req.kernel == DISCOVERY_KERNEL {
            return Ok(self.discovery_response());
        }
        // Reserved data-plane endpoints: put/get/seal/pin against the
        // content-addressed object store.
        if req.kernel.starts_with(DATA_KERNEL_PREFIX) {
            return self.dataplane_op(req).await;
        }
        // Reserved guest-code endpoints: register/list/remove against
        // the tenant kernel registry.
        if req.kernel.starts_with(CODE_KERNEL_PREFIX) {
            return self.code_op(req).await;
        }
        let inner = self.inner();
        let tracer = inner.config.tracer.clone();
        let parent = req.span;
        let span = |name: &str, start: SimTime, end: SimTime| {
            if let Some(t) = &tracer {
                t.record("server", name, start, end, parent, vec![]);
            }
        };
        let submitted = now();
        let permit = match inner.admission.admit(req.tenant.as_deref()).await {
            Ok(permit) => permit,
            Err(InvokeError::Overloaded { retry_after: None }) => {
                // Cooperative backpressure: attach a deterministic
                // estimate of when the backlog will have drained, so
                // well-behaved clients retry after it instead of
                // hammering a saturated server.
                let backlog = inner.dispatch.queued() / inner.dispatch.shard_count().max(1);
                return Err(InvokeError::Overloaded {
                    retry_after: Some(self.retry_after_hint(backlog)),
                });
            }
            Err(e) => return Err(e),
        };
        if let Some(limit) = inner.admission.current_limit() {
            inner
                .metrics_registry
                .set_gauge("admission.limit", limit as f64);
        }
        span("admission", submitted, now());
        // Request parsing stays on the front door: resolve the kernel
        // before any dispatch cost so unknown names never consume
        // router capacity.
        let kernel = match inner.registry.lookup(&req.kernel) {
            Some(k) => k,
            // Guest kernels resolve alongside compiled-in ones: a bare
            // `tenant/name` means latest live version, `@vN` pins one.
            None => match inner.guests.resolve(&req.kernel) {
                Some(g) => {
                    // The verifier's worst-case fuel bound is the
                    // predicted cost of this invocation — recorded so
                    // admission policy can be tuned against it.
                    if let Some(fuel) = g.predicted_fuel() {
                        inner
                            .metrics_registry
                            .observe("guest.predicted_fuel", fuel as f64);
                    }
                    g as Rc<dyn Kernel>
                }
                None if crate::guest::is_guest_name(&req.kernel) => {
                    return Err(InvokeError::UnknownGuestKernel(req.kernel.clone()));
                }
                None => return Err(InvokeError::UnknownKernel(req.kernel.clone())),
            },
        };
        let job = ExecJob {
            req,
            kernel,
            permit,
            submitted,
        };
        let t_dispatch = now();
        match &inner.dispatch {
            // The A/B baseline: the router runs on one server thread,
            // so every invocation pays the full dispatch overhead inside
            // one global critical section (the Fig. 12b ≈35 µs cost —
            // saturates near 1/overhead dispatches per second).
            DispatchState::Serialized { lock } => {
                {
                    let _router = lock.acquire(1).await;
                    sleep(inner.config.dispatch_overhead).await;
                }
                span("dispatch", t_dispatch, now());
                self.execute(job).await
            }
            // Sharded: the front door only classifies + enqueues;
            // placement, the cache step, retry, and the runner handoff
            // all happen on the chosen shard's worker task.
            DispatchState::Sharded {
                front_lock,
                config,
                shards,
                queued,
                ejected_total,
                ..
            } => {
                {
                    let _front = front_lock.acquire(1).await;
                    sleep(config.front_door_overhead).await;
                }
                let m = &inner.metrics_registry;
                m.observe(
                    "dispatch.front_door_ns",
                    (now() - t_dispatch).as_nanos() as f64,
                );
                let shard = inner.dispatch.pick_shard(&job.req.kernel);
                let q = &shards[shard];
                // Enqueue-time shedding: dead or over-cap work never
                // enters the queue, so it cannot crowd out live
                // requests or consume a worker's routing cost. Every
                // shed is counted — never silent.
                let eject = |err: InvokeError| {
                    q.ejected.set(q.ejected.get() + 1);
                    ejected_total.set(ejected_total.get() + 1);
                    m.inc("dispatch.ejected");
                    m.inc(&format!("dispatch.shard.{shard}.ejected"));
                    err
                };
                if job.req.deadline.is_some_and(|d| now() > d) {
                    return Err(eject(InvokeError::DeadlineExceeded));
                }
                if config.queue_cap.is_some_and(|cap| q.depth.get() >= cap) {
                    let hint = self.retry_after_hint(q.depth.get());
                    return Err(eject(InvokeError::Overloaded {
                        retry_after: Some(hint),
                    }));
                }
                // Paired increments with no await in between: the
                // sanitizer checks `sum(depths) == queued` after every
                // executor step.
                q.depth.set(q.depth.get() + 1);
                queued.set(queued.get() + 1);
                m.set_gauge(
                    &format!("dispatch.shard.{shard}.depth"),
                    q.depth.get() as f64,
                );
                let (reply_tx, reply_rx) = channel::oneshot();
                let dj = DispatchJob {
                    server: self.clone(),
                    job,
                    t_dispatch,
                    enqueued: now(),
                    reply: reply_tx,
                };
                if q.tx.send(dj).await.is_err() {
                    // No worker drains this queue (the server was built
                    // outside a running simulation): undo the enqueue
                    // accounting and report the path unavailable.
                    q.depth.set(q.depth.get() - 1);
                    queued.set(queued.get() - 1);
                    return Err(InvokeError::Disconnected);
                }
                reply_rx.await.map_err(|_| InvokeError::Disconnected)?
            }
        }
    }

    /// The deterministic drain-time estimate attached to `Overloaded`
    /// sheds: how long a backlog of `backlog` jobs ahead of the caller
    /// takes one shard worker to route, capped at one second. A pure
    /// function of observable queue state, so same-seed replays emit
    /// identical hints.
    pub(crate) fn retry_after_hint(&self, backlog: usize) -> Duration {
        let overhead = self.inner().config.dispatch_overhead;
        overhead
            .saturating_mul(backlog.min(1_000_000) as u32 + 1)
            .min(Duration::from_secs(1))
    }

    /// The execution pipeline one admitted job walks — input
    /// materialization, deadline shedding, placement + cache step +
    /// retry, report/metrics recording, and reply shaping. Runs inline
    /// under the serialized engine and on a spawned task per job under
    /// the sharded one.
    pub(crate) async fn execute(
        &self,
        job: ExecJob,
    ) -> Result<(DataRef, InvocationReport), InvokeError> {
        let ExecJob {
            req,
            kernel,
            permit: _permit,
            submitted,
        } = job;
        let inner = self.inner();
        let tracer = inner.config.tracer.clone();
        let parent = req.span;
        let span = |name: &str, start: SimTime, end: SimTime| {
            if let Some(t) = &tracer {
                t.record("server", name, start, end, parent, vec![]);
            }
        };

        // Materialize the input.
        let oob = matches!(req.data, DataRef::OutOfBand(_)) || req.reply_out_of_band;
        let object = match &req.data {
            DataRef::Object(r) => Some(*r),
            _ => None,
        };
        let t_input = now();
        let input = match req.data {
            DataRef::InBand(v) => {
                // Runner-side deserialization of the in-band payload.
                sleep(inner.config.serialization.time(v.wire_bytes())).await;
                span("deserialize", t_input, now());
                v
            }
            DataRef::OutOfBand(h) => {
                let v = inner.shm.take(h).await.ok_or(InvokeError::BadHandle)?;
                span("shm_take", t_input, now());
                v
            }
            DataRef::Object(r) => {
                // A content address resolves against the host object
                // store — no deserialization at all.
                let v = inner.dataplane.resolve(&r).ok_or(InvokeError::BadHandle)?;
                span("ref_resolve", t_input, now());
                v
            }
        };
        let enveloped = matches!(input, Value::Sized { .. });
        // Only sealed (immutable) objects may be cached in device
        // memory; an unsealed ref still resolves but re-uploads every
        // time.
        let cacheable = object.filter(|r| inner.dataplane.store().is_sealed(r.hash));

        // The deadline bounds time-to-start: shed rather than dispatch
        // work the client has already given up on.
        if req.deadline.is_some_and(|d| now() > d) {
            return Err(InvokeError::DeadlineExceeded);
        }

        // Dispatch with retries if the chosen runner died. Attempt
        // count, backoff, and budget come from the retry policy
        // (`ServerConfig::retry`); failures feed the per-device circuit
        // breaker and the slot's eviction accounting.
        let retry = &inner.config.retry;
        let m = &inner.metrics_registry;
        let mut attempts = 0u32;
        let mut backoff_spent = Duration::ZERO;
        let (output, timings, runner_id, device_id, started, degraded) = loop {
            attempts += 1;
            if attempts > 1 {
                m.inc("retries.attempted");
            }
            let t_wait = now();
            // Runners are keyed by the *resolved* kernel identity, not
            // the requested name: a guest bare name re-resolves over
            // time, and a warm runner must never serve a superseded
            // version.
            let (slot, degraded) = self.place(kernel.name(), &kernel, cacheable.as_ref())?;
            // Data-plane cache step: a sealed operand either already
            // sits in the chosen device's memory (hit — the host→device
            // copy is skipped) or is admitted now (miss — this
            // invocation's copy_in is the upload, evicting LRU objects
            // under pressure).
            let mut hit = false;
            let mut admitted = false;
            let mut guard_object = None;
            if let Some(r) = &cacheable {
                let t_cache = now();
                if let Some(mgr) = inner.dataplane.manager(slot.device()) {
                    hit = mgr.touch(r.hash);
                    if hit {
                        m.inc("dataplane.hits");
                    } else {
                        m.inc("dataplane.misses");
                        match inner.dataplane.admit(slot.device(), r) {
                            Ok(evicted) => {
                                admitted = true;
                                m.add("dataplane.evictions", evicted.len() as u64);
                                if let Some(t) = &tracer {
                                    for h in evicted {
                                        t.record(
                                            "server",
                                            "evict",
                                            t_cache,
                                            now(),
                                            parent,
                                            vec![
                                                ("object".into(), format!("{h:016x}")),
                                                ("device".into(), slot.device().to_string()),
                                            ],
                                        );
                                    }
                                }
                            }
                            Err(e) => {
                                return Err(InvokeError::DeviceOom(format!(
                                    "{} cannot hold {r}: {e}",
                                    slot.device()
                                )));
                            }
                        }
                    }
                    guard_object = Some((Rc::clone(mgr), r.hash));
                }
                if let Some(t) = &tracer {
                    t.record(
                        "server",
                        "cache_lookup",
                        t_cache,
                        now(),
                        parent,
                        vec![("outcome".into(), if hit { "hit" } else { "miss" }.into())],
                    );
                }
            }
            // RAII claim: released on every exit path below, including
            // kernel errors and retries. Also holds the operand's
            // in-flight reference so it cannot be evicted mid-read.
            let claim = InFlightGuard::claim_with_object(&slot, guard_object);
            let runner = slot.runner().await;
            let started = now();
            let result = if hit {
                runner.invoke_cached(&input).await
            } else {
                runner.invoke(&input).await
            };
            drop(claim);
            slot.touch();
            if let Some(timeout) = inner.config.idle_timeout {
                inner.pool.arm_reaper(&slot, timeout);
            }
            match result {
                Ok((output, timings)) => {
                    slot.record_success();
                    self.note_breaker(slot.device(), true);
                    if let Some(t) = &tracer {
                        // Device phases ran back to back ending now;
                        // tile them backwards from the finish time and
                        // charge everything before them to queueing.
                        let t_done = now();
                        let device_start = t_done.saturating_sub(
                            timings.copy_in + timings.kernel_exec + timings.copy_out,
                        );
                        t.record("server", "queue_wait", t_wait, device_start, parent, vec![]);
                        if admitted {
                            // The host→device copy doubled as the object
                            // upload into the device cache.
                            t.record(
                                "server",
                                "upload",
                                device_start,
                                device_start + timings.copy_in,
                                parent,
                                vec![("device".into(), slot.device().to_string())],
                            );
                        }
                        let track = runner.id().to_string();
                        let mut at = device_start;
                        for (name, d) in [
                            ("copy_in", timings.copy_in),
                            ("kernel_exec", timings.kernel_exec),
                            ("copy_out", timings.copy_out),
                        ] {
                            t.record(track.clone(), name, at, at + d, parent, vec![]);
                            at += d;
                        }
                    }
                    break (
                        output,
                        timings,
                        runner.id(),
                        runner.device_id(),
                        started,
                        degraded,
                    );
                }
                Err(InvokeError::RunnerFailed(reason)) => {
                    if admitted {
                        if let Some(r) = &cacheable {
                            // The upload never completed (it died with
                            // the runner): do not claim residency.
                            inner.dataplane.unmark(slot.device(), r.hash);
                        }
                    }
                    self.note_breaker(slot.device(), false);
                    if slot.record_failure(inner.config.eviction.failure_threshold) {
                        inner.pool.quarantine(&slot);
                        m.inc("evictions");
                    }
                    if let Some(t) = &tracer {
                        t.record(
                            "server",
                            "attempt_failed",
                            t_wait,
                            now(),
                            parent,
                            vec![("runner".into(), runner.id().to_string())],
                        );
                    }
                    if attempts >= retry.max_attempts {
                        return Err(InvokeError::RunnerFailed(reason));
                    }
                    let mut wait = retry.backoff.backoff(attempts, req.id);
                    if let Some(budget) = retry.budget {
                        let remaining = budget.saturating_sub(backoff_spent);
                        if remaining.is_zero() && !wait.is_zero() {
                            // Budget exhausted: give up rather than
                            // retry hot with no wait.
                            return Err(InvokeError::RunnerFailed(reason));
                        }
                        wait = wait.min(remaining);
                    }
                    if !wait.is_zero() {
                        sleep(wait).await;
                        backoff_spent += wait;
                    }
                }
                Err(e) => {
                    if admitted {
                        if let Some(r) = &cacheable {
                            inner.dataplane.unmark(slot.device(), r.hash);
                        }
                    }
                    return Err(e);
                }
            }
        };

        let completed = now();
        let report = InvocationReport {
            kernel: req.kernel.clone(),
            runner: runner_id,
            device: device_id,
            cold_start: timings.first_invocation,
            submitted,
            started,
            completed,
            copy_in: timings.copy_in,
            kernel_exec: timings.kernel_exec,
            copy_out: timings.copy_out,
            degraded,
        };
        inner.metrics.record(report.clone());
        self.record_registry(&report);
        // Guest usage accounting: bill whatever this kernel metered
        // since the last bill into the per-tenant `guest.*` counters.
        // The resolved name (`tenant/name@vN`) is the billing key even
        // when the request used a bare latest-version name.
        if crate::guest::is_guest_name(kernel.name()) {
            inner.guests.account(kernel.name(), m);
        }
        if object.is_some() {
            m.set_gauge(
                "dataplane.bytes_resident",
                inner.dataplane.bytes_resident() as f64,
            );
            for (dev, bytes) in inner.dataplane.residency() {
                m.set_gauge(&format!("dataplane.{dev}.bytes_resident"), bytes as f64);
            }
        }

        // Descriptor-mode requests get descriptor-sized responses: the
        // logical result size is the kernel's device→host volume.
        let output = if enveloped {
            let bytes_out = kernel
                .work(input.payload())
                .map(|w| w.bytes_out)
                .unwrap_or(0)
                .max(output.wire_bytes());
            Value::sized(bytes_out, output)
        } else {
            output
        };
        // Internal flow-executor handoff: the output goes straight to
        // the object store, so skip reply shaping — no serialization,
        // no shm hop, nothing crosses the wire.
        if req.reply_to_store {
            return Ok((DataRef::InBand(output), report));
        }
        // Return the output the same way the input came in.
        let t_reply = now();
        let data = if oob {
            let bytes = output.wire_bytes();
            DataRef::OutOfBand(inner.shm.put(output, bytes).await)
        } else {
            sleep(inner.config.serialization.time(output.wire_bytes())).await;
            DataRef::InBand(output)
        };
        span("reply", t_reply, now());
        Ok((data, report))
    }

    /// Feeds one successful invocation into the structured registry:
    /// event counters, stage-latency histograms (global and per-kernel),
    /// and current-level gauges.
    fn record_registry(&self, report: &InvocationReport) {
        let inner = self.inner();
        let m = &inner.metrics_registry;
        let k = &report.kernel;
        m.inc("invocations");
        m.inc(&format!("invocations.{k}"));
        if report.cold_start {
            m.inc("cold_starts");
        }
        if report.degraded {
            m.inc("degraded.served");
        }
        for (name, v) in [
            ("latency.server", report.server_latency()),
            ("latency.queue", report.queue_time()),
            ("copy_in", report.copy_in),
            ("kernel_exec", report.kernel_exec),
            ("copy_out", report.copy_out),
        ] {
            m.observe(name, v.as_secs_f64());
            m.observe(&format!("{name}.{k}"), v.as_secs_f64());
        }
        m.set_gauge("in_flight", inner.pool.total_in_flight() as f64);
        m.set_gauge("runners", inner.pool.total_runners() as f64);
        let elapsed = now().as_secs_f64();
        if elapsed > 0.0 {
            for d in inner.pool.devices() {
                m.set_gauge(
                    &format!("{}.utilization", d.id()),
                    (d.busy_seconds() / elapsed).min(1.0),
                );
            }
        }
    }

    /// Feeds one invocation outcome into the device's circuit breaker
    /// (no-op when breakers are disabled) and publishes the resulting
    /// state as a `breaker.<device>.state` gauge (0 closed, 1 half-open,
    /// 2 open).
    fn note_breaker(&self, device: DeviceId, success: bool) {
        let inner = self.inner();
        if let Some(breaker) = inner.breakers.for_device(device) {
            if success {
                breaker.record_success();
            } else {
                breaker.record_failure();
            }
            let level = match breaker.state() {
                BreakerState::Closed => 0.0,
                BreakerState::HalfOpen => 1.0,
                BreakerState::Open => 2.0,
            };
            inner
                .metrics_registry
                .set_gauge(&format!("breaker.{device}.state"), level);
        }
    }

    /// Chooses (or starts) a runner slot for `kernel` on its preferred
    /// device class, degrading to a configured fallback class when the
    /// preferred one has no usable device. `operand` is the request's
    /// sealed object ref, if any — the data-plane residency hint passed
    /// through to the scheduler. Returns the slot and whether the
    /// placement was degraded.
    fn place(
        &self,
        name: &str,
        kernel: &Rc<dyn Kernel>,
        operand: Option<&ObjectRef>,
    ) -> Result<(Rc<RunnerSlot>, bool), InvokeError> {
        let preferred = kernel.device_class();
        match self.place_on(name, kernel, preferred, operand) {
            Ok(slot) => Ok((slot, false)),
            Err(e @ (InvokeError::NoDevice(_) | InvokeError::CircuitOpen(_))) => {
                if let Some(fallback) = self.inner().config.fallback.next(preferred) {
                    if let Ok(slot) = self.place_on(name, kernel, fallback, operand) {
                        return Ok((slot, true));
                    }
                }
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    /// Chooses (or starts) a runner slot for `kernel` on `class`:
    /// scheduler first, autoscaler on cold/saturated fleets, queueing as
    /// the fallback. Only slots on online devices of `class` whose
    /// circuit breaker allows placements are eligible. Claims nothing —
    /// the caller takes the in-flight guard.
    fn place_on(
        &self,
        name: &str,
        kernel: &Rc<dyn Kernel>,
        class: DeviceClass,
        operand: Option<&ObjectRef>,
    ) -> Result<Rc<RunnerSlot>, InvokeError> {
        let inner = self.inner();
        let pool = &inner.pool;
        let config = &inner.config;
        let breakers = &inner.breakers;
        let slot_ok = |s: &RunnerSlot| {
            pool.device(s.device())
                .is_some_and(|d| d.class() == class && d.is_online())
                && breakers.allows(s.device())
        };
        let dev_ok = |d: &kaas_accel::Device| breakers.allows(d.id());
        let scale_ctx = |pool: &RunnerPool| ScaleCtx {
            kernel: name,
            runners: pool.runner_count(name),
            in_flight: pool.in_flight(name),
            cap_per_runner: config.runner.max_inflight,
            device_capacity: pool.class_capacity(class),
        };
        if pool.runner_count(name) == 0 {
            // Bootstrap: a cold deployment always starts its first
            // runner, whatever the policy says.
            if let Ok(slot) = pool.spawn_runner_where(name, kernel, config.runner, class, dev_ok) {
                return Ok(slot);
            }
        } else {
            // Proactive policies may grow the fleet before placement.
            if config.autoscaler.on_invocation(&scale_ctx(pool)) == ScaleDecision::ScaleUp {
                let _ = pool.spawn_runner_where(name, kernel, config.runner, class, dev_ok);
            }
            let (slots, mut views) = pool.usable_slots_where(name, slot_ok);
            if !slots.is_empty() {
                // Overlay the data-plane residency hint so cache-aware
                // schedulers ([`WarmFirst`](crate::WarmFirst)) can route
                // to the device that already holds the operand.
                if let Some(r) = operand {
                    for v in &mut views {
                        v.resident = inner.dataplane.is_resident(v.device, r.hash);
                    }
                }
                let ctx = SchedCtx {
                    kernel: name,
                    slots: &views,
                    cap: config.runner.max_inflight,
                };
                if let Some(choice) = config.scheduler.pick(&ctx) {
                    return Ok(Rc::clone(&slots[choice.index]));
                }
                // Every eligible runner is saturated: ask the autoscaler.
                if config.autoscaler.on_saturated(&scale_ctx(pool)) == ScaleDecision::ScaleUp {
                    if let Ok(slot) =
                        pool.spawn_runner_where(name, kernel, config.runner, class, dev_ok)
                    {
                        return Ok(slot);
                    }
                }
            } else {
                // The kernel has runners, but none on an eligible device
                // of this class (offline / breaker-open / fallback class
                // not yet started): try starting one.
                if let Ok(slot) =
                    pool.spawn_runner_where(name, kernel, config.runner, class, dev_ok)
                {
                    return Ok(slot);
                }
            }
        }
        // Fall back to queueing on the least-claimed eligible slot.
        pool.least_claimed_where(name, slot_ok)
            .ok_or_else(|| self.placement_error(class))
    }

    /// The error reported when no placement on `class` was possible:
    /// [`InvokeError::CircuitOpen`] when online devices of the class
    /// exist but every breaker is open, [`InvokeError::NoDevice`]
    /// otherwise (none deployed, or all offline).
    fn placement_error(&self, class: DeviceClass) -> InvokeError {
        let inner = self.inner();
        let online: Vec<DeviceId> = inner
            .pool
            .devices()
            .iter()
            .filter(|d| d.class() == class && d.is_online())
            .map(|d| d.id())
            .collect();
        if !online.is_empty() && online.iter().all(|id| !inner.breakers.allows(*id)) {
            InvokeError::CircuitOpen(class.to_string())
        } else {
            InvokeError::NoDevice(class.to_string())
        }
    }

    fn discovery_response(&self) -> (DataRef, InvocationReport) {
        let names = self
            .inner()
            .registry
            .names()
            .into_iter()
            .map(Value::Text)
            .collect();
        (
            DataRef::InBand(Value::List(names)),
            self.control_report(DISCOVERY_KERNEL),
        )
    }

    /// The synthetic report attached to control-kernel responses
    /// (discovery, data-plane ops): no runner or device was involved.
    pub(crate) fn control_report(&self, kernel: &str) -> InvocationReport {
        InvocationReport {
            kernel: kernel.to_owned(),
            runner: RunnerId(u32::MAX),
            device: DeviceId(u32::MAX),
            cold_start: false,
            submitted: now(),
            started: now(),
            completed: now(),
            copy_in: Duration::ZERO,
            kernel_exec: Duration::ZERO,
            copy_out: Duration::ZERO,
            degraded: false,
        }
    }

    /// Serves one `_kaas/data/*` control operation (put/get/seal/pin)
    /// against the object store. Control operations bypass placement —
    /// no device work happens — but pay the same transport costs as any
    /// request (serialization in-band, a memcpy through shared memory
    /// out-of-band: the fast path for large objects).
    async fn dataplane_op(&self, req: Request) -> Result<(DataRef, InvocationReport), InvokeError> {
        let inner = self.inner();
        let oob = matches!(req.data, DataRef::OutOfBand(_)) || req.reply_out_of_band;
        let input = match req.data {
            DataRef::InBand(v) => {
                sleep(inner.config.serialization.time(v.wire_bytes())).await;
                v
            }
            DataRef::OutOfBand(h) => inner.shm.take(h).await.ok_or(InvokeError::BadHandle)?,
            DataRef::Object(r) => inner.dataplane.resolve(&r).ok_or(InvokeError::BadHandle)?,
        };
        let dp = &inner.dataplane;
        let m = &inner.metrics_registry;
        let parse_ref = |v: &Value| {
            ObjectRef::from_value(v)
                .ok_or_else(|| InvokeError::BadInput("expected an object ref".into()))
        };
        let op = req.kernel.strip_prefix(DATA_KERNEL_PREFIX).unwrap_or("");
        let output = match op {
            "put" => {
                let r = dp.put(input);
                m.inc("dataplane.puts");
                m.set_gauge("dataplane.objects", dp.store().len() as f64);
                m.set_gauge("dataplane.bytes_stored", dp.store().bytes_stored() as f64);
                r.to_value()
            }
            "get" => {
                let r = parse_ref(&input)?;
                dp.resolve(&r).ok_or(InvokeError::BadHandle)?
            }
            "seal" => {
                let r = parse_ref(&input)?;
                if !dp.seal(r.hash) {
                    return Err(InvokeError::BadHandle);
                }
                Value::Unit
            }
            "pin" => {
                let r = parse_ref(&input)?;
                if !dp.pin(r.hash) {
                    return Err(InvokeError::BadHandle);
                }
                Value::Unit
            }
            _ => return Err(InvokeError::UnknownKernel(req.kernel.clone())),
        };
        let report = self.control_report(&req.kernel);
        let data = if oob {
            let bytes = output.wire_bytes();
            DataRef::OutOfBand(inner.shm.put(output, bytes).await)
        } else {
            sleep(inner.config.serialization.time(output.wire_bytes())).await;
            DataRef::InBand(output)
        };
        Ok((data, report))
    }
}
