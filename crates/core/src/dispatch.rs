//! The per-invocation data path: admission → serialized dispatch →
//! placement (scheduler + autoscaler) → execution with retry.
//!
//! Split from [`server`](crate::server) so the orchestration skeleton
//! (lifecycle, accept loop, accessors) stays separate from the hot
//! path every request walks.
//!
//! When a tracer is configured ([`ServerConfig::with_tracer`]
//! (crate::ServerConfig::with_tracer)) the hot path records a span per
//! stage — `admission`, `dispatch`, `deserialize`/`shm_take`,
//! `queue_wait`, then `copy_in`/`kernel_exec`/`copy_out` on the
//! serving runner's track, and finally `reply` — all parented under the
//! client's `roundtrip` span carried in [`Request::span`]. Every
//! invocation also feeds the [`MetricsRegistry`]
//! (crate::MetricsRegistry): counters (`invocations`, `cold_starts`,
//! `errors.*`), latency histograms, and level gauges.

use std::rc::Rc;
use std::time::Duration;

use kaas_accel::{DeviceClass, DeviceId};
use kaas_kernels::{Kernel, Value};
use kaas_simtime::{now, sleep, SimTime};

use crate::autoscaler::{ScaleCtx, ScaleDecision};
use crate::dataplane::{ObjectRef, DATA_KERNEL_PREFIX};
use crate::metrics::{InvocationReport, RunnerId};
use crate::pool::{InFlightGuard, RunnerPool, RunnerSlot};
use crate::protocol::{DataRef, InvokeError, Request, Response};
use crate::resilience::BreakerState;
use crate::scheduler::SchedCtx;
use crate::server::{KaasServer, DISCOVERY_KERNEL};

impl KaasServer {
    /// Handles one request end to end (public for in-process use and
    /// tests; network callers go through [`KaasServer::serve`]).
    pub async fn handle(&self, req: Request) -> Response {
        let id = req.id;
        let kernel = req.kernel.clone();
        match self.handle_inner(req).await {
            Ok((data, report)) => Response {
                id,
                result: Ok(data),
                report: Some(report),
            },
            Err(e) => {
                if kernel != DISCOVERY_KERNEL {
                    let m = &self.inner().metrics_registry;
                    m.inc("errors");
                    m.inc(&format!("errors.{}", e.kind()));
                }
                Response {
                    id,
                    result: Err(e),
                    report: None,
                }
            }
        }
    }

    async fn handle_inner(&self, req: Request) -> Result<(DataRef, InvocationReport), InvokeError> {
        // Reserved discovery endpoint: federated clients list the
        // kernels a site serves before routing work to it.
        if req.kernel == DISCOVERY_KERNEL {
            return Ok(self.discovery_response());
        }
        // Reserved data-plane endpoints: put/get/seal/pin against the
        // content-addressed object store.
        if req.kernel.starts_with(DATA_KERNEL_PREFIX) {
            return self.dataplane_op(req).await;
        }
        let inner = self.inner();
        let tracer = inner.config.tracer.clone();
        let parent = req.span;
        let span = |name: &str, start: SimTime, end: SimTime| {
            if let Some(t) = &tracer {
                t.record("server", name, start, end, parent, vec![]);
            }
        };
        let submitted = now();
        let _permit = inner.admission.admit(req.tenant.as_deref()).await?;
        span("admission", submitted, now());
        let t_dispatch = now();
        {
            let _router = inner.dispatch_lock.acquire(1).await;
            sleep(inner.config.dispatch_overhead).await;
        }
        span("dispatch", t_dispatch, now());
        let kernel = inner
            .registry
            .lookup(&req.kernel)
            .ok_or_else(|| InvokeError::UnknownKernel(req.kernel.clone()))?;

        // Materialize the input.
        let oob = matches!(req.data, DataRef::OutOfBand(_)) || req.reply_out_of_band;
        let object = match &req.data {
            DataRef::Object(r) => Some(*r),
            _ => None,
        };
        let t_input = now();
        let input = match req.data {
            DataRef::InBand(v) => {
                // Runner-side deserialization of the in-band payload.
                sleep(inner.config.serialization.time(v.wire_bytes())).await;
                span("deserialize", t_input, now());
                v
            }
            DataRef::OutOfBand(h) => {
                let v = inner.shm.take(h).await.ok_or(InvokeError::BadHandle)?;
                span("shm_take", t_input, now());
                v
            }
            DataRef::Object(r) => {
                // A content address resolves against the host object
                // store — no deserialization at all.
                let v = inner.dataplane.resolve(&r).ok_or(InvokeError::BadHandle)?;
                span("ref_resolve", t_input, now());
                v
            }
        };
        let enveloped = matches!(input, Value::Sized { .. });
        // Only sealed (immutable) objects may be cached in device
        // memory; an unsealed ref still resolves but re-uploads every
        // time.
        let cacheable = object.filter(|r| inner.dataplane.store().is_sealed(r.hash));

        // The deadline bounds time-to-start: shed rather than dispatch
        // work the client has already given up on.
        if req.deadline.is_some_and(|d| now() > d) {
            return Err(InvokeError::DeadlineExceeded);
        }

        // Dispatch with retries if the chosen runner died. Attempt
        // count, backoff, and budget come from the retry policy
        // (`ServerConfig::retry`); failures feed the per-device circuit
        // breaker and the slot's eviction accounting.
        let retry = &inner.config.retry;
        let m = &inner.metrics_registry;
        let mut attempts = 0u32;
        let mut backoff_spent = Duration::ZERO;
        let (output, timings, runner_id, device_id, started, degraded) = loop {
            attempts += 1;
            if attempts > 1 {
                m.inc("retries.attempted");
            }
            let t_wait = now();
            let (slot, degraded) = self.place(&req.kernel, &kernel, cacheable.as_ref())?;
            // Data-plane cache step: a sealed operand either already
            // sits in the chosen device's memory (hit — the host→device
            // copy is skipped) or is admitted now (miss — this
            // invocation's copy_in is the upload, evicting LRU objects
            // under pressure).
            let mut hit = false;
            let mut admitted = false;
            let mut guard_object = None;
            if let Some(r) = &cacheable {
                let t_cache = now();
                if let Some(mgr) = inner.dataplane.manager(slot.device()) {
                    hit = mgr.touch(r.hash);
                    if hit {
                        m.inc("dataplane.hits");
                    } else {
                        m.inc("dataplane.misses");
                        match inner.dataplane.admit(slot.device(), r) {
                            Ok(evicted) => {
                                admitted = true;
                                m.add("dataplane.evictions", evicted.len() as u64);
                                if let Some(t) = &tracer {
                                    for h in evicted {
                                        t.record(
                                            "server",
                                            "evict",
                                            t_cache,
                                            now(),
                                            parent,
                                            vec![
                                                ("object".into(), format!("{h:016x}")),
                                                ("device".into(), slot.device().to_string()),
                                            ],
                                        );
                                    }
                                }
                            }
                            Err(e) => {
                                return Err(InvokeError::DeviceOom(format!(
                                    "{} cannot hold {r}: {e}",
                                    slot.device()
                                )));
                            }
                        }
                    }
                    guard_object = Some((Rc::clone(mgr), r.hash));
                }
                if let Some(t) = &tracer {
                    t.record(
                        "server",
                        "cache_lookup",
                        t_cache,
                        now(),
                        parent,
                        vec![("outcome".into(), if hit { "hit" } else { "miss" }.into())],
                    );
                }
            }
            // RAII claim: released on every exit path below, including
            // kernel errors and retries. Also holds the operand's
            // in-flight reference so it cannot be evicted mid-read.
            let claim = InFlightGuard::claim_with_object(&slot, guard_object);
            let runner = slot.runner().await;
            let started = now();
            let result = if hit {
                runner.invoke_cached(&input).await
            } else {
                runner.invoke(&input).await
            };
            drop(claim);
            slot.touch();
            if let Some(timeout) = inner.config.idle_timeout {
                inner.pool.arm_reaper(&slot, timeout);
            }
            match result {
                Ok((output, timings)) => {
                    slot.record_success();
                    self.note_breaker(slot.device(), true);
                    if let Some(t) = &tracer {
                        // Device phases ran back to back ending now;
                        // tile them backwards from the finish time and
                        // charge everything before them to queueing.
                        let t_done = now();
                        let device_start = t_done.saturating_sub(
                            timings.copy_in + timings.kernel_exec + timings.copy_out,
                        );
                        t.record("server", "queue_wait", t_wait, device_start, parent, vec![]);
                        if admitted {
                            // The host→device copy doubled as the object
                            // upload into the device cache.
                            t.record(
                                "server",
                                "upload",
                                device_start,
                                device_start + timings.copy_in,
                                parent,
                                vec![("device".into(), slot.device().to_string())],
                            );
                        }
                        let track = runner.id().to_string();
                        let mut at = device_start;
                        for (name, d) in [
                            ("copy_in", timings.copy_in),
                            ("kernel_exec", timings.kernel_exec),
                            ("copy_out", timings.copy_out),
                        ] {
                            t.record(track.clone(), name, at, at + d, parent, vec![]);
                            at += d;
                        }
                    }
                    break (
                        output,
                        timings,
                        runner.id(),
                        runner.device_id(),
                        started,
                        degraded,
                    );
                }
                Err(InvokeError::RunnerFailed(reason)) => {
                    if admitted {
                        if let Some(r) = &cacheable {
                            // The upload never completed (it died with
                            // the runner): do not claim residency.
                            inner.dataplane.unmark(slot.device(), r.hash);
                        }
                    }
                    self.note_breaker(slot.device(), false);
                    if slot.record_failure(inner.config.eviction.failure_threshold) {
                        inner.pool.quarantine(&slot);
                        m.inc("evictions");
                    }
                    if let Some(t) = &tracer {
                        t.record(
                            "server",
                            "attempt_failed",
                            t_wait,
                            now(),
                            parent,
                            vec![("runner".into(), runner.id().to_string())],
                        );
                    }
                    if attempts >= retry.max_attempts {
                        return Err(InvokeError::RunnerFailed(reason));
                    }
                    let mut wait = retry.backoff.backoff(attempts, req.id);
                    if let Some(budget) = retry.budget {
                        let remaining = budget.saturating_sub(backoff_spent);
                        if remaining.is_zero() && !wait.is_zero() {
                            // Budget exhausted: give up rather than
                            // retry hot with no wait.
                            return Err(InvokeError::RunnerFailed(reason));
                        }
                        wait = wait.min(remaining);
                    }
                    if !wait.is_zero() {
                        sleep(wait).await;
                        backoff_spent += wait;
                    }
                }
                Err(e) => {
                    if admitted {
                        if let Some(r) = &cacheable {
                            inner.dataplane.unmark(slot.device(), r.hash);
                        }
                    }
                    return Err(e);
                }
            }
        };

        let completed = now();
        let report = InvocationReport {
            kernel: req.kernel.clone(),
            runner: runner_id,
            device: device_id,
            cold_start: timings.first_invocation,
            submitted,
            started,
            completed,
            copy_in: timings.copy_in,
            kernel_exec: timings.kernel_exec,
            copy_out: timings.copy_out,
            degraded,
        };
        inner.metrics.record(report.clone());
        self.record_registry(&report);
        if object.is_some() {
            m.set_gauge(
                "dataplane.bytes_resident",
                inner.dataplane.bytes_resident() as f64,
            );
            for (dev, bytes) in inner.dataplane.residency() {
                m.set_gauge(&format!("dataplane.{dev}.bytes_resident"), bytes as f64);
            }
        }

        // Descriptor-mode requests get descriptor-sized responses: the
        // logical result size is the kernel's device→host volume.
        let output = if enveloped {
            let bytes_out = kernel
                .work(input.payload())
                .map(|w| w.bytes_out)
                .unwrap_or(0)
                .max(output.wire_bytes());
            Value::sized(bytes_out, output)
        } else {
            output
        };
        // Return the output the same way the input came in.
        let t_reply = now();
        let data = if oob {
            let bytes = output.wire_bytes();
            DataRef::OutOfBand(inner.shm.put(output, bytes).await)
        } else {
            sleep(inner.config.serialization.time(output.wire_bytes())).await;
            DataRef::InBand(output)
        };
        span("reply", t_reply, now());
        Ok((data, report))
    }

    /// Feeds one successful invocation into the structured registry:
    /// event counters, stage-latency histograms (global and per-kernel),
    /// and current-level gauges.
    fn record_registry(&self, report: &InvocationReport) {
        let inner = self.inner();
        let m = &inner.metrics_registry;
        let k = &report.kernel;
        m.inc("invocations");
        m.inc(&format!("invocations.{k}"));
        if report.cold_start {
            m.inc("cold_starts");
        }
        if report.degraded {
            m.inc("degraded.served");
        }
        for (name, v) in [
            ("latency.server", report.server_latency()),
            ("latency.queue", report.queue_time()),
            ("copy_in", report.copy_in),
            ("kernel_exec", report.kernel_exec),
            ("copy_out", report.copy_out),
        ] {
            m.observe(name, v.as_secs_f64());
            m.observe(&format!("{name}.{k}"), v.as_secs_f64());
        }
        m.set_gauge("in_flight", inner.pool.total_in_flight() as f64);
        m.set_gauge("runners", inner.pool.total_runners() as f64);
        let elapsed = now().as_secs_f64();
        if elapsed > 0.0 {
            for d in inner.pool.devices() {
                m.set_gauge(
                    &format!("{}.utilization", d.id()),
                    (d.busy_seconds() / elapsed).min(1.0),
                );
            }
        }
    }

    /// Feeds one invocation outcome into the device's circuit breaker
    /// (no-op when breakers are disabled) and publishes the resulting
    /// state as a `breaker.<device>.state` gauge (0 closed, 1 half-open,
    /// 2 open).
    fn note_breaker(&self, device: DeviceId, success: bool) {
        let inner = self.inner();
        if let Some(breaker) = inner.breakers.for_device(device) {
            if success {
                breaker.record_success();
            } else {
                breaker.record_failure();
            }
            let level = match breaker.state() {
                BreakerState::Closed => 0.0,
                BreakerState::HalfOpen => 1.0,
                BreakerState::Open => 2.0,
            };
            inner
                .metrics_registry
                .set_gauge(&format!("breaker.{device}.state"), level);
        }
    }

    /// Chooses (or starts) a runner slot for `kernel` on its preferred
    /// device class, degrading to a configured fallback class when the
    /// preferred one has no usable device. `operand` is the request's
    /// sealed object ref, if any — the data-plane residency hint passed
    /// through to the scheduler. Returns the slot and whether the
    /// placement was degraded.
    fn place(
        &self,
        name: &str,
        kernel: &Rc<dyn Kernel>,
        operand: Option<&ObjectRef>,
    ) -> Result<(Rc<RunnerSlot>, bool), InvokeError> {
        let preferred = kernel.device_class();
        match self.place_on(name, kernel, preferred, operand) {
            Ok(slot) => Ok((slot, false)),
            Err(e @ (InvokeError::NoDevice(_) | InvokeError::CircuitOpen(_))) => {
                if let Some(fallback) = self.inner().config.fallback.next(preferred) {
                    if let Ok(slot) = self.place_on(name, kernel, fallback, operand) {
                        return Ok((slot, true));
                    }
                }
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    /// Chooses (or starts) a runner slot for `kernel` on `class`:
    /// scheduler first, autoscaler on cold/saturated fleets, queueing as
    /// the fallback. Only slots on online devices of `class` whose
    /// circuit breaker allows placements are eligible. Claims nothing —
    /// the caller takes the in-flight guard.
    fn place_on(
        &self,
        name: &str,
        kernel: &Rc<dyn Kernel>,
        class: DeviceClass,
        operand: Option<&ObjectRef>,
    ) -> Result<Rc<RunnerSlot>, InvokeError> {
        let inner = self.inner();
        let pool = &inner.pool;
        let config = &inner.config;
        let breakers = &inner.breakers;
        let slot_ok = |s: &RunnerSlot| {
            pool.device(s.device())
                .is_some_and(|d| d.class() == class && d.is_online())
                && breakers.allows(s.device())
        };
        let dev_ok = |d: &kaas_accel::Device| breakers.allows(d.id());
        let scale_ctx = |pool: &RunnerPool| ScaleCtx {
            kernel: name,
            runners: pool.runner_count(name),
            in_flight: pool.in_flight(name),
            cap_per_runner: config.runner.max_inflight,
            device_capacity: pool.class_capacity(class),
        };
        if pool.runner_count(name) == 0 {
            // Bootstrap: a cold deployment always starts its first
            // runner, whatever the policy says.
            if let Ok(slot) = pool.spawn_runner_where(name, kernel, config.runner, class, dev_ok) {
                return Ok(slot);
            }
        } else {
            // Proactive policies may grow the fleet before placement.
            if config.autoscaler.on_invocation(&scale_ctx(pool)) == ScaleDecision::ScaleUp {
                let _ = pool.spawn_runner_where(name, kernel, config.runner, class, dev_ok);
            }
            let (slots, mut views) = pool.usable_slots_where(name, slot_ok);
            if !slots.is_empty() {
                // Overlay the data-plane residency hint so cache-aware
                // schedulers ([`WarmFirst`](crate::WarmFirst)) can route
                // to the device that already holds the operand.
                if let Some(r) = operand {
                    for v in &mut views {
                        v.resident = inner.dataplane.is_resident(v.device, r.hash);
                    }
                }
                let ctx = SchedCtx {
                    kernel: name,
                    slots: &views,
                    cap: config.runner.max_inflight,
                };
                if let Some(choice) = config.scheduler.pick(&ctx) {
                    return Ok(Rc::clone(&slots[choice.index]));
                }
                // Every eligible runner is saturated: ask the autoscaler.
                if config.autoscaler.on_saturated(&scale_ctx(pool)) == ScaleDecision::ScaleUp {
                    if let Ok(slot) =
                        pool.spawn_runner_where(name, kernel, config.runner, class, dev_ok)
                    {
                        return Ok(slot);
                    }
                }
            } else {
                // The kernel has runners, but none on an eligible device
                // of this class (offline / breaker-open / fallback class
                // not yet started): try starting one.
                if let Ok(slot) =
                    pool.spawn_runner_where(name, kernel, config.runner, class, dev_ok)
                {
                    return Ok(slot);
                }
            }
        }
        // Fall back to queueing on the least-claimed eligible slot.
        pool.least_claimed_where(name, slot_ok)
            .ok_or_else(|| self.placement_error(class))
    }

    /// The error reported when no placement on `class` was possible:
    /// [`InvokeError::CircuitOpen`] when online devices of the class
    /// exist but every breaker is open, [`InvokeError::NoDevice`]
    /// otherwise (none deployed, or all offline).
    fn placement_error(&self, class: DeviceClass) -> InvokeError {
        let inner = self.inner();
        let online: Vec<DeviceId> = inner
            .pool
            .devices()
            .iter()
            .filter(|d| d.class() == class && d.is_online())
            .map(|d| d.id())
            .collect();
        if !online.is_empty() && online.iter().all(|id| !inner.breakers.allows(*id)) {
            InvokeError::CircuitOpen(class.to_string())
        } else {
            InvokeError::NoDevice(class.to_string())
        }
    }

    fn discovery_response(&self) -> (DataRef, InvocationReport) {
        let names = self
            .inner()
            .registry
            .names()
            .into_iter()
            .map(Value::Text)
            .collect();
        (
            DataRef::InBand(Value::List(names)),
            self.control_report(DISCOVERY_KERNEL),
        )
    }

    /// The synthetic report attached to control-kernel responses
    /// (discovery, data-plane ops): no runner or device was involved.
    fn control_report(&self, kernel: &str) -> InvocationReport {
        InvocationReport {
            kernel: kernel.to_owned(),
            runner: RunnerId(u32::MAX),
            device: DeviceId(u32::MAX),
            cold_start: false,
            submitted: now(),
            started: now(),
            completed: now(),
            copy_in: Duration::ZERO,
            kernel_exec: Duration::ZERO,
            copy_out: Duration::ZERO,
            degraded: false,
        }
    }

    /// Serves one `_kaas/data/*` control operation (put/get/seal/pin)
    /// against the object store. Control operations bypass placement —
    /// no device work happens — but pay the same transport costs as any
    /// request (serialization in-band, a memcpy through shared memory
    /// out-of-band: the fast path for large objects).
    async fn dataplane_op(&self, req: Request) -> Result<(DataRef, InvocationReport), InvokeError> {
        let inner = self.inner();
        let oob = matches!(req.data, DataRef::OutOfBand(_)) || req.reply_out_of_band;
        let input = match req.data {
            DataRef::InBand(v) => {
                sleep(inner.config.serialization.time(v.wire_bytes())).await;
                v
            }
            DataRef::OutOfBand(h) => inner.shm.take(h).await.ok_or(InvokeError::BadHandle)?,
            DataRef::Object(r) => inner.dataplane.resolve(&r).ok_or(InvokeError::BadHandle)?,
        };
        let dp = &inner.dataplane;
        let m = &inner.metrics_registry;
        let parse_ref = |v: &Value| {
            ObjectRef::from_value(v)
                .ok_or_else(|| InvokeError::BadInput("expected an object ref".into()))
        };
        let op = req.kernel.strip_prefix(DATA_KERNEL_PREFIX).unwrap_or("");
        let output = match op {
            "put" => {
                let r = dp.put(input);
                m.inc("dataplane.puts");
                m.set_gauge("dataplane.objects", dp.store().len() as f64);
                m.set_gauge("dataplane.bytes_stored", dp.store().bytes_stored() as f64);
                r.to_value()
            }
            "get" => {
                let r = parse_ref(&input)?;
                dp.resolve(&r).ok_or(InvokeError::BadHandle)?
            }
            "seal" => {
                let r = parse_ref(&input)?;
                if !dp.seal(r.hash) {
                    return Err(InvokeError::BadHandle);
                }
                Value::Unit
            }
            "pin" => {
                let r = parse_ref(&input)?;
                if !dp.pin(r.hash) {
                    return Err(InvokeError::BadHandle);
                }
                Value::Unit
            }
            _ => return Err(InvokeError::UnknownKernel(req.kernel.clone())),
        };
        let report = self.control_report(&req.kernel);
        let data = if oob {
            let bytes = output.wire_bytes();
            DataRef::OutOfBand(inner.shm.put(output, bytes).await)
        } else {
            sleep(inner.config.serialization.time(output.wire_bytes())).await;
            DataRef::InBand(output)
        };
        Ok((data, report))
    }
}
