//! Deterministic fault injection: seeded failure timelines for chaos
//! testing the control plane.
//!
//! A [`FaultPlan`] is a schedule of [`FaultEvent`]s — runner crashes,
//! device offline/online flaps, link latency spikes, and dropped frames
//! — either hand-built with [`FaultPlan::push`] or drawn from a seed
//! with [`FaultPlan::storm`]. The same seed always yields the same
//! timeline, so a chaos run replays byte-for-byte.
//!
//! A [`FaultInjector`] binds a plan to a live [`KaasServer`] (and
//! optionally to client [`LinkFault`] handles) and drives it in virtual
//! time from a background task. Every applied fault is counted in the
//! server's metrics registry (`faults.injected` plus a per-kind
//! counter), recorded on a `fault` trace track when the server has a
//! tracer, and appended to a shared [`FaultLog`] so tests and examples
//! can print a recovery timeline.
//!
//! ```
//! use kaas_core::{FaultPlan, StormConfig};
//!
//! let storm = StormConfig::default();
//! let a = FaultPlan::storm(7, &storm);
//! let b = FaultPlan::storm(7, &storm);
//! assert_eq!(a.events(), b.events()); // same seed ⇒ same timeline
//! ```

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use kaas_accel::DeviceId;
use kaas_net::LinkFault;
use kaas_simtime::rng::det_rng;
use kaas_simtime::{now, sleep, spawn, JoinHandle, SimTime};

use crate::server::KaasServer;

/// One injectable failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Kill the runner currently serving `kernel` (first usable slot).
    RunnerCrash {
        /// Kernel whose runner is crashed.
        kernel: String,
    },
    /// Take a device offline (crashing its runners), bringing it back
    /// after `down_for`.
    DeviceOffline {
        /// The device to flap.
        device: DeviceId,
        /// How long the device stays offline.
        down_for: Duration,
    },
    /// Add `extra` propagation delay to every registered link for
    /// `lasting`, then restore.
    LinkDelaySpike {
        /// Extra one-way latency while the spike lasts.
        extra: Duration,
        /// Spike duration.
        lasting: Duration,
    },
    /// Silently drop the next `frames` frames on one registered link
    /// (chosen round-robin across events).
    LinkDrop {
        /// Number of frames to drop.
        frames: u32,
    },
    /// The next runner cold start pays an extra `extra` of spawn time
    /// (contended host, cold page cache).
    SlowStart {
        /// Extra process-spawn time for the next cold start.
        extra: Duration,
    },
}

impl Fault {
    /// Stable kind label (used as the `faults.<kind>` counter suffix).
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::RunnerCrash { .. } => "runner-crash",
            Fault::DeviceOffline { .. } => "device-offline",
            Fault::LinkDelaySpike { .. } => "link-delay",
            Fault::LinkDrop { .. } => "link-drop",
            Fault::SlowStart { .. } => "slow-start",
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::RunnerCrash { kernel } => write!(f, "crash runner serving {kernel}"),
            Fault::DeviceOffline { device, down_for } => {
                write!(f, "{device} offline for {down_for:?}")
            }
            Fault::LinkDelaySpike { extra, lasting } => {
                write!(f, "link delay +{extra:?} for {lasting:?}")
            }
            Fault::LinkDrop { frames } => write!(f, "drop {frames} frame(s)"),
            Fault::SlowStart { extra } => write!(f, "next cold start +{extra:?}"),
        }
    }
}

/// A fault scheduled at an offset from the injector's start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Offset from [`FaultInjector::run`] at which the fault fires.
    pub at: Duration,
    /// The fault to apply.
    pub fault: Fault,
}

/// Shape of a random fault storm (see [`FaultPlan::storm`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormConfig {
    /// Number of runner crashes to schedule.
    pub crashes: usize,
    /// Number of device offline/online flaps.
    pub device_flaps: usize,
    /// Number of link latency spikes.
    pub link_spikes: usize,
    /// Number of frame-drop bursts.
    pub link_drops: usize,
    /// Number of slowed cold starts.
    pub slow_starts: usize,
    /// Events are spread uniformly over `[0, horizon)`.
    pub horizon: Duration,
    /// Devices eligible for flaps (no flaps scheduled when empty).
    pub devices: Vec<DeviceId>,
    /// Kernel whose runners are crashed.
    pub kernel: String,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            crashes: 8,
            device_flaps: 4,
            link_spikes: 4,
            link_drops: 6,
            slow_starts: 2,
            horizon: Duration::from_secs(10),
            devices: Vec::new(),
            kernel: "mci".to_owned(),
        }
    }
}

/// A deterministic schedule of fault events, sorted by fire time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan carrying `seed` (extend with [`push`](Self::push)).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Draws a random storm from `seed`: event times are uniform over
    /// the horizon, devices and magnitudes are sampled per event. The
    /// same `(seed, config)` pair always yields the same plan.
    pub fn storm(seed: u64, config: &StormConfig) -> Self {
        let mut rng = det_rng(seed);
        let mut events = Vec::new();
        let at = |frac: f64| config.horizon.mul_f64(frac);
        for _ in 0..config.crashes {
            events.push(FaultEvent {
                at: at(rng.gen::<f64>()),
                fault: Fault::RunnerCrash {
                    kernel: config.kernel.clone(),
                },
            });
        }
        if !config.devices.is_empty() {
            for _ in 0..config.device_flaps {
                let t = at(rng.gen::<f64>());
                let device = *rng.choose(&config.devices).expect("non-empty");
                let down_for = Duration::from_millis(rng.gen_range(50u64..250));
                events.push(FaultEvent {
                    at: t,
                    fault: Fault::DeviceOffline { device, down_for },
                });
            }
        }
        for _ in 0..config.link_spikes {
            let t = at(rng.gen::<f64>());
            let extra = Duration::from_micros(rng.gen_range(500u64..5_000));
            let lasting = Duration::from_millis(rng.gen_range(20u64..120));
            events.push(FaultEvent {
                at: t,
                fault: Fault::LinkDelaySpike { extra, lasting },
            });
        }
        for _ in 0..config.link_drops {
            let t = at(rng.gen::<f64>());
            let frames = rng.gen_range(1u32..3);
            events.push(FaultEvent {
                at: t,
                fault: Fault::LinkDrop { frames },
            });
        }
        for _ in 0..config.slow_starts {
            let t = at(rng.gen::<f64>());
            let extra = Duration::from_millis(rng.gen_range(100u64..400));
            events.push(FaultEvent {
                at: t,
                fault: Fault::SlowStart { extra },
            });
        }
        // Stable sort: ties keep generation order, so the plan is a pure
        // function of (seed, config).
        events.sort_by_key(|e| e.at);
        FaultPlan { seed, events }
    }

    /// Appends a fault at `at` (re-sorting the schedule).
    pub fn push(mut self, at: Duration, fault: Fault) -> Self {
        self.events.push(FaultEvent { at, fault });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, sorted by fire time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

/// One fault as it was applied, for recovery timelines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedFault {
    /// Virtual time the fault was applied.
    pub at: SimTime,
    /// Stable kind label ([`Fault::kind`]).
    pub kind: &'static str,
    /// Human-readable description of what happened.
    pub desc: String,
}

/// Shared, append-only record of applied faults (clone-cheap handle).
#[derive(Debug, Clone, Default)]
pub struct FaultLog {
    entries: Rc<RefCell<Vec<AppliedFault>>>,
}

impl FaultLog {
    /// Snapshot of the applied faults so far, in application order.
    pub fn entries(&self) -> Vec<AppliedFault> {
        self.entries.borrow().clone()
    }

    /// Number of faults applied so far.
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// Whether no fault has been applied yet.
    pub fn is_empty(&self) -> bool {
        self.entries.borrow().is_empty()
    }

    fn record(&self, entry: AppliedFault) {
        self.entries.borrow_mut().push(entry);
    }
}

/// Drives a [`FaultPlan`] against a live server in virtual time.
#[derive(Debug)]
pub struct FaultInjector {
    server: KaasServer,
    plan: FaultPlan,
    links: Vec<LinkFault>,
    log: FaultLog,
}

impl FaultInjector {
    /// Binds `plan` to `server`. Link faults are no-ops until at least
    /// one handle is registered with [`with_link`](Self::with_link).
    pub fn new(server: &KaasServer, plan: FaultPlan) -> Self {
        FaultInjector {
            server: server.clone(),
            plan,
            links: Vec::new(),
            log: FaultLog::default(),
        }
    }

    /// Registers a client link for `LinkDelaySpike` / `LinkDrop` faults
    /// (get one via [`KaasClient::link_fault`](crate::KaasClient::link_fault)).
    pub fn with_link(mut self, link: LinkFault) -> Self {
        self.links.push(link);
        self
    }

    /// The shared applied-fault log (clone before calling
    /// [`run`](Self::run) if you need it afterwards).
    pub fn log(&self) -> FaultLog {
        self.log.clone()
    }

    /// Spawns the driver task and returns its handle; the task resolves
    /// once every scheduled fault has been applied (restorations — a
    /// device coming back online, a delay spike expiring — may still be
    /// pending).
    pub fn run(self) -> JoinHandle<()> {
        let FaultInjector {
            server,
            plan,
            links,
            log,
        } = self;
        let start = now();
        // Round-robin cursor over registered links for drop faults.
        let cursor = Cell::new(0usize);
        spawn(async move {
            for event in plan.events {
                let fire_at = start + event.at;
                let t = now();
                if fire_at > t {
                    sleep(fire_at - t).await;
                }
                apply(&server, &links, &cursor, &log, &event.fault);
            }
        })
    }
}

/// Applies one fault, recording it in the log, the server's metrics
/// registry, and (when configured) the tracer's `fault` track.
fn apply(
    server: &KaasServer,
    links: &[LinkFault],
    cursor: &Cell<usize>,
    log: &FaultLog,
    fault: &Fault,
) {
    let inner = server.inner();
    let desc = match fault {
        Fault::RunnerCrash { kernel } => match inner.pool.crash_runner(kernel) {
            Some(id) => format!("crashed {id} serving {kernel}"),
            None => format!("no runner serving {kernel} to crash"),
        },
        Fault::DeviceOffline { device, down_for } => match inner.pool.device(*device) {
            Some(d) => {
                let d = d.clone();
                d.set_online(false);
                let crashed = inner.pool.crash_device(*device);
                let down = *down_for;
                spawn(async move {
                    sleep(down).await;
                    d.set_online(true);
                });
                format!("{device} offline for {down_for:?} ({crashed} runner(s) lost)")
            }
            None => format!("{device} not managed by this server"),
        },
        Fault::LinkDelaySpike { extra, lasting } => {
            for link in links {
                link.set_extra_delay(*extra);
            }
            let restore: Vec<LinkFault> = links.to_vec();
            let lasting = *lasting;
            spawn(async move {
                sleep(lasting).await;
                for link in &restore {
                    link.set_extra_delay(Duration::ZERO);
                }
            });
            format!("+{extra:?} on {} link(s) for {lasting:?}", links.len())
        }
        Fault::LinkDrop { frames } => {
            if links.is_empty() {
                "no link registered to drop frames on".to_owned()
            } else {
                let i = cursor.get() % links.len();
                cursor.set(i + 1);
                links[i].drop_next(*frames);
                format!("dropping next {frames} frame(s) on link {i}")
            }
        }
        Fault::SlowStart { extra } => {
            inner.pool.slow_start_next(*extra);
            format!("next cold start slowed by {extra:?}")
        }
    };
    let kind = fault.kind();
    let m = &inner.metrics_registry;
    m.inc("faults.injected");
    m.inc(&format!("faults.{kind}"));
    if let Some(tracer) = &inner.config.tracer {
        tracer.record(
            "fault",
            kind,
            now(),
            now(),
            None,
            vec![("desc".into(), desc.clone())],
        );
    }
    log.record(AppliedFault {
        at: now(),
        kind,
        desc,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_storm() {
        let config = StormConfig {
            devices: vec![DeviceId(0), DeviceId(1)],
            ..StormConfig::default()
        };
        let a = FaultPlan::storm(42, &config);
        let b = FaultPlan::storm(42, &config);
        assert_eq!(a.events(), b.events());
        assert_eq!(
            a.events().len(),
            config.crashes
                + config.device_flaps
                + config.link_spikes
                + config.link_drops
                + config.slow_starts
        );
    }

    #[test]
    fn different_seeds_differ() {
        let config = StormConfig::default();
        let a = FaultPlan::storm(1, &config);
        let b = FaultPlan::storm(2, &config);
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn events_are_time_sorted_and_within_horizon() {
        let config = StormConfig {
            devices: vec![DeviceId(3)],
            ..StormConfig::default()
        };
        let plan = FaultPlan::storm(7, &config);
        let times: Vec<Duration> = plan.events().iter().map(|e| e.at).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
        assert!(times.iter().all(|t| *t < config.horizon));
    }

    #[test]
    fn push_keeps_the_schedule_sorted() {
        let plan = FaultPlan::new(0)
            .push(
                Duration::from_secs(2),
                Fault::RunnerCrash {
                    kernel: "mci".into(),
                },
            )
            .push(Duration::from_secs(1), Fault::LinkDrop { frames: 1 });
        assert_eq!(plan.events()[0].at, Duration::from_secs(1));
        assert_eq!(plan.events()[1].at, Duration::from_secs(2));
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(
            Fault::RunnerCrash { kernel: "x".into() }.kind(),
            "runner-crash"
        );
        assert_eq!(
            Fault::DeviceOffline {
                device: DeviceId(0),
                down_for: Duration::ZERO
            }
            .kind(),
            "device-offline"
        );
        assert_eq!(
            Fault::LinkDelaySpike {
                extra: Duration::ZERO,
                lasting: Duration::ZERO
            }
            .kind(),
            "link-delay"
        );
        assert_eq!(Fault::LinkDrop { frames: 1 }.kind(), "link-drop");
        assert_eq!(
            Fault::SlowStart {
                extra: Duration::ZERO
            }
            .kind(),
            "slow-start"
        );
    }
}
