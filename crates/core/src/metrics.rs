//! Invocation reports and metric aggregation.
//!
//! Two layers live here:
//!
//! * [`InvocationReport`] / [`MetricsSink`] — the raw per-invocation
//!   record stream, returned with every response.
//! * [`MetricsRegistry`](registry::MetricsRegistry) — the structured
//!   store (counters, gauges, [`Histogram`](histogram::Histogram)
//!   latency distributions) the server feeds on every invocation and
//!   the experiment figures read from.

pub mod histogram;
pub mod registry;

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use kaas_accel::DeviceId;
use kaas_simtime::SimTime;

/// Identity of a task runner within a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunnerId(pub u32);

impl std::fmt::Display for RunnerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "runner{}", self.0)
    }
}

/// Timing breakdown of one kernel invocation, returned with every
/// response and recorded by the server.
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationReport {
    /// Kernel name.
    pub kernel: String,
    /// Runner that served the invocation.
    pub runner: RunnerId,
    /// Device the runner occupies.
    pub device: DeviceId,
    /// Whether this invocation triggered a cold start.
    pub cold_start: bool,
    /// When the server received the request.
    pub submitted: SimTime,
    /// When the runner began the device-side work.
    pub started: SimTime,
    /// When the device-side work finished.
    pub completed: SimTime,
    /// Host→device copy time.
    pub copy_in: Duration,
    /// Device-kernel occupancy time.
    pub kernel_exec: Duration,
    /// Device→host copy time.
    pub copy_out: Duration,
    /// Whether the invocation was served on a fallback device class
    /// (degraded mode) rather than the kernel's preferred class.
    pub degraded: bool,
}

impl InvocationReport {
    /// The paper's "kernel time": data copies plus computation.
    pub fn kernel_time(&self) -> Duration {
        self.copy_in + self.kernel_exec + self.copy_out
    }

    /// Time spent queued/dispatching before device work began.
    pub fn queue_time(&self) -> Duration {
        self.started.saturating_since(self.submitted)
    }

    /// Server-side latency (submission to completion).
    pub fn server_latency(&self) -> Duration {
        self.completed.saturating_since(self.submitted)
    }
}

/// Shared sink collecting every invocation report of a server.
#[derive(Clone, Default)]
pub struct MetricsSink {
    records: Rc<RefCell<Vec<InvocationReport>>>,
}

impl std::fmt::Debug for MetricsSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsSink")
            .field("records", &self.records.borrow().len())
            .finish()
    }
}

impl MetricsSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a report.
    pub fn record(&self, report: InvocationReport) {
        self.records.borrow_mut().push(report);
    }

    /// Number of recorded invocations.
    pub fn len(&self) -> usize {
        self.records.borrow().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all records.
    pub fn snapshot(&self) -> Vec<InvocationReport> {
        self.records.borrow().clone()
    }

    /// How many recorded invocations were cold starts.
    pub fn cold_starts(&self) -> usize {
        self.records
            .borrow()
            .iter()
            .filter(|r| r.cold_start)
            .count()
    }
}

/// Mean and 95 % confidence half-width of a sample (the paper plots mean
/// and 95 % CI over ten samples).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95 % confidence interval.
    pub ci95: f64,
}

/// The `q`-quantile (0 ≤ q ≤ 1) of `samples` by linear interpolation.
///
/// # Panics
///
/// Panics on an empty sample or `q` outside `[0, 1]`.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "need at least one sample");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Computes mean and normal-approximation 95 % CI of `samples`.
///
/// # Panics
///
/// Panics on an empty sample.
pub fn mean_ci95(samples: &[f64]) -> MeanCi {
    assert!(!samples.is_empty(), "need at least one sample");
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() == 1 {
        return MeanCi { mean, ci95: 0.0 };
    }
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0);
    MeanCi {
        mean,
        ci95: 1.96 * (var / n).sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cold: bool, t0: f64, t1: f64, t2: f64) -> InvocationReport {
        InvocationReport {
            kernel: "k".into(),
            runner: RunnerId(0),
            device: DeviceId(0),
            cold_start: cold,
            submitted: SimTime::from_secs_f64(t0),
            started: SimTime::from_secs_f64(t1),
            completed: SimTime::from_secs_f64(t2),
            copy_in: Duration::from_millis(1),
            kernel_exec: Duration::from_millis(10),
            copy_out: Duration::from_millis(2),
            degraded: false,
        }
    }

    #[test]
    fn derived_times() {
        let r = report(false, 1.0, 1.5, 2.0);
        assert_eq!(r.kernel_time(), Duration::from_millis(13));
        assert_eq!(r.queue_time(), Duration::from_millis(500));
        assert_eq!(r.server_latency(), Duration::from_secs(1));
    }

    #[test]
    fn sink_counts_cold_starts() {
        let sink = MetricsSink::new();
        sink.record(report(true, 0.0, 0.5, 1.0));
        sink.record(report(false, 1.0, 1.0, 1.2));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.cold_starts(), 1);
        assert!(!sink.is_empty());
    }

    #[test]
    fn mean_ci_of_constant_sample_is_tight() {
        let m = mean_ci95(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(m.mean, 2.0);
        assert_eq!(m.ci95, 0.0);
    }

    #[test]
    fn mean_ci_widens_with_spread() {
        let tight = mean_ci95(&[1.0, 1.1, 0.9, 1.0]);
        let wide = mean_ci95(&[0.1, 2.0, 0.5, 1.9]);
        assert!(wide.ci95 > tight.ci95);
    }

    #[test]
    fn single_sample_has_zero_ci() {
        assert_eq!(mean_ci95(&[5.0]).ci95, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 1.0), 5.0);
        assert_eq!(percentile(&s, 0.5), 3.0);
        assert_eq!(percentile(&s, 0.25), 2.0);
        // Order independence.
        let shuffled = [4.0, 1.0, 5.0, 3.0, 2.0];
        assert_eq!(percentile(&shuffled, 0.5), 3.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_rejected() {
        percentile(&[1.0], 1.5);
    }
}
