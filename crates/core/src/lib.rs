//! # kaas-core — the Kernel-as-a-Service runtime
//!
//! The paper's primary contribution (§3–§4): a serverless programming
//! model for heterogeneous hardware accelerators.
//!
//! * Developers [`register`](KernelRegistry::register) kernels.
//! * A [`KaasServer`] wraps them in [`TaskRunner`]s on a shared pool of
//!   devices, cold-starting runners on demand and keeping them warm.
//! * Applications [`call`](KaasClient::call) kernels over the network
//!   with in-band or out-of-band data transfer, via a builder-style
//!   invoke API ([`InvokeBuilder`]).
//! * The [`dataplane`] keeps content-addressed objects
//!   ([`KaasClient::put`] / [`InvokeBuilder::arg_ref`]) resident in
//!   device memory across invocations, eliminating repeat host→device
//!   copies and evicting LRU-first under memory pressure.
//! * [`baseline`] provides the time-sharing / space-sharing / CPU-only
//!   delivery models the paper compares against.
//!
//! ## The control plane
//!
//! [`KaasServer`] is a thin orchestrator over four modules, each with a
//! pluggable policy seam:
//!
//! | Module | Responsibility | Policy hook |
//! |---|---|---|
//! | [`admission`] | tenant quotas, overload shedding | [`AdmissionConfig`] |
//! | [`scheduler`] | route an invocation to a runner slot | [`Scheduler`] trait |
//! | [`autoscaler`] | decide when to start more runners | [`AutoscalePolicy`] trait |
//! | [`pool`] | runner lifecycle: spawn, warm lookup, idle reaping | mechanism only |
//!
//! Per invocation: admission ⇒ dispatch overhead ⇒ `scheduler.pick()`
//! over the pool's usable slots ⇒ on decline, `autoscaler.on_saturated()`
//! may spawn a runner (bounded by physical devices) ⇒ execute, retrying
//! on runner failure. Scale-down is the pool's idle reaper
//! ([`ServerConfig::idle_timeout`]).
//!
//! Built-in schedulers: [`FillFirst`], [`RoundRobin`], [`LeastLoaded`],
//! [`WarmFirst`]. Built-in autoscalers:
//! [`InFlightThreshold`] (the paper's §5.5 policy), [`NoScale`],
//! [`TargetUtilization`]. Custom policies implement the trait and plug
//! in through [`ServerConfig::with_scheduler`] /
//! [`ServerConfig::with_autoscaler`]; see the [`scheduler`] module docs
//! for a worked example.
//!
//! ```
//! use kaas_core::{baseline, KernelRegistry};
//! use kaas_kernels::{MatMul, Value};
//! use kaas_accel::{CpuDevice, CpuProfile, DeviceId};
//! use kaas_simtime::Simulation;
//!
//! let mut sim = Simulation::new();
//! let report = sim.block_on(async {
//!     let cpu = CpuDevice::new(DeviceId(0), CpuProfile::xeon_e5_2698v4_dual());
//!     baseline::run_cpu_only(&cpu, &MatMul::new(), &Value::U64(512))
//!         .await
//!         .unwrap()
//! });
//! assert!(report.total > report.kernel_time);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod autoscaler;
pub mod baseline;
mod client;
mod config;
pub mod dataplane;
mod dispatch;
pub mod fault;
mod federation;
mod flow;
mod fusion;
mod guest;
mod metrics;
pub mod pool;
mod protocol;
mod registry;
pub mod resilience;
mod runner;
#[cfg(feature = "sim-sanitizer")]
mod sanitize;
pub mod scheduler;
mod server;
pub mod trace;
mod workflow;

pub use admission::{AdmissionConfig, AdmissionPolicy, AimdConfig};
pub use autoscaler::{
    AutoscalePolicy, InFlightThreshold, NoScale, ScaleCtx, ScaleDecision, TargetUtilization,
};
pub use baseline::{run_cpu_only, run_space_sharing, run_time_sharing, BaselineReport};
pub use client::{
    BatchBuilder, BatchCall, ClientRetryConfig, FlowBuilder, Invocation, InvokeBuilder, KaasClient,
};
pub use config::{DispatchMode, ServerConfig, ShardConfig, ShardPolicy};
pub use dataplane::{
    content_hash, DataPlane, ObjectRef, ObjectStore, DATA_GET_KERNEL, DATA_KERNEL_PREFIX,
    DATA_PIN_KERNEL, DATA_PUT_KERNEL, DATA_SEAL_KERNEL, OBJECT_REF_WIRE_BYTES,
};
pub use fault::{AppliedFault, Fault, FaultEvent, FaultInjector, FaultLog, FaultPlan, StormConfig};
pub use federation::{FederatedClient, FederatedFlow, SiteHandle, SiteSpec};
pub use flow::{FLOW_KERNEL_PREFIX, FLOW_REGISTER_KERNEL, FLOW_RUN_KERNEL};
pub use fusion::{fuse, FusedKernel, FusionError};
pub use guest::{CODE_KERNEL_PREFIX, CODE_LIST_KERNEL, CODE_REGISTER_KERNEL, CODE_REMOVE_KERNEL};
pub use metrics::histogram::{Histogram, HistogramSummary};
pub use metrics::registry::MetricsRegistry;
pub use metrics::{mean_ci95, percentile, InvocationReport, MeanCi, MetricsSink, RunnerId};
pub use pool::{RunnerPool, RunnerSlot};
pub use protocol::{
    DataRef, InvokeError, Request, RequestFrame, Response, ResponseFrame, BATCH_MEMBER_BYTES,
    FRAME_BYTES,
};
pub use registry::{KernelRegistry, RegistryError};
pub use resilience::{
    BreakerConfig, BreakerState, CircuitBreaker, EvictionConfig, ExponentialBackoff,
    FallbackConfig, FixedBackoff, NoBackoff, RetryBudget, RetryBudgetConfig, RetryConfig,
    RetryPolicy,
};
pub use runner::{RunnerConfig, RunnerTimings, TaskRunner};
pub use scheduler::{
    FillFirst, LeastLoaded, RoundRobin, SchedCtx, Scheduler, SlotChoice, SlotView, WarmFirst,
};
pub use server::{KaasServer, KernelStats, ServerSnapshot, DISCOVERY_KERNEL};
pub use trace::{Span, SpanId, SpanSink};
pub use workflow::{
    Edge, EdgeTransfer, FlowError, StepId, StepReport, Workflow, WorkflowBuilder, WorkflowError,
    WorkflowHandle, WorkflowReport, WorkflowRun,
};

/// The network type used between KaaS clients and servers. The wire
/// carries framed envelopes ([`RequestFrame`] / [`ResponseFrame`]) so a
/// client's coalesced batch rides one frame header in each direction.
pub type KaasNetwork = kaas_net::Network<RequestFrame, ResponseFrame>;
