//! # kaas-core — the Kernel-as-a-Service runtime
//!
//! The paper's primary contribution (§3–§4): a serverless programming
//! model for heterogeneous hardware accelerators.
//!
//! * Developers [`register`](KernelRegistry::register) kernels.
//! * A [`KaasServer`] wraps them in [`TaskRunner`]s on a shared pool of
//!   devices, cold-starting runners on demand and keeping them warm.
//! * Applications [`invoke`](KaasClient::invoke) kernels over the network
//!   with in-band or out-of-band data transfer.
//! * [`baseline`] provides the time-sharing / space-sharing / CPU-only
//!   delivery models the paper compares against.
//!
//! ```
//! use kaas_core::{baseline, KernelRegistry};
//! use kaas_kernels::{MatMul, Value};
//! use kaas_accel::{CpuDevice, CpuProfile, DeviceId};
//! use kaas_simtime::Simulation;
//!
//! let mut sim = Simulation::new();
//! let report = sim.block_on(async {
//!     let cpu = CpuDevice::new(DeviceId(0), CpuProfile::xeon_e5_2698v4_dual());
//!     baseline::run_cpu_only(&cpu, &MatMul::new(), &Value::U64(512))
//!         .await
//!         .unwrap()
//! });
//! assert!(report.total > report.kernel_time);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
mod client;
mod federation;
mod fusion;
mod metrics;
mod protocol;
mod registry;
mod runner;
mod server;
mod workflow;

pub use baseline::{run_cpu_only, run_space_sharing, run_time_sharing, BaselineReport};
pub use client::{Invocation, KaasClient};
pub use federation::{FederatedClient, SiteSpec};
pub use fusion::{fuse, FusedKernel, FusionError};
pub use metrics::{mean_ci95, percentile, InvocationReport, MeanCi, MetricsSink, RunnerId};
pub use protocol::{DataRef, InvokeError, Request, Response, FRAME_BYTES};
pub use registry::{KernelRegistry, RegistryError};
pub use runner::{RunnerConfig, RunnerTimings, TaskRunner};
pub use server::{KaasServer, Scheduler, ServerConfig, DISCOVERY_KERNEL};
pub use workflow::{TransferMode, Workflow, WorkflowRun};

/// The network type used between KaaS clients and servers.
pub type KaasNetwork = kaas_net::Network<Request, Response>;
