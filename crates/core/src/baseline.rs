//! The delivery-model baselines the paper compares KaaS against:
//! **time sharing** (exclusive device, per-task runtime initialization,
//! Fig. 4a) and **space sharing** (MPS-style concurrency, still per-task
//! initialization, Fig. 4b), plus CPU-only execution.
//!
//! Each run models a standalone accelerator program: launch the
//! interpreter, import the accelerator runtime, create a device context,
//! move data at fresh-context rates, execute, clean up — every task, every
//! time. That per-task initialization is exactly what KaaS amortizes.

use std::time::Duration;

use kaas_accel::{CpuDevice, CpuProfile, Device};
use kaas_kernels::{Kernel, Value};
use kaas_simtime::{now, sleep};

use crate::protocol::InvokeError;

/// Timing result of a baseline task execution.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// Total task completion time (program launch to cleanup).
    pub total: Duration,
    /// Data copies + kernel execution only (the paper's "kernel time",
    /// the Fig. 9 numerator).
    pub kernel_time: Duration,
    /// Device context/session/compile initialization inside the task
    /// (CUDA context, XLA compile, circuit transpilation). The paper's
    /// Fig. 7 "computation" is `device_init + kernel_time` — its
    /// measured computation window starts at the first device API call,
    /// which triggers lazy initialization.
    pub device_init: Duration,
    /// Kernel output.
    pub output: Value,
}

impl BaselineReport {
    /// The Fig. 7 "computation" time: lazy device initialization plus
    /// copies and kernel execution.
    pub fn computation(&self) -> Duration {
        self.device_init + self.kernel_time
    }

    /// The Fig. 7 "overhead" time: everything else.
    pub fn overhead(&self) -> Duration {
        self.total.saturating_sub(self.computation())
    }
}

fn bad_input(e: kaas_kernels::KernelError) -> InvokeError {
    InvokeError::BadInput(e.to_string())
}

/// Runs `kernel` once in the **time-sharing** model: the whole device is
/// held exclusively for the task, and every per-process initialization is
/// on the critical path.
///
/// # Errors
///
/// [`InvokeError::BadInput`] if the kernel rejects `input`;
/// [`InvokeError::NoDevice`] if the device class cannot run it.
pub async fn run_time_sharing(
    device: &Device,
    kernel: &dyn Kernel,
    input: &Value,
    host: &CpuProfile,
) -> Result<BaselineReport, InvokeError> {
    run_baseline(device, kernel, input, host, true).await
}

/// Runs `kernel` once in the **space-sharing** model (MPS-style): the
/// device executes concurrent kernels, but each task still pays its own
/// process/runtime/context initialization.
///
/// # Errors
///
/// As [`run_time_sharing`].
pub async fn run_space_sharing(
    device: &Device,
    kernel: &dyn Kernel,
    input: &Value,
    host: &CpuProfile,
) -> Result<BaselineReport, InvokeError> {
    run_baseline(device, kernel, input, host, false).await
}

async fn run_baseline(
    device: &Device,
    kernel: &dyn Kernel,
    input: &Value,
    host: &CpuProfile,
    exclusive: bool,
) -> Result<BaselineReport, InvokeError> {
    let start = now();
    let input = input.payload();
    let work = kernel.work(input).map_err(bad_input)?;
    sleep(host.python_launch).await;

    let kernel_time;
    let mut device_init = Duration::ZERO;
    match device {
        Device::Gpu(gpu) => {
            sleep(gpu.profile().runtime_import).await;
            let _lock = if exclusive {
                Some(gpu.lock_exclusive().await)
            } else {
                None
            };
            // Lazy CUDA initialization at the first device API call: the
            // paper attributes a constant ≈410 ms per-execution cost to
            // it and counts it towards the computation window (§5.1).
            gpu.create_context().await;
            device_init = gpu.profile().context_init;
            let t = gpu.execute(&work, kernel.demand(), true).await;
            kernel_time = t.kernel_time();
            gpu.destroy_context();
            drop(_lock);
            sleep(gpu.profile().process_cleanup).await;
        }
        Device::Fpga(fpga) => {
            // PyLog offers no spatial sharing (§4.2): both models behave
            // identically apart from queueing inside the device.
            fpga.init_runtime().await;
            let t = fpga.execute(&work).await;
            kernel_time = t.kernel_time();
        }
        Device::Tpu(tpu) => {
            if exclusive {
                // TensorFlow import initializes (and holds) the TPU, so
                // exclusive tasks serialize the whole program (§5.6.3).
                let _board = tpu.lock_board().await;
                tpu.init_runtime().await;
                // Per-process XLA compilation lands inside the measured
                // TPU window — the §5.6.3 "TPU time" KaaS removes.
                tpu.compile().await;
                kernel_time = tpu.profile().xla_compile + tpu.run_board(&work).await;
            } else {
                // Shared: each instance pins one chip; imports overlap.
                tpu.init_runtime().await;
                tpu.compile().await;
                let chip = tpu.assign_chip();
                let _slot = tpu.acquire_chip_slot().await;
                kernel_time = tpu.profile().xla_compile + tpu.run_on_chip(chip, &work).await;
            }
        }
        Device::Qpu(qpu) => {
            let cost = work.circuit.ok_or_else(|| {
                InvokeError::BadInput("QPU kernels must declare a circuit cost".into())
            })?;
            // Baseline: session + transpilation on every call (§5.6.4
            // "cold starts of our quantum operation").
            qpu.init_session().await;
            device_init = qpu.profile().session_init;
            qpu.transpile().await;
            kernel_time = qpu.profile().transpile + qpu.execute(&cost).await;
        }
        Device::Cpu(cpu) => {
            kernel_time = cpu.run(&work).await;
        }
    }

    let output = kernel.execute(input).map_err(bad_input)?;
    Ok(BaselineReport {
        total: now() - start,
        kernel_time,
        device_init,
        output,
    })
}

/// Runs `kernel` on the CPU only (the paper's CPU-only comparison in
/// Fig. 2, Fig. 10, and Fig. 11): same work profile, host throughput.
///
/// # Errors
///
/// [`InvokeError::BadInput`] if the kernel rejects `input`.
pub async fn run_cpu_only(
    cpu: &CpuDevice,
    kernel: &dyn Kernel,
    input: &Value,
) -> Result<BaselineReport, InvokeError> {
    let start = now();
    let input = input.payload();
    let work = kernel.work(input).map_err(bad_input)?;
    sleep(cpu.profile().python_launch).await;
    sleep(cpu.profile().runtime_import).await;
    let kernel_time = cpu.run(&work).await;
    let output = kernel.execute(input).map_err(bad_input)?;
    Ok(BaselineReport {
        total: now() - start,
        kernel_time,
        device_init: Duration::ZERO,
        output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_accel::{DeviceId, FpgaDevice, FpgaProfile, GpuDevice, GpuProfile};
    use kaas_kernels::{Histogram, MatMul};
    use kaas_simtime::Simulation;

    fn host() -> CpuProfile {
        CpuProfile::xeon_e5_2698v4_dual()
    }

    #[test]
    fn exclusive_run_pays_full_overhead() {
        let mut sim = Simulation::new();
        let report = sim.block_on(async {
            let gpu: Device = GpuDevice::new(DeviceId(0), GpuProfile::p100()).into();
            run_time_sharing(&gpu, &MatMul::new(), &Value::U64(500), &host())
                .await
                .unwrap()
        });
        // 120 ms launch + 430 ms numba + 410 ms context + 139 ms cleanup
        // ≈ 1.1 s floor plus a tiny kernel.
        let total = report.total.as_secs_f64();
        assert!((1.09..1.25).contains(&total), "total={total}");
        // Copies (incl. the 2×25 ms fresh-context penalty) + kernel stay
        // far below the initialization overhead.
        assert!(report.kernel_time < Duration::from_millis(100));
        assert_eq!(report.device_init, Duration::from_millis(410));
    }

    #[test]
    fn exclusive_tasks_serialize_on_the_gpu() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let gpu: Device = GpuDevice::new(DeviceId(0), GpuProfile::p100()).into();
            let g2 = gpu.clone();
            let h = kaas_simtime::spawn(async move {
                run_time_sharing(&g2, &MatMul::new(), &Value::U64(10_000), &host())
                    .await
                    .unwrap()
            });
            run_time_sharing(&gpu, &MatMul::new(), &Value::U64(10_000), &host())
                .await
                .unwrap();
            h.await;
            now()
        });
        // Each large task's device section ≈ 0.41 ctx + ~0.25 s copies +
        // ~0.67 s kernel; exclusive => the sections cannot overlap, so
        // the makespan ≈ one task total plus one full device section.
        assert!(t.as_secs_f64() > 3.2, "t={t:?}");
        assert!(t.as_secs_f64() < 4.2, "t={t:?}");
    }

    #[test]
    fn space_sharing_beats_time_sharing_makespan() {
        let run = |exclusive: bool| {
            let mut sim = Simulation::new();
            sim.block_on(async move {
                let gpu: Device = GpuDevice::new(DeviceId(0), GpuProfile::p100()).into();
                let g2 = gpu.clone();
                let h = kaas_simtime::spawn(async move {
                    run_baseline(&g2, &MatMul::new(), &Value::U64(10_000), &host(), exclusive)
                        .await
                        .unwrap()
                });
                run_baseline(
                    &gpu,
                    &MatMul::new(),
                    &Value::U64(10_000),
                    &host(),
                    exclusive,
                )
                .await
                .unwrap();
                h.await;
                now()
            })
        };
        let exclusive = run(true);
        let shared = run(false);
        // MPS-style sharing overlaps the two tasks; time sharing
        // serializes their device sections.
        assert!(
            shared < exclusive,
            "shared={shared:?} !< exclusive={exclusive:?}"
        );
    }

    #[test]
    fn fpga_baseline_includes_runtime_init() {
        let mut sim = Simulation::new();
        let report = sim.block_on(async {
            let fpga: Device = FpgaDevice::new(DeviceId(0), FpgaProfile::alveo_u250()).into();
            run_time_sharing(
                &fpga,
                &Histogram::new(),
                &Value::U64(kaas_kernels::HISTOGRAM_LEN),
                &host(),
            )
            .await
            .unwrap()
        });
        // ≈ 0.12 launch + 1.15 init + ~0.39 kernel ≈ 1.7 s (Fig. 15's
        // baseline bar).
        let total = report.total.as_secs_f64();
        assert!((1.5..1.9).contains(&total), "total={total}");
    }

    #[test]
    fn cpu_only_run_uses_cpu_rate() {
        let mut sim = Simulation::new();
        let report = sim.block_on(async {
            let cpu = CpuDevice::new(DeviceId(9), CpuProfile::xeon_e5_2698v4_dual());
            run_cpu_only(&cpu, &MatMul::new(), &Value::U64(2000))
                .await
                .unwrap()
        });
        // 2·2000³ = 1.6e10 flops at 140 GF/s / eff — seconds-scale.
        assert!(report.kernel_time.as_secs_f64() > 0.05);
        assert!(matches!(report.output, Value::F64(_)));
    }
}
