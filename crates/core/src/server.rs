//! [`KaasServer`]: the thin orchestrator tying the control-plane
//! modules together (§4.1 and §5.5 of the paper).
//!
//! Per invocation the server (1) applies [admission](crate::admission)
//! control, (2) passes the dispatch engine (a thin front door feeding
//! per-shard worker queues by default, or the serialized A/B baseline
//! — see [`DispatchMode`](crate::DispatchMode)), (3) asks the
//! [`Scheduler`](crate::Scheduler) to place the request on a slot from
//! the [`RunnerPool`](crate::RunnerPool), consulting the
//! [`AutoscalePolicy`](crate::AutoscalePolicy) when the fleet is cold
//! or saturated, and (4) runs the kernel, retrying on runner failure.
//! The data path itself lives in the `dispatch` module; this module
//! holds construction, lifecycle, and the accept loop.

use std::collections::BTreeMap;
use std::rc::Rc;

use kaas_accel::{Device, DeviceClass, DeviceId};
use kaas_net::{Frame, Listener, SharedMemory};
use kaas_simtime::{join_all, spawn};

use crate::admission::AdmissionController;
use crate::config::ServerConfig;
use crate::dataplane::DataPlane;
use crate::dispatch::DispatchState;
use crate::flow::FlowState;
use crate::guest::GuestState;
use crate::metrics::registry::MetricsRegistry;
use crate::metrics::MetricsSink;
use crate::pool::RunnerPool;
use crate::protocol::{InvokeError, RequestFrame, ResponseFrame};
use crate::registry::KernelRegistry;
use crate::resilience::{BreakerBank, BreakerState, RetryBudget};

/// Reserved kernel name answering with the site's registered kernel
/// list (used by federated clients for discovery).
pub const DISCOVERY_KERNEL: &str = "_kaas/list";

pub(crate) struct ServerInner {
    pub(crate) registry: KernelRegistry,
    pub(crate) config: ServerConfig,
    pub(crate) shm: SharedMemory,
    pub(crate) pool: Rc<RunnerPool>,
    pub(crate) admission: AdmissionController,
    pub(crate) metrics: MetricsSink,
    pub(crate) metrics_registry: MetricsRegistry,
    /// The dispatch engine: sharded front-door + worker queues by
    /// default, or the historical serialized single-lock router (the
    /// Fig. 12b weak-scaling offset of ≈35 µs per invocation) behind
    /// [`DispatchMode::Serialized`](crate::DispatchMode).
    pub(crate) dispatch: DispatchState,
    /// Per-device circuit breakers (disabled unless
    /// [`ServerConfig::breaker`] is set).
    pub(crate) breakers: BreakerBank,
    /// The device-resident data plane: content-addressed object store +
    /// per-device memory managers.
    pub(crate) dataplane: Rc<DataPlane>,
    /// Registered workflow DAGs plus live-run accounting for the
    /// server-side dataflow executor.
    pub(crate) flows: FlowState,
    /// Tenant-registered guest kernels (versioned bytecode programs
    /// behind the `_kaas/code/*` control plane) with usage accounting.
    pub(crate) guests: GuestState,
    /// Token bucket metering the server's own retry loops (the flow
    /// executor's step retries); `None` keeps them unmetered.
    pub(crate) retry_budget: Option<Rc<RetryBudget>>,
}

/// The KaaS server (Fig. 3: registration target and invocation router).
///
/// # Examples
///
/// ```
/// use kaas_core::{KaasServer, KaasClient, KernelRegistry, ServerConfig};
/// use kaas_kernels::{MonteCarlo, Value};
/// use kaas_accel::{Device, GpuDevice, GpuProfile, DeviceId};
/// use kaas_net::{LinkProfile, Network, SharedMemory};
/// use kaas_simtime::{spawn, Simulation};
///
/// let mut sim = Simulation::new();
/// let out = sim.block_on(async {
///     let registry = KernelRegistry::new();
///     registry.register(MonteCarlo::default()).unwrap();
///     let gpu: Device = GpuDevice::new(DeviceId(0), GpuProfile::p100()).into();
///     let shm = SharedMemory::host();
///     let server = KaasServer::new(vec![gpu], registry, shm, ServerConfig::default());
///     let net = Network::new();
///     let listener = net.listen("kaas").unwrap();
///     spawn({ let server = server.clone(); async move { server.serve(listener).await } });
///     let mut client = KaasClient::connect(&net, "kaas", LinkProfile::loopback())
///         .await
///         .unwrap();
///     client.call("mci").arg(Value::U64(10_000)).send().await.unwrap().output
/// });
/// assert!(matches!(out, kaas_kernels::Value::F64(_)));
/// ```
#[derive(Clone)]
pub struct KaasServer {
    inner: Rc<ServerInner>,
}

impl std::fmt::Debug for KaasServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KaasServer")
            .field("devices", &self.inner.pool.devices().len())
            .field("kernels", &self.inner.registry.names())
            .finish()
    }
}

impl KaasServer {
    /// Creates a server managing `devices` with the given registry and
    /// (host-local) shared memory region.
    pub fn new(
        devices: Vec<Device>,
        registry: KernelRegistry,
        shm: SharedMemory,
        config: ServerConfig,
    ) -> Self {
        let dataplane = Rc::new(DataPlane::new(&devices));
        // Built before the pool consumes `devices`: shard count 0 means
        // one dispatch shard per device.
        let dispatch = DispatchState::new(&config, devices.len());
        let metrics_registry = MetricsRegistry::new();
        let mut pool = RunnerPool::new(devices);
        if let Some(tracer) = &config.tracer {
            pool.set_tracer(tracer.clone());
        }
        // The pool bills guest warm-init phases (full instantiate vs
        // snapshot restore) into the shared registry at cold-start time.
        pool.set_metrics(metrics_registry.clone());
        // Device memory dies with the runner process that owns it: any
        // runner death (crash, kill, idle reap) drops that device's
        // residency so retries re-upload instead of reading stale
        // pointers.
        pool.set_residency_invalidator({
            let dataplane = Rc::clone(&dataplane);
            move |device| {
                dataplane.invalidate_device(device);
            }
        });
        let inner = Rc::new(ServerInner {
            registry,
            shm,
            pool: Rc::new(pool),
            dataplane,
            admission: AdmissionController::new(config.admission),
            metrics: MetricsSink::new(),
            metrics_registry,
            dispatch,
            breakers: config
                .breaker
                .map(BreakerBank::new)
                .unwrap_or_else(BreakerBank::disabled),
            flows: FlowState::new(),
            guests: GuestState::new(),
            retry_budget: config.retry_budget.map(|c| Rc::new(RetryBudget::new(c))),
            config,
        });
        // Under the sanitizer, re-check this server's cross-module
        // invariants after every executor step. The auditor holds a weak
        // reference, so a dropped server retires its hook.
        #[cfg(feature = "sim-sanitizer")]
        if let Some(handle) = kaas_simtime::Handle::try_current() {
            let auditor = Rc::new(crate::sanitize::Auditor::new(Rc::downgrade(&inner)));
            handle.add_step_hook(Rc::new(move || auditor.check_step()));
        }
        KaasServer { inner }
    }

    pub(crate) fn inner(&self) -> &ServerInner {
        &self.inner
    }

    /// The server's metric sink (raw per-invocation reports).
    pub fn metrics(&self) -> MetricsSink {
        self.inner.metrics.clone()
    }

    /// The server's structured metric store: counters (`invocations`,
    /// `cold_starts`, `errors.*`), gauges (`in_flight`, `runners`,
    /// `device{N}.utilization`), and latency histograms
    /// (`latency.server`, `latency.queue`, `copy_in`, `kernel_exec`,
    /// `copy_out`, each also per-kernel as `<name>.<kernel>`).
    pub fn metrics_registry(&self) -> MetricsRegistry {
        self.inner.metrics_registry.clone()
    }

    /// A consistent point-in-time view of the control plane: per-kernel
    /// runner/in-flight counts, reap totals, and device classes.
    pub fn snapshot(&self) -> ServerSnapshot {
        ServerSnapshot {
            kernels: self.inner.pool.per_kernel_stats(),
            reaped: self.inner.pool.reaped(),
            device_classes: self.inner.pool.device_classes(),
            quarantined: self.inner.pool.quarantined(),
            breakers: self.inner.breakers.states(),
            shard_depths: self.inner.dispatch.shard_depths(),
            dispatch_queued: self.inner.dispatch.queued(),
            shard_ejected: self.inner.dispatch.shard_ejected(),
            dispatch_ejected: self.inner.dispatch.ejected(),
            admission_limit: self.inner.admission.current_limit(),
        }
    }

    /// The managed devices.
    pub fn devices(&self) -> &[Device] {
        self.inner.pool.devices()
    }

    /// The kernel registry (register kernels through this).
    pub fn registry(&self) -> &KernelRegistry {
        &self.inner.registry
    }

    /// The runner pool (lifecycle state: counts, reaps, kills).
    pub fn pool(&self) -> &RunnerPool {
        &self.inner.pool
    }

    /// The data plane: the content-addressed object store and per-device
    /// residency state (hit/miss/eviction inspection for tests and
    /// experiments).
    pub fn dataplane(&self) -> &DataPlane {
        &self.inner.dataplane
    }

    /// Kills the runner currently serving `kernel` on `device` (failure
    /// injection for tests).
    pub fn kill_runner(&self, kernel: &str, device: DeviceId) -> bool {
        self.inner.pool.kill_runner(kernel, device)
    }

    /// Pre-starts `count` runners for `kernel` and waits until they are
    /// warm — how the "warm start" experiments begin.
    ///
    /// # Errors
    ///
    /// [`InvokeError::UnknownKernel`] / [`InvokeError::NoDevice`] when the
    /// kernel or a suitable device is missing.
    pub async fn prewarm(&self, kernel: &str, count: usize) -> Result<(), InvokeError> {
        let k = self
            .inner
            .registry
            .lookup(kernel)
            .ok_or_else(|| InvokeError::UnknownKernel(kernel.to_owned()))?;
        let mut slots = Vec::new();
        for _ in 0..count {
            slots.push(
                self.inner
                    .pool
                    .spawn_runner(kernel, &k, self.inner.config.runner)?,
            );
        }
        for slot in slots {
            slot.wait_ready().await;
        }
        Ok(())
    }

    /// Accept loop: serves every connection until the listener closes.
    ///
    /// Single requests ([`RequestFrame::One`]) walk the historical
    /// per-frame path. Batched frames ([`RequestFrame::Batch`]) fan out
    /// into concurrent [`handle`](KaasServer::handle) calls — so the
    /// resilience machinery (retry, breakers, eviction) treats each
    /// member individually — and the replies coalesce symmetrically
    /// into one [`ResponseFrame::Batch`] in request order.
    pub async fn serve(self, mut listener: Listener<RequestFrame, ResponseFrame>) {
        while let Some(conn) = listener.accept().await {
            let server = self.clone();
            spawn(async move {
                let (tx, mut rx) = conn.split();
                while let Some(frame) = rx.recv().await {
                    let server = server.clone();
                    let tx = tx.clone();
                    spawn(async move {
                        match frame.body {
                            RequestFrame::One(req) => {
                                let parent = req.span;
                                let resp = server.handle(req).await;
                                let out = ResponseFrame::One(resp);
                                let bytes = out.wire_bytes();
                                let t0 = kaas_simtime::now();
                                let sent = tx.send(Frame::new(out, bytes)).await;
                                if let (Some(tracer), Ok(())) = (&server.inner.config.tracer, sent)
                                {
                                    // The reply transmission, parented under
                                    // the client's roundtrip span.
                                    tracer.record(
                                        "server",
                                        "net_send",
                                        t0,
                                        kaas_simtime::now(),
                                        parent,
                                        vec![("bytes".into(), bytes.to_string())],
                                    );
                                }
                            }
                            RequestFrame::Batch(reqs) => {
                                {
                                    let m = &server.inner.metrics_registry;
                                    m.inc("dispatch.batches");
                                    m.add("dispatch.batch_members", reqs.len() as u64);
                                }
                                // Members run concurrently and fail
                                // independently; `join_all` preserves
                                // request order for the coalesced reply.
                                let members = reqs.into_iter().map(|req| {
                                    let server = server.clone();
                                    async move { server.handle(req).await }
                                });
                                let resps = join_all(members).await;
                                let out = ResponseFrame::Batch(resps);
                                let bytes = out.wire_bytes();
                                let _ = tx.send(Frame::new(out, bytes)).await;
                            }
                        }
                    });
                }
            });
        }
    }
}

#[cfg(feature = "sim-sanitizer")]
impl Drop for ServerInner {
    fn drop(&mut self) {
        // Only check leaks on a clean shutdown: during an unwind the
        // invariants are expected to be mid-violation already, and a
        // panic-in-panic would abort and mask the original report.
        // audit:allow(ambient): unwind detection only, no time or threads
        if std::thread::panicking() {
            return;
        }
        crate::sanitize::check_shutdown(self);
    }
}

/// Point-in-time control-plane statistics for one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// Usable runner slots (starting or ready).
    pub runners: usize,
    /// In-flight (claimed) invocations.
    pub in_flight: usize,
}

/// A consistent point-in-time view of a server's control plane, taken
/// with [`KaasServer::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerSnapshot {
    /// Per-kernel stats, keyed by kernel name (sorted).
    pub kernels: BTreeMap<String, KernelStats>,
    /// Runners reaped by the idle timeout so far.
    pub reaped: usize,
    /// Device classes present in the deployment (sorted, deduplicated).
    pub device_classes: Vec<DeviceClass>,
    /// Runner slots quarantined for persistent failure so far.
    pub quarantined: usize,
    /// Current circuit-breaker state per device (empty when breakers are
    /// disabled or no device has been placed on yet).
    pub breakers: BTreeMap<DeviceId, BreakerState>,
    /// Per-shard dispatch queue depths (empty under the serialized
    /// engine). Always sums to
    /// [`dispatch_queued`](ServerSnapshot::dispatch_queued) — an invariant the
    /// sim-sanitizer re-checks after every executor step.
    pub shard_depths: Vec<usize>,
    /// Dispatch jobs queued across all shards right now.
    pub dispatch_queued: usize,
    /// Requests each shard has shed (over-cap at enqueue) or ejected
    /// (deadline passed while queued) so far — honest accounting for
    /// the bounded queues; always sums to
    /// [`dispatch_ejected`](ServerSnapshot::dispatch_ejected).
    pub shard_ejected: Vec<u64>,
    /// Requests shed or ejected across all shards so far.
    pub dispatch_ejected: u64,
    /// The admission limiter's current concurrency ceiling (`None`
    /// when no limiter is configured; moves over time under
    /// [`AdmissionPolicy::Adaptive`](crate::AdmissionPolicy)).
    pub admission_limit: Option<usize>,
}

impl ServerSnapshot {
    /// Usable runner slots for `kernel` (0 if never started).
    pub fn runners(&self, kernel: &str) -> usize {
        self.kernels.get(kernel).map_or(0, |k| k.runners)
    }

    /// In-flight invocations for `kernel` (0 if never started).
    pub fn in_flight(&self, kernel: &str) -> usize {
        self.kernels.get(kernel).map_or(0, |k| k.in_flight)
    }

    /// Runner slots across every kernel.
    pub fn total_runners(&self) -> usize {
        self.kernels.values().map(|k| k.runners).sum()
    }

    /// In-flight invocations across every kernel.
    pub fn total_in_flight(&self) -> usize {
        self.kernels.values().map(|k| k.in_flight).sum()
    }
}
