//! [`KaasServer`]: accepts invocations, routes them to warm task runners,
//! and scales runners out across devices on demand (§4.1 and §5.5 of the
//! paper).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use kaas_accel::{Device, DeviceClass, DeviceId};
use kaas_kernels::{Kernel, Value};
use kaas_net::{Frame, Listener, SerializationProfile, SharedMemory};
use kaas_simtime::sync::{Event, Semaphore};
use kaas_simtime::{now, sleep, spawn};

use crate::metrics::{InvocationReport, MetricsSink, RunnerId};
use crate::protocol::{DataRef, InvokeError, Request, Response};
use crate::registry::KernelRegistry;
use crate::runner::{RunnerConfig, TaskRunner};

/// Reserved kernel name answering with the site's registered kernel
/// list (used by federated clients for discovery).
pub const DISCOVERY_KERNEL: &str = "_kaas/list";

/// How eligible runners are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Fill the earliest-started runner to its in-flight cap before
    /// spilling to the next (the paper's §5.5 autoscaling behaviour).
    #[default]
    FillFirst,
    /// Rotate across all runners (the paper's §5.4 weak-scaling
    /// "round-robin scheduler").
    RoundRobin,
    /// Pick the runner with the fewest in-flight invocations.
    LeastLoaded,
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Per-invocation routing cost on the server CPU (calibrated to the
    /// Fig. 12b weak-scaling offset: ≈ 35 µs/invocation).
    pub dispatch_overhead: Duration,
    /// Runner settings.
    pub runner: RunnerConfig,
    /// Scheduling policy.
    pub scheduler: Scheduler,
    /// Start new runners on unused devices when all existing runners are
    /// at their in-flight cap.
    pub autoscale: bool,
    /// Reap runners that stay idle for this long (§6: energy-aware
    /// scale-*down*; the next invocation after a reap cold-starts).
    /// `None` keeps runners warm forever.
    pub idle_timeout: Option<Duration>,
    /// Per-tenant concurrent-invocation quota (§3.1 fairness): a tenant
    /// exceeding it queues FIFO behind its own requests instead of
    /// starving others. `None` disables tenant accounting.
    pub tenant_quota: Option<usize>,
    /// Serializer for in-band payloads.
    pub serialization: SerializationProfile,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            dispatch_overhead: Duration::from_micros(35),
            runner: RunnerConfig::default(),
            scheduler: Scheduler::FillFirst,
            autoscale: true,
            idle_timeout: None,
            tenant_quota: None,
            serialization: SerializationProfile::python_pickle(),
        }
    }
}

/// A runner slot: claimed synchronously at dispatch time, filled by an
/// asynchronous cold start.
struct RunnerSlot {
    device: DeviceId,
    claimed: Cell<usize>,
    ready: Event,
    runner: RefCell<Option<Rc<TaskRunner>>>,
    dead: Cell<bool>,
    last_used: Cell<kaas_simtime::SimTime>,
}

impl RunnerSlot {
    fn is_usable(&self) -> bool {
        !self.dead.get()
    }
}

struct ServerInner {
    devices: Vec<Device>,
    registry: KernelRegistry,
    config: ServerConfig,
    shm: SharedMemory,
    slots: RefCell<HashMap<String, Vec<Rc<RunnerSlot>>>>,
    rr: Cell<usize>,
    next_runner: Cell<u32>,
    metrics: MetricsSink,
    /// The router runs on one server thread: dispatch work serializes
    /// (the Fig. 12b weak-scaling offset of ≈35 µs per invocation).
    dispatch_lock: Semaphore,
    reaped: Cell<usize>,
    tenants: RefCell<HashMap<String, Semaphore>>,
}

/// The KaaS server (Fig. 3: registration target and invocation router).
///
/// # Examples
///
/// ```
/// use kaas_core::{KaasServer, KaasClient, KernelRegistry, ServerConfig};
/// use kaas_kernels::{MonteCarlo, Value};
/// use kaas_accel::{Device, GpuDevice, GpuProfile, DeviceId};
/// use kaas_net::{LinkProfile, Network, SharedMemory};
/// use kaas_simtime::{spawn, Simulation};
///
/// let mut sim = Simulation::new();
/// let out = sim.block_on(async {
///     let registry = KernelRegistry::new();
///     registry.register(MonteCarlo::default()).unwrap();
///     let gpu: Device = GpuDevice::new(DeviceId(0), GpuProfile::p100()).into();
///     let shm = SharedMemory::host();
///     let server = KaasServer::new(vec![gpu], registry, shm, ServerConfig::default());
///     let net = Network::new();
///     let listener = net.listen("kaas").unwrap();
///     spawn({ let server = server.clone(); async move { server.serve(listener).await } });
///     let mut client = KaasClient::connect(&net, "kaas", LinkProfile::loopback())
///         .await
///         .unwrap();
///     client.invoke("mci", Value::U64(10_000)).await.unwrap().output
/// });
/// assert!(matches!(out, kaas_kernels::Value::F64(_)));
/// ```
#[derive(Clone)]
pub struct KaasServer {
    inner: Rc<ServerInner>,
}

impl std::fmt::Debug for KaasServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KaasServer")
            .field("devices", &self.inner.devices.len())
            .field("kernels", &self.inner.registry.names())
            .finish()
    }
}

impl KaasServer {
    /// Creates a server managing `devices` with the given registry and
    /// (host-local) shared memory region.
    pub fn new(
        devices: Vec<Device>,
        registry: KernelRegistry,
        shm: SharedMemory,
        config: ServerConfig,
    ) -> Self {
        KaasServer {
            inner: Rc::new(ServerInner {
                devices,
                registry,
                config,
                shm,
                slots: RefCell::new(HashMap::new()),
                rr: Cell::new(0),
                next_runner: Cell::new(0),
                metrics: MetricsSink::new(),
                dispatch_lock: Semaphore::new(1),
                reaped: Cell::new(0),
                tenants: RefCell::new(HashMap::new()),
            }),
        }
    }

    /// The server's metric sink.
    pub fn metrics(&self) -> MetricsSink {
        self.inner.metrics.clone()
    }

    /// The managed devices.
    pub fn devices(&self) -> &[Device] {
        &self.inner.devices
    }

    /// The kernel registry (register kernels through this).
    pub fn registry(&self) -> &KernelRegistry {
        &self.inner.registry
    }

    /// Number of runner slots (starting or ready) for `kernel`.
    pub fn runner_count(&self, kernel: &str) -> usize {
        self.inner
            .slots
            .borrow()
            .get(kernel)
            .map(|v| v.iter().filter(|s| s.is_usable()).count())
            .unwrap_or(0)
    }

    /// Total in-flight (claimed) invocations for `kernel`.
    pub fn in_flight(&self, kernel: &str) -> usize {
        self.inner
            .slots
            .borrow()
            .get(kernel)
            .map(|v| v.iter().map(|s| s.claimed.get()).sum())
            .unwrap_or(0)
    }

    /// Pre-starts `count` runners for `kernel` and waits until they are
    /// warm — how the "warm start" experiments begin.
    ///
    /// # Errors
    ///
    /// [`InvokeError::UnknownKernel`] / [`InvokeError::NoDevice`] when the
    /// kernel or a suitable device is missing.
    pub async fn prewarm(&self, kernel: &str, count: usize) -> Result<(), InvokeError> {
        let k = self
            .inner
            .registry
            .lookup(kernel)
            .ok_or_else(|| InvokeError::UnknownKernel(kernel.to_owned()))?;
        let mut slots = Vec::new();
        for _ in 0..count {
            slots.push(self.start_runner(kernel, &k)?);
        }
        for slot in slots {
            slot.ready.wait().await;
        }
        Ok(())
    }

    /// Accept loop: serves every connection until the listener closes.
    pub async fn serve(self, mut listener: Listener<Request, Response>) {
        while let Some(conn) = listener.accept().await {
            let server = self.clone();
            spawn(async move {
                let (tx, mut rx) = conn.split();
                while let Some(frame) = rx.recv().await {
                    let server = server.clone();
                    let tx = tx.clone();
                    spawn(async move {
                        let resp = server.handle(frame.body).await;
                        let bytes = resp.wire_bytes();
                        let _ = tx.send(Frame::new(resp, bytes)).await;
                    });
                }
            });
        }
    }

    /// Handles one request end to end (public for in-process use and
    /// tests; network callers go through [`KaasServer::serve`]).
    pub async fn handle(&self, req: Request) -> Response {
        let id = req.id;
        match self.handle_inner(req).await {
            Ok((data, report)) => Response {
                id,
                result: Ok(data),
                report: Some(report),
            },
            Err(e) => Response {
                id,
                result: Err(e),
                report: None,
            },
        }
    }

    async fn handle_inner(
        &self,
        req: Request,
    ) -> Result<(DataRef, InvocationReport), InvokeError> {
        // Reserved discovery endpoint: federated clients list the
        // kernels a site serves before routing work to it.
        if req.kernel == DISCOVERY_KERNEL {
            let names = self
                .inner
                .registry
                .names()
                .into_iter()
                .map(Value::Text)
                .collect();
            let report = InvocationReport {
                kernel: DISCOVERY_KERNEL.to_owned(),
                runner: RunnerId(u32::MAX),
                device: DeviceId(u32::MAX),
                cold_start: false,
                submitted: now(),
                started: now(),
                completed: now(),
                copy_in: Duration::ZERO,
                kernel_exec: Duration::ZERO,
                copy_out: Duration::ZERO,
            };
            return Ok((DataRef::InBand(Value::List(names)), report));
        }
        let submitted = now();
        // Per-tenant admission: a tenant over its quota waits behind its
        // own requests (FIFO), never starving other tenants.
        let _tenant_permit = match (&req.tenant, self.inner.config.tenant_quota) {
            (Some(tenant), Some(quota)) => {
                let sem = self
                    .inner
                    .tenants
                    .borrow_mut()
                    .entry(tenant.clone())
                    .or_insert_with(|| Semaphore::new(quota))
                    .clone();
                Some(sem.acquire(1).await)
            }
            _ => None,
        };
        {
            let _router = self.inner.dispatch_lock.acquire(1).await;
            sleep(self.inner.config.dispatch_overhead).await;
        }
        let kernel = self
            .inner
            .registry
            .lookup(&req.kernel)
            .ok_or_else(|| InvokeError::UnknownKernel(req.kernel.clone()))?;

        // Materialize the input.
        let oob = matches!(req.data, DataRef::OutOfBand(_));
        let mut enveloped = false;
        let input = match req.data {
            DataRef::InBand(v) => {
                // Runner-side deserialization of the in-band payload.
                sleep(self.inner.config.serialization.time(v.wire_bytes())).await;
                v
            }
            DataRef::OutOfBand(h) => self
                .inner
                .shm
                .take(h)
                .await
                .ok_or(InvokeError::BadHandle)?,
        };
        enveloped |= matches!(input, Value::Sized { .. });

        // Dispatch with one retry if the chosen runner died.
        let mut attempts = 0;
        let (output, timings, runner_id, device_id, started) = loop {
            attempts += 1;
            let slot = self.pick_slot(&req.kernel, &kernel)?;
            slot.claimed.set(slot.claimed.get() + 1);
            slot.ready.wait().await;
            let runner = slot
                .runner
                .borrow()
                .clone()
                .expect("slot signalled ready without a runner");
            let started = now();
            let result = runner.invoke(&input).await;
            slot.claimed.set(slot.claimed.get() - 1);
            slot.last_used.set(now());
            if let Some(timeout) = self.inner.config.idle_timeout {
                self.arm_reaper(&slot, timeout);
            }
            match result {
                Ok((output, timings)) => {
                    break (output, timings, runner.id(), runner.device_id(), started)
                }
                Err(InvokeError::RunnerFailed(msg)) if attempts < 3 => {
                    slot.dead.set(true);
                    let _ = msg;
                }
                Err(e) => return Err(e),
            }
        };

        let completed = now();
        let report = InvocationReport {
            kernel: req.kernel.clone(),
            runner: runner_id,
            device: device_id,
            cold_start: timings.first_invocation,
            submitted,
            started,
            completed,
            copy_in: timings.copy_in,
            kernel_exec: timings.kernel_exec,
            copy_out: timings.copy_out,
        };
        self.inner.metrics.record(report.clone());

        // Descriptor-mode requests get descriptor-sized responses: the
        // logical result size is the kernel's device→host volume.
        let output = if enveloped {
            let bytes_out = kernel
                .work(input.payload())
                .map(|w| w.bytes_out)
                .unwrap_or(0)
                .max(output.wire_bytes());
            Value::sized(bytes_out, output)
        } else {
            output
        };
        // Return the output the same way the input came in.
        let data = if oob {
            let bytes = output.wire_bytes();
            DataRef::OutOfBand(self.inner.shm.put(output, bytes).await)
        } else {
            sleep(self.inner.config.serialization.time(output.wire_bytes())).await;
            DataRef::InBand(output)
        };
        Ok((data, report))
    }

    /// Chooses (or starts) a runner slot for `kernel`. Claims nothing —
    /// the caller increments `claimed`.
    fn pick_slot(
        &self,
        name: &str,
        kernel: &Rc<dyn Kernel>,
    ) -> Result<Rc<RunnerSlot>, InvokeError> {
        let cap = self.inner.config.runner.max_inflight;
        {
            let slots = self.inner.slots.borrow();
            let list: Vec<Rc<RunnerSlot>> = slots
                .get(name)
                .map(|v| v.iter().filter(|s| s.is_usable()).cloned().collect())
                .unwrap_or_default();
            if !list.is_empty() {
                match self.inner.config.scheduler {
                    Scheduler::FillFirst => {
                        if let Some(slot) = list.iter().find(|s| s.claimed.get() < cap) {
                            return Ok(Rc::clone(slot));
                        }
                    }
                    Scheduler::RoundRobin => {
                        let i = self.inner.rr.get();
                        self.inner.rr.set(i + 1);
                        return Ok(Rc::clone(&list[i % list.len()]));
                    }
                    Scheduler::LeastLoaded => {
                        let slot = list
                            .iter()
                            .min_by_key(|s| s.claimed.get())
                            .expect("non-empty");
                        if slot.claimed.get() < cap {
                            return Ok(Rc::clone(slot));
                        }
                    }
                }
            }
        }
        // Everything is full (or nothing exists): scale out if allowed.
        if self.inner.config.autoscale || self.runner_count(name) == 0 {
            if let Ok(slot) = self.start_runner(name, kernel) {
                return Ok(slot);
            }
        }
        // Fall back to queueing on the least-claimed usable slot.
        let slots = self.inner.slots.borrow();
        slots
            .get(name)
            .and_then(|v| {
                v.iter()
                    .filter(|s| s.is_usable())
                    .min_by_key(|s| s.claimed.get())
                    .cloned()
            })
            .ok_or_else(|| InvokeError::NoDevice(kernel.device_class().to_string()))
    }

    /// Starts a new runner for `kernel` on a free device (synchronously
    /// reserving the slot, asynchronously cold-starting the runner).
    ///
    /// # Errors
    ///
    /// [`InvokeError::NoDevice`] if every suitable device already hosts
    /// this kernel (one runner per device; one per chip on TPUs).
    fn start_runner(
        &self,
        name: &str,
        kernel: &Rc<dyn Kernel>,
    ) -> Result<Rc<RunnerSlot>, InvokeError> {
        let class = kernel.device_class();
        let mut slots = self.inner.slots.borrow_mut();
        let list = slots.entry(name.to_owned()).or_default();
        let device = self
            .inner
            .devices
            .iter()
            .find(|d| {
                if d.class() != class {
                    return false;
                }
                let occupied = list
                    .iter()
                    .filter(|s| s.is_usable() && s.device == d.id())
                    .count();
                let capacity = match d {
                    Device::Tpu(t) => t.chips() as usize,
                    _ => 1,
                };
                occupied < capacity
            })
            .cloned()
            .ok_or_else(|| InvokeError::NoDevice(class.to_string()))?;

        let chip = list
            .iter()
            .filter(|s| s.is_usable() && s.device == device.id())
            .count() as u32;
        let slot = Rc::new(RunnerSlot {
            device: device.id(),
            claimed: Cell::new(0),
            ready: Event::new(),
            runner: RefCell::new(None),
            dead: Cell::new(false),
            last_used: Cell::new(now()),
        });
        list.push(Rc::clone(&slot));
        drop(slots);

        let id = RunnerId(self.inner.next_runner.get());
        self.inner.next_runner.set(id.0 + 1);
        let kernel = Rc::clone(kernel);
        let config = self.inner.config.runner;
        let slot2 = Rc::clone(&slot);
        spawn(async move {
            let runner = TaskRunner::cold_start(id, kernel, device, chip, config).await;
            *slot2.runner.borrow_mut() = Some(Rc::new(runner));
            slot2.ready.set();
        });
        Ok(slot)
    }

    /// Number of runners reaped by the idle timeout so far.
    pub fn reaped(&self) -> usize {
        self.inner.reaped.get()
    }

    /// Schedules an idle check for `slot` one timeout from now; the slot
    /// is reaped if no invocation touched it in the meantime. Checks are
    /// one-shot (armed per completed invocation), so an idle deployment
    /// quiesces instead of polling forever.
    fn arm_reaper(&self, slot: &Rc<RunnerSlot>, timeout: Duration) {
        let slot = Rc::clone(slot);
        let server = self.clone();
        let armed_at = now();
        spawn(async move {
            sleep(timeout).await;
            if slot.dead.get() || slot.claimed.get() > 0 {
                return;
            }
            if slot.last_used.get() > armed_at {
                // Someone used the runner since; their completion armed a
                // fresher check.
                return;
            }
            slot.dead.set(true);
            if let Some(runner) = slot.runner.borrow().as_ref() {
                runner.kill();
            }
            server.inner.reaped.set(server.inner.reaped.get() + 1);
        });
    }

    /// Kills the runner currently serving `kernel` on `device` (failure
    /// injection for tests).
    pub fn kill_runner(&self, kernel: &str, device: DeviceId) -> bool {
        let slots = self.inner.slots.borrow();
        if let Some(list) = slots.get(kernel) {
            for slot in list {
                if slot.device == device && slot.is_usable() {
                    if let Some(runner) = slot.runner.borrow().as_ref() {
                        runner.kill();
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Device classes available in this deployment.
    pub fn device_classes(&self) -> Vec<DeviceClass> {
        let mut classes: Vec<DeviceClass> =
            self.inner.devices.iter().map(Device::class).collect();
        classes.sort();
        classes.dedup();
        classes
    }
}
