//! End-to-end invocation tracing: the span model.
//!
//! Tracing is runtime-opt-in: create one [`SpanSink`], attach it to
//! clients ([`KaasClient::with_tracer`](crate::KaasClient::with_tracer))
//! and the server
//! ([`ServerConfig::with_tracer`][crate::ServerConfig::with_tracer]),
//! then run the workload and export
//! with [`SpanSink::to_chrome_json`]. Identical runs produce
//! byte-identical JSON.
//!
//! One traced invocation becomes this span tree (tracks in
//! parentheses):
//!
//! ```text
//! invoke (client{N})
//! ├── serialize | shm_put        (client{N})
//! ├── roundtrip                  (client{N})
//! │   ├── net_send               (client{N})  request transmission
//! │   ├── admission              (server)
//! │   ├── dispatch               (server)
//! │   ├── deserialize | shm_take (server)
//! │   ├── queue_wait             (server)     placement → device start
//! │   ├── copy_in                (runner{M})
//! │   ├── kernel_exec            (runner{M})
//! │   ├── copy_out               (runner{M})
//! │   ├── reply                  (server)     response serialization
//! │   └── net_send               (server)     reply transmission
//! └── deserialize | shm_take     (client{N})
//! ```
//!
//! `cold_start` spans appear on `runner{M}` tracks as roots (a cold
//! start can serve many queued invocations, so it belongs to no single
//! request). The root's direct client-side children tile it exactly:
//! their durations sum to the client-observed
//! [`Invocation::latency`][crate::Invocation::latency].

pub use kaas_simtime::trace::{OpenSpan, Span, SpanId, SpanSink};
