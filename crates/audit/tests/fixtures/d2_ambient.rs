//! Fixture: rule D2 fires exactly once — wall-clock time in simulation
//! code. (Not compiled; scanned by `kaas-audit --files`.)

pub fn stamp() -> u64 {
    let _t = std::time::Instant::now();
    0
}
