//! Fixture companion for `r1_protocol.rs`: covers `UnknownKernel` but
//! not `Overloaded`. (Not compiled; scanned by `kaas-audit --r1`.)

#[test]
fn unknown_kernel_is_reported() {
    let e = InvokeError::UnknownKernel("nope".into());
    assert_eq!(e.kind(), "unknown-kernel");
}
