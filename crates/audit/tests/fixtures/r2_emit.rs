//! Fixture: rule R2 fires exactly once — `hitz` is a typo'd metric name
//! not declared in the inventory. (Not compiled; scanned by
//! `kaas-audit --r2`.)

pub fn record(m: &Registry) {
    m.inc("hits");
    m.inc("hitz");
}
