//! Fixture: rule D1 fires exactly once — an unannotated `HashMap` in
//! deterministic code. (Not compiled; scanned by `kaas-audit --files`.)

pub struct State {
    pub slots: std::collections::HashMap<u64, u64>,
}
