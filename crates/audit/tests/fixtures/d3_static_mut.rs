//! Fixture: rule D3 fires exactly once — mutable global state outside
//! `simtime`. (Not compiled; scanned by `kaas-audit --files`.)

pub static mut COUNTER: u64 = 0;
