//! Fixture: rule D1 fires exactly once — a properly annotated `HashMap`
//! whose iteration order nevertheless leaks into an observable result.
//! (Not compiled; scanned by `kaas-audit --files`.)

use std::collections::HashMap; // audit:allow(unordered): import only, keyed access below

pub struct State {
    slots: HashMap<u64, u64>, // audit:allow(unordered): keyed lookups only
}

impl State {
    pub fn total(&self) -> u64 {
        self.slots.values().sum()
    }
}
