//! Fixture: rule R1 fires exactly once — `Overloaded` is declared and
//! listed in KINDS, but the failure test never exercises it.
//! (Not compiled; scanned by `kaas-audit --r1`.)

pub enum InvokeError {
    UnknownKernel(String),
    Overloaded,
}

impl InvokeError {
    pub const KINDS: [&'static str; 2] = ["unknown-kernel", "overloaded"];
}
