//! Drives the `kaas-audit` binary over the bad fixtures in
//! `tests/fixtures/` — each rule must fire exactly once and exit
//! nonzero — and over the real workspace, which must be clean.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

/// Runs the audit binary; returns (exit-success, stdout).
fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_kaas-audit"))
        .args(args)
        .output()
        .expect("spawn kaas-audit");
    (
        out.status.success(),
        String::from_utf8(out.stdout).expect("utf8 stdout"),
    )
}

/// Asserts a fixture run exits nonzero with exactly one finding, for
/// the given rule.
fn assert_fires_once(args: &[&str], rule: &str) {
    let (ok, stdout) = run(args);
    assert!(!ok, "expected nonzero exit; stdout:\n{stdout}");
    assert!(
        stdout.contains("\"diagnostics\":1"),
        "expected exactly one diagnostic; stdout:\n{stdout}"
    );
    assert!(
        stdout.contains(&format!("\"{rule}\":1")),
        "expected the one diagnostic to be {rule}; stdout:\n{stdout}"
    );
}

#[test]
fn d1_unannotated_hashmap_fires_once() {
    assert_fires_once(&["--files", &fixture("d1_unordered.rs")], "D1");
}

#[test]
fn d1_iterated_annotated_map_fires_once() {
    assert_fires_once(&["--files", &fixture("d1_iterated.rs")], "D1");
}

#[test]
fn d2_wall_clock_fires_once() {
    assert_fires_once(&["--files", &fixture("d2_ambient.rs")], "D2");
}

#[test]
fn d3_static_mut_fires_once() {
    assert_fires_once(&["--files", &fixture("d3_static_mut.rs")], "D3");
}

#[test]
fn r1_uncovered_variant_fires_once() {
    assert_fires_once(
        &["--r1", &fixture("r1_protocol.rs"), &fixture("r1_test.rs")],
        "R1",
    );
}

#[test]
fn r2_undeclared_metric_fires_once() {
    assert_fires_once(
        &["--r2", &fixture("r2_inventory.txt"), &fixture("r2_emit.rs")],
        "R2",
    );
}

/// The meta-test: the real workspace must be clean — zero diagnostics,
/// zero exit. Anything this catches is a regression the bad-fixture
/// tests above prove the scanner *would* report.
#[test]
fn workspace_is_clean() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let (ok, stdout) = run(&[&root.to_string_lossy()]);
    assert!(ok, "workspace audit must exit 0; stdout:\n{stdout}");
    assert!(
        stdout.contains("\"diagnostics\":0"),
        "workspace must be clean; stdout:\n{stdout}"
    );
}
