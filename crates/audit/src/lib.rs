//! # kaas-audit — workspace determinism & resource-safety linter
//!
//! A zero-dependency static-analysis pass over the KaaS workspace.
//! Every evaluation claim in this reproduction rests on byte-identical
//! seeded replay; this crate enforces the discipline mechanically
//! instead of by convention. The workspace is deps-free, so the scanner
//! is hand-rolled (no `syn`): comment/string-aware lexing plus a small
//! token walker — deliberately conservative, tuned to this codebase's
//! idioms rather than the whole Rust grammar.
//!
//! ## Rules
//!
//! | Rule | Slug             | What it catches                                        |
//! |------|------------------|--------------------------------------------------------|
//! | D1   | `unordered`      | `HashMap`/`HashSet` in deterministic crates: random iteration order breaks replay |
//! | D2   | `ambient`        | `Instant`/`SystemTime`/`std::thread`/ambient randomness: only `kaas_simtime::{time,rng}` |
//! | D3   | `mutable-static` | `static mut` / `thread_local!` mutable state outside `simtime` |
//! | R1   | —                | `InvokeError` variants missing from `KINDS` or the exhaustiveness test |
//! | R2   | —                | metric names emitted but undeclared in `metrics/INVENTORY` (and vice versa) |
//!
//! D-rule findings are suppressed line-by-line with
//! `// audit:allow(<slug>): <why>` — trailing on the offending line,
//! or standing alone on the line immediately above it (the form that
//! survives rustfmt on long lines). The reason is mandatory, and a
//! D1-allowed map must additionally never be iterated (the scanner
//! tracks the annotated binding and flags `.iter()`/`.values()`/
//! `for … in` uses anywhere in the file).

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// The crates whose sources must obey the determinism rules.
pub const DETERMINISTIC_CRATES: [&str; 8] = [
    "simtime", "net", "accel", "core", "kernels", "quantum", "bench", "guest",
];

/// A lint rule identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D1: unordered collections (`HashMap`/`HashSet`).
    D1Unordered,
    /// D2: ambient authority (wall clock, OS threads, process randomness).
    D2Ambient,
    /// D3: mutable static state outside `simtime`.
    D3MutableStatic,
    /// R1: `InvokeError` exhaustiveness (KINDS table + failure test).
    R1ErrorKinds,
    /// R2: metric names vs the declared `metrics/INVENTORY`.
    R2MetricInventory,
}

impl Rule {
    /// Short code used in diagnostics and the summary (`D1`..`R2`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::D1Unordered => "D1",
            Rule::D2Ambient => "D2",
            Rule::D3MutableStatic => "D3",
            Rule::R1ErrorKinds => "R1",
            Rule::R2MetricInventory => "R2",
        }
    }

    /// The `audit:allow(<slug>)` annotation slug, if the rule has one.
    pub fn slug(self) -> Option<&'static str> {
        match self {
            Rule::D1Unordered => Some("unordered"),
            Rule::D2Ambient => Some("ambient"),
            Rule::D3MutableStatic => Some("mutable-static"),
            Rule::R1ErrorKinds | Rule::R2MetricInventory => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.slug() {
            Some(slug) => write!(f, "{}/{}", self.code(), slug),
            None => write!(f, "{}", self.code()),
        }
    }
}

/// One finding, anchored to a file and 1-based line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

impl Diagnostic {
    /// One-line JSON object for this finding, with stable field names
    /// (`file`, `line`, `rule`, `slug`, `message`) — the CLI's
    /// `--format=json` output that CI turns into annotations. `slug` is
    /// `null` for rules without an `audit:allow` slug.
    pub fn to_json(&self) -> String {
        let slug = match self.rule.slug() {
            Some(s) => format!("\"{s}\""),
            None => "null".to_string(),
        };
        format!(
            "{{\"file\":{},\"line\":{},\"rule\":\"{}\",\"slug\":{},\"message\":{}}}",
            json_string(&self.file.display().to_string()),
            self.line,
            self.rule.code(),
            slug,
            json_string(&self.message),
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The outcome of a full audit: findings plus scan statistics.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned by the D-rules.
    pub files_scanned: usize,
}

impl Report {
    /// Findings per rule code, for the machine-readable summary.
    pub fn per_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut out: BTreeMap<&'static str, usize> =
            [("D1", 0), ("D2", 0), ("D3", 0), ("R1", 0), ("R2", 0)]
                .into_iter()
                .collect();
        for d in &self.diagnostics {
            *out.entry(d.rule.code()).or_insert(0) += 1;
        }
        out
    }

    /// One-line machine-readable summary (stable key order).
    pub fn summary_json(&self) -> String {
        let rules = self
            .per_rule()
            .into_iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"files\":{},\"diagnostics\":{},\"rules\":{{{}}}}}",
            self.files_scanned,
            self.diagnostics.len(),
            rules
        )
    }

    fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }
}

// ---------------------------------------------------------------------------
// Lexing: comment/string stripping with byte offsets preserved
// ---------------------------------------------------------------------------

/// An `audit:allow` annotation found on one source line.
#[derive(Debug, Clone)]
struct Allow {
    /// The line the comment itself sits on (for hygiene diagnostics).
    line: usize,
    /// The line the annotation suppresses: its own for a trailing
    /// comment, the next one when the annotation stands alone on its
    /// line (so rustfmt-wrapped code keeps its suppression).
    applies_to: usize,
    slug: String,
    /// Whether the mandatory `: <why>` reason was present.
    has_why: bool,
    /// Set when a finding was suppressed by this annotation.
    used: std::cell::Cell<bool>,
}

/// Source text with comments and string contents blanked to spaces.
///
/// Byte offsets (and therefore line numbers) are identical to the
/// original: comments become spaces, string *contents* become spaces
/// but the delimiting quotes survive, and newlines always survive.
struct Stripped {
    text: String,
    line_starts: Vec<usize>,
    allows: Vec<Allow>,
}

impl Stripped {
    fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    fn allow_for(&self, line: usize, slug: &str) -> Option<&Allow> {
        self.allows
            .iter()
            .find(|a| a.applies_to == line && a.slug == slug && a.has_why)
    }
}

fn parse_allow_comment(comment: &str, line: usize) -> Option<Allow> {
    let at = comment.find("audit:allow(")?;
    let rest = &comment[at + "audit:allow(".len()..];
    let close = rest.find(')')?;
    let slug = rest[..close].trim().to_string();
    let tail = rest[close + 1..].trim_start();
    let has_why = tail
        .strip_prefix(':')
        .is_some_and(|why| !why.trim().is_empty());
    Some(Allow {
        line,
        applies_to: line,
        slug,
        has_why,
        used: std::cell::Cell::new(false),
    })
}

fn strip_source(src: &str) -> Stripped {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut allows = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Appends `b` (or a space for blanked content, keeping newlines).
    fn blank(out: &mut Vec<u8>, b: u8) {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let end = src[i..].find('\n').map(|n| i + n).unwrap_or(bytes.len());
                if let Some(mut a) = parse_allow_comment(&src[i..end], line) {
                    // A standalone annotation (nothing but whitespace
                    // before the `//`) covers the NEXT line — the
                    // trailing form survives rustfmt only on short
                    // lines.
                    let standalone = bytes[..i]
                        .iter()
                        .rev()
                        .take_while(|&&c| c != b'\n')
                        .all(|&c| c == b' ' || c == b'\t');
                    if standalone {
                        a.applies_to = line + 1;
                    }
                    allows.push(a);
                }
                for &c in &bytes[i..end] {
                    blank(&mut out, c);
                }
                i = end;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 1;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && j + 1 < bytes.len() && bytes[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && j + 1 < bytes.len() && bytes[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                for &c in &bytes[i..j] {
                    if c == b'\n' {
                        line += 1;
                    }
                    blank(&mut out, c);
                }
                i = j;
            }
            b'r' | b'b'
                if {
                    // Raw (and byte-raw) strings: r"..", r#".."#, br#".."#.
                    let mut j = i + 1;
                    if b == b'b' && j < bytes.len() && bytes[j] == b'r' {
                        j += 1;
                    }
                    let hashes_start = j;
                    while j < bytes.len() && bytes[j] == b'#' {
                        j += 1;
                    }
                    (b != b'b' || i + 1 < bytes.len() && bytes[i + 1] == b'r')
                        && j < bytes.len()
                        && bytes[j] == b'"'
                        && (b == b'b' || hashes_start == i + 1)
                        // Not part of a longer identifier (e.g. `for r in ..`).
                        && (i == 0 || !is_ident_byte(bytes[i - 1]))
                } =>
            {
                let mut j = i + 1;
                if b == b'b' {
                    j += 1;
                }
                let mut n_hashes = 0;
                while bytes[j] == b'#' {
                    n_hashes += 1;
                    j += 1;
                }
                // Copy prefix + opening quote verbatim.
                out.extend_from_slice(&bytes[i..=j]);
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', n_hashes))
                    .collect();
                let content_start = j + 1;
                let close = src[content_start..]
                    .find(std::str::from_utf8(&closer).unwrap())
                    .map(|n| content_start + n)
                    .unwrap_or(bytes.len());
                for &c in &bytes[content_start..close] {
                    if c == b'\n' {
                        line += 1;
                    }
                    blank(&mut out, c);
                }
                let end = (close + closer.len()).min(bytes.len());
                out.extend_from_slice(&bytes[close.min(bytes.len())..end]);
                i = end;
            }
            b'"' => {
                out.push(b'"');
                let mut j = i + 1;
                while j < bytes.len() {
                    match bytes[j] {
                        b'\\' => {
                            blank(&mut out, bytes[j]);
                            if j + 1 < bytes.len() {
                                if bytes[j + 1] == b'\n' {
                                    line += 1;
                                }
                                blank(&mut out, bytes[j + 1]);
                            }
                            j += 2;
                        }
                        b'"' => break,
                        c => {
                            if c == b'\n' {
                                line += 1;
                            }
                            blank(&mut out, c);
                            j += 1;
                        }
                    }
                }
                if j < bytes.len() {
                    out.push(b'"');
                    j += 1;
                }
                i = j;
            }
            b'\'' => {
                // Char literal vs lifetime. A lifetime is `'ident` not
                // followed by a closing quote; a char literal is short
                // and closed.
                let is_char = if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                    true
                } else {
                    i + 2 < bytes.len() && bytes[i + 2] == b'\''
                };
                if is_char {
                    out.push(b'\'');
                    let mut j = i + 1;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        if bytes[j] == b'\\' {
                            blank(&mut out, bytes[j]);
                            j += 1;
                            if j < bytes.len() {
                                blank(&mut out, bytes[j]);
                                j += 1;
                            }
                        } else {
                            blank(&mut out, bytes[j]);
                            j += 1;
                        }
                    }
                    if j < bytes.len() {
                        out.push(b'\'');
                        j += 1;
                    }
                    i = j;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            _ => {
                if b == b'\n' {
                    line += 1;
                }
                out.push(b);
                i += 1;
            }
        }
    }

    let text = String::from_utf8(out).expect("stripping preserves UTF-8");
    let mut line_starts = vec![0usize];
    for (idx, c) in text.bytes().enumerate() {
        if c == b'\n' {
            line_starts.push(idx + 1);
        }
    }
    Stripped {
        text,
        line_starts,
        allows,
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

// ---------------------------------------------------------------------------
// Tokenization
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum TokKind {
    Word,
    Punct(u8),
}

#[derive(Debug, Clone, Copy)]
struct Token {
    kind: TokKind,
    start: usize,
    end: usize,
}

fn tokenize(text: &str) -> Vec<Token> {
    let bytes = text.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
        } else if is_ident_byte(b) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Word,
                start,
                end: i,
            });
        } else {
            toks.push(Token {
                kind: TokKind::Punct(b),
                start: i,
                end: i + 1,
            });
            i += 1;
        }
    }
    toks
}

fn word<'a>(text: &'a str, t: &Token) -> &'a str {
    &text[t.start..t.end]
}

/// Skips a balanced group starting at `toks[i]` (which must be the
/// opening delimiter); returns the index just past the closer.
fn skip_group(toks: &[Token], i: usize, open: u8, close: u8) -> usize {
    let mut depth = 0;
    let mut j = i;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct(c) if c == open => depth += 1,
            TokKind::Punct(c) if c == close => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

// ---------------------------------------------------------------------------
// D-rules: per-file determinism scans
// ---------------------------------------------------------------------------

const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_keys",
    "into_values",
];

const AMBIENT_WORDS: [(&str, &str); 6] = [
    ("Instant", "wall-clock time; use `kaas_simtime::now()`"),
    ("SystemTime", "wall-clock time; use `kaas_simtime::now()`"),
    (
        "RandomState",
        "process-seeded hashing; ambient randomness breaks replay",
    ),
    (
        "DefaultHasher",
        "process-seeded hashing; ambient randomness breaks replay",
    ),
    (
        "thread_rng",
        "ambient randomness; use `kaas_simtime::rng` seeded streams",
    ),
    (
        "getrandom",
        "ambient randomness; use `kaas_simtime::rng` seeded streams",
    ),
];

/// Per-file context for the D-rules.
#[derive(Debug, Clone, Copy)]
pub struct FileCtx {
    /// `crates/simtime` implements the time/RNG authority and the
    /// executor's thread-local context: exempt from D2 and D3.
    pub is_simtime: bool,
}

impl FileCtx {
    /// Derives the context from a path (the `simtime` crate is exempt
    /// from D2/D3).
    pub fn from_path(path: &Path) -> Self {
        let p = path.to_string_lossy().replace('\\', "/");
        FileCtx {
            is_simtime: p.contains("crates/simtime/"),
        }
    }
}

/// Runs D1–D3 over one source file.
pub fn scan_determinism(path: &Path, src: &str, ctx: FileCtx) -> Vec<Diagnostic> {
    let stripped = strip_source(src);
    let toks = tokenize(&stripped.text);
    let mut out = Vec::new();

    // Names of allowed (annotated) unordered maps: they must never be
    // iterated anywhere in the file.
    let mut allowed_names: Vec<String> = Vec::new();

    for (ti, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Word {
            continue;
        }
        let w = word(&stripped.text, t);
        let line = stripped.line_of(t.start);

        // --- D1: unordered collections -------------------------------
        if w == "HashMap" || w == "HashSet" {
            if let Some(allow) = stripped.allow_for(line, "unordered") {
                allow.used.set(true);
                if let Some(name) = declared_name_before(&stripped, &toks, ti) {
                    if !allowed_names.contains(&name) {
                        allowed_names.push(name);
                    }
                }
            } else {
                out.push(Diagnostic {
                    file: path.to_path_buf(),
                    line,
                    rule: Rule::D1Unordered,
                    message: format!(
                        "`{w}` iterates in per-process random order and breaks seeded replay; \
                         use `BTreeMap`/`BTreeSet`, or annotate \
                         `// audit:allow(unordered): <why>` and never iterate it"
                    ),
                });
            }
        }

        // --- D2: ambient authority -----------------------------------
        if !ctx.is_simtime {
            let ambient = AMBIENT_WORDS.iter().find(|(bad, _)| *bad == w);
            let is_std_thread = w == "std"
                && toks.get(ti + 1).map(|t| t.kind) == Some(TokKind::Punct(b':'))
                && toks.get(ti + 2).map(|t| t.kind) == Some(TokKind::Punct(b':'))
                && toks
                    .get(ti + 3)
                    .is_some_and(|t| word(&stripped.text, t) == "thread");
            if let Some((bad, why)) = ambient {
                if let Some(allow) = stripped.allow_for(line, "ambient") {
                    allow.used.set(true);
                } else {
                    out.push(Diagnostic {
                        file: path.to_path_buf(),
                        line,
                        rule: Rule::D2Ambient,
                        message: format!("`{bad}`: {why}"),
                    });
                }
            }
            if is_std_thread {
                if let Some(allow) = stripped.allow_for(line, "ambient") {
                    allow.used.set(true);
                } else {
                    out.push(Diagnostic {
                        file: path.to_path_buf(),
                        line,
                        rule: Rule::D2Ambient,
                        message: "`std::thread`: OS threads introduce scheduling nondeterminism; \
                                  the simulation is single-threaded by contract"
                            .into(),
                    });
                }
            }
        }

        // --- D3: mutable static state --------------------------------
        if !ctx.is_simtime {
            let is_static_mut = w == "static"
                && toks
                    .get(ti + 1)
                    .is_some_and(|t| t.kind == TokKind::Word && word(&stripped.text, t) == "mut");
            let is_thread_local = w == "thread_local";
            if is_static_mut || is_thread_local {
                if let Some(allow) = stripped.allow_for(line, "mutable-static") {
                    allow.used.set(true);
                } else {
                    let what = if is_thread_local {
                        "`thread_local!`"
                    } else {
                        "`static mut`"
                    };
                    out.push(Diagnostic {
                        file: path.to_path_buf(),
                        line,
                        rule: Rule::D3MutableStatic,
                        message: format!(
                            "{what}: mutable static state outside `simtime` survives across \
                             simulations and breaks replay isolation"
                        ),
                    });
                }
            }
        }
    }

    // Second pass: annotated unordered maps must never be iterated.
    for name in &allowed_names {
        out.extend(find_iterations(path, &stripped, &toks, name));
    }

    // Annotation hygiene: malformed or unknown-slug annotations.
    for a in &stripped.allows {
        if !a.has_why {
            out.push(Diagnostic {
                file: path.to_path_buf(),
                line: a.line,
                rule: slug_rule(&a.slug).unwrap_or(Rule::D1Unordered),
                message: format!(
                    "malformed annotation: `audit:allow({})` requires a reason — \
                     `// audit:allow({}): <why>`",
                    a.slug, a.slug
                ),
            });
        } else if slug_rule(&a.slug).is_none() {
            out.push(Diagnostic {
                file: path.to_path_buf(),
                line: a.line,
                rule: Rule::D1Unordered,
                message: format!(
                    "unknown audit:allow slug `{}` (expected one of: unordered, ambient, \
                     mutable-static)",
                    a.slug
                ),
            });
        } else if !a.used.get() {
            out.push(Diagnostic {
                file: path.to_path_buf(),
                line: a.line,
                rule: slug_rule(&a.slug).unwrap(),
                message: format!(
                    "stale annotation: `audit:allow({})` suppresses nothing on the line it covers",
                    a.slug
                ),
            });
        }
    }

    out
}

fn slug_rule(slug: &str) -> Option<Rule> {
    match slug {
        "unordered" => Some(Rule::D1Unordered),
        "ambient" => Some(Rule::D2Ambient),
        "mutable-static" => Some(Rule::D3MutableStatic),
        _ => None,
    }
}

/// The binding name declared on the same line as `toks[ti]` (a
/// `HashMap`/`HashSet` token): `name: HashMap<..>` or `let name = ..`.
fn declared_name_before(stripped: &Stripped, toks: &[Token], ti: usize) -> Option<String> {
    let line = stripped.line_of(toks[ti].start);
    // Walk backwards over tokens on the same line.
    let mut j = ti;
    while j > 0 && stripped.line_of(toks[j - 1].start) == line {
        j -= 1;
    }
    let line_toks = &toks[j..ti];
    // `let [mut] name` anywhere before the token.
    for (k, t) in line_toks.iter().enumerate() {
        if t.kind == TokKind::Word && word(&stripped.text, t) == "let" {
            let mut n = k + 1;
            if line_toks
                .get(n)
                .is_some_and(|t| word(&stripped.text, t) == "mut")
            {
                n += 1;
            }
            if let Some(nt) = line_toks.get(n) {
                if nt.kind == TokKind::Word {
                    return Some(word(&stripped.text, nt).to_string());
                }
            }
        }
    }
    // `name :` immediately before the type (struct field or let-with-type);
    // a `::` path separator does not count.
    for k in 0..line_toks.len().saturating_sub(1) {
        if line_toks[k].kind == TokKind::Word
            && line_toks[k + 1].kind == TokKind::Punct(b':')
            && line_toks.get(k + 2).map(|t| t.kind) != Some(TokKind::Punct(b':'))
        {
            let name = word(&stripped.text, &line_toks[k]);
            if !matches!(name, "pub" | "crate" | "super" | "self") {
                return Some(name.to_string());
            }
        }
    }
    None
}

/// Flags iteration of the annotated map `name`: method chains reaching
/// an iterator method, or `for … in` loops over it.
fn find_iterations(
    path: &Path,
    stripped: &Stripped,
    toks: &[Token],
    name: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (ti, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Word || word(&stripped.text, t) != name {
            continue;
        }
        // Method-chain walk: name[.method(args)]* — flag iterator methods.
        let mut j = ti + 1;
        while j + 1 < toks.len() && toks[j].kind == TokKind::Punct(b'.') {
            let m = &toks[j + 1];
            if m.kind != TokKind::Word {
                break;
            }
            let mname = word(&stripped.text, m);
            if ITER_METHODS.contains(&mname) {
                out.push(Diagnostic {
                    file: path.to_path_buf(),
                    line: stripped.line_of(m.start),
                    rule: Rule::D1Unordered,
                    message: format!(
                        "annotated unordered map `{name}` is iterated via `.{mname}()` — \
                         the audit:allow(unordered) contract is keyed access only"
                    ),
                });
                break;
            }
            j += 2;
            if toks.get(j).map(|t| t.kind) == Some(TokKind::Punct(b'(')) {
                j = skip_group(toks, j, b'(', b')');
            }
        }
        // `for pat in [&[mut]] path.to.name` loops.
        if ti >= 1 {
            let mut k = ti;
            // Walk back over a dotted path: (word .)* name.
            while k >= 2
                && toks[k - 1].kind == TokKind::Punct(b'.')
                && toks[k - 2].kind == TokKind::Word
            {
                k -= 2;
            }
            let mut p = k;
            while p >= 1 {
                match toks[p - 1].kind {
                    TokKind::Punct(b'&') => p -= 1,
                    TokKind::Word if word(&stripped.text, &toks[p - 1]) == "mut" => p -= 1,
                    _ => break,
                }
            }
            if p >= 1
                && toks[p - 1].kind == TokKind::Word
                && word(&stripped.text, &toks[p - 1]) == "in"
            {
                out.push(Diagnostic {
                    file: path.to_path_buf(),
                    line: stripped.line_of(t.start),
                    rule: Rule::D1Unordered,
                    message: format!(
                        "annotated unordered map `{name}` is iterated by a `for` loop — \
                         the audit:allow(unordered) contract is keyed access only"
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R1: InvokeError exhaustiveness
// ---------------------------------------------------------------------------

/// CamelCase → kebab-case (`DeviceOom` → `device-oom`).
pub fn kebab(variant: &str) -> String {
    let mut out = String::new();
    for (i, c) in variant.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('-');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Cross-checks the `InvokeError` enum against its `KINDS` table and
/// the failure exhaustiveness test.
pub fn check_error_kinds(
    protocol_path: &Path,
    protocol_src: &str,
    test_path: &Path,
    test_src: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let stripped = strip_source(protocol_src);
    let toks = tokenize(&stripped.text);

    // Locate `enum InvokeError { ... }` and collect variants.
    let mut variants: Vec<(String, usize)> = Vec::new();
    let mut kinds: Vec<String> = Vec::new();
    let mut kinds_line = 0usize;
    let mut i = 0;
    while i < toks.len() {
        let is_enum = toks[i].kind == TokKind::Word
            && word(&stripped.text, &toks[i]) == "enum"
            && toks
                .get(i + 1)
                .is_some_and(|t| word(&stripped.text, t) == "InvokeError");
        if is_enum {
            let mut j = i + 2;
            while j < toks.len() && toks[j].kind != TokKind::Punct(b'{') {
                j += 1;
            }
            let end = skip_group(&toks, j, b'{', b'}');
            let mut k = j + 1;
            let mut expect_variant = true;
            while k < end.saturating_sub(1) {
                match toks[k].kind {
                    TokKind::Punct(b'#') => {
                        // Attribute: skip `#[ ... ]`.
                        if toks.get(k + 1).map(|t| t.kind) == Some(TokKind::Punct(b'[')) {
                            k = skip_group(&toks, k + 1, b'[', b']');
                        } else {
                            k += 1;
                        }
                    }
                    TokKind::Punct(b'(') => k = skip_group(&toks, k, b'(', b')'),
                    TokKind::Punct(b',') => {
                        expect_variant = true;
                        k += 1;
                    }
                    TokKind::Word if expect_variant => {
                        let name = word(&stripped.text, &toks[k]).to_string();
                        variants.push((name, stripped.line_of(toks[k].start)));
                        expect_variant = false;
                        k += 1;
                    }
                    _ => k += 1,
                }
            }
            i = end;
            continue;
        }
        let is_kinds =
            toks[i].kind == TokKind::Word && word(&stripped.text, &toks[i]) == "KINDS" && {
                // Declaration site, not a use: `KINDS : [ ... ] = [ ... ]`.
                toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Punct(b':'))
            };
        if is_kinds {
            kinds_line = stripped.line_of(toks[i].start);
            // Find the `= [` initializer and collect string literals.
            let mut j = i;
            while j < toks.len() && toks[j].kind != TokKind::Punct(b'=') {
                j += 1;
            }
            while j < toks.len() && toks[j].kind != TokKind::Punct(b'[') {
                j += 1;
            }
            let end = skip_group(&toks, j, b'[', b']');
            let seg_start = toks[j].start;
            let seg_end = toks.get(end.saturating_sub(1)).map_or(seg_start, |t| t.end);
            kinds.extend(string_literals(
                &stripped.text,
                protocol_src,
                seg_start,
                seg_end,
            ));
            i = end;
            continue;
        }
        i += 1;
    }

    if variants.is_empty() {
        out.push(Diagnostic {
            file: protocol_path.to_path_buf(),
            line: 1,
            rule: Rule::R1ErrorKinds,
            message: "could not find `enum InvokeError`".into(),
        });
        return out;
    }

    if variants.len() != kinds.len() {
        out.push(Diagnostic {
            file: protocol_path.to_path_buf(),
            line: kinds_line.max(1),
            rule: Rule::R1ErrorKinds,
            message: format!(
                "`InvokeError::KINDS` lists {} labels but the enum declares {} variants",
                kinds.len(),
                variants.len()
            ),
        });
    }
    for (idx, (name, line)) in variants.iter().enumerate() {
        let expect = kebab(name);
        match kinds.get(idx) {
            Some(k) if *k == expect => {}
            Some(k) => out.push(Diagnostic {
                file: protocol_path.to_path_buf(),
                line: *line,
                rule: Rule::R1ErrorKinds,
                message: format!(
                    "KINDS[{idx}] is \"{k}\" but variant `{name}` expects \"{expect}\" \
                     (declaration order)"
                ),
            }),
            None if variants.len() == kinds.len() => unreachable!(),
            None => {}
        }
    }

    // Every variant must be exercised by the failure exhaustiveness test
    // (by variant name or by its kind label).
    let test_stripped = strip_source(test_src);
    for (name, line) in &variants {
        let label = kebab(name);
        let by_name = test_stripped.text.contains(&format!("InvokeError::{name}"));
        let by_label = test_src.contains(&format!("\"{label}\""));
        if !by_name && !by_label {
            out.push(Diagnostic {
                file: protocol_path.to_path_buf(),
                line: *line,
                rule: Rule::R1ErrorKinds,
                message: format!(
                    "variant `{name}` (\"{label}\") is not exercised by {}",
                    test_path.display()
                ),
            });
        }
    }
    out
}

/// String literal contents between `start..end` (offsets into the
/// stripped text), read back from the original source.
fn string_literals(stripped_text: &str, original: &str, start: usize, end: usize) -> Vec<String> {
    let bytes = stripped_text.as_bytes();
    let mut out = Vec::new();
    let mut i = start;
    while i < end.min(bytes.len()) {
        if bytes[i] == b'"' {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != b'"' {
                j += 1;
            }
            out.push(original[i + 1..j].to_string());
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R2: metric inventory
// ---------------------------------------------------------------------------

const EMIT_METHODS: [&str; 4] = ["inc", "add", "observe", "set_gauge"];

/// One declared metric name pattern from `metrics/INVENTORY`.
#[derive(Debug, Clone)]
pub struct InventoryEntry {
    /// The name pattern; `{...}` holes match any non-empty segment.
    pub pattern: String,
    /// 1-based line in the INVENTORY file.
    pub line: usize,
    /// `~`-prefixed entries: the name is computed at the call site (no
    /// single literal), so the static never-emitted check skips them;
    /// the runtime sanitizer still matches against them.
    pub computed: bool,
}

/// Parses the INVENTORY file: one metric name pattern per line,
/// `#`-comments and blank lines ignored, `~` prefix marking
/// computed-name entries.
pub fn parse_inventory(src: &str) -> Vec<InventoryEntry> {
    src.lines()
        .enumerate()
        .filter_map(|(i, l)| {
            let t = l.trim();
            if t.is_empty() || t.starts_with('#') {
                return None;
            }
            let (pattern, computed) = match t.strip_prefix('~') {
                Some(p) => (p.trim(), true),
                None => (t, false),
            };
            Some(InventoryEntry {
                pattern: pattern.to_string(),
                line: i + 1,
                computed,
            })
        })
        .collect()
}

/// Collects every metric name pattern emitted through the registry in
/// `src` (literal first arguments of `.inc/.add/.observe/.set_gauge`,
/// including `&format!("...")` patterns, verbatim), skipping
/// `#[cfg(test)] mod` blocks. Returns (pattern, line).
pub fn emitted_metrics(src: &str) -> Vec<(String, usize)> {
    let stripped = strip_source(src);
    let toks = tokenize(&stripped.text);
    let excluded = cfg_test_ranges(&stripped.text, &toks);
    let mut out = Vec::new();

    for (ti, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct(b'.') {
            continue;
        }
        let Some(m) = toks.get(ti + 1) else { continue };
        if m.kind != TokKind::Word || !EMIT_METHODS.contains(&word(&stripped.text, m)) {
            continue;
        }
        if toks.get(ti + 2).map(|t| t.kind) != Some(TokKind::Punct(b'(')) {
            continue;
        }
        if excluded.iter().any(|(s, e)| t.start >= *s && t.start < *e) {
            continue;
        }
        // First argument, char-wise from just past the '('.
        let mut k = ti + 3;
        if toks.get(k).map(|t| t.kind) == Some(TokKind::Punct(b'&')) {
            k += 1;
        }
        let Some(arg) = toks.get(k) else { continue };
        let pattern = match arg.kind {
            TokKind::Punct(b'"') => {
                // String literal: content from the original source.
                string_literals(&stripped.text, src, arg.start, usize::MAX)
                    .into_iter()
                    .next()
            }
            TokKind::Word if word(&stripped.text, arg) == "format" => {
                // format!("..."): find the macro's literal.
                let mut q = k + 1;
                while q < toks.len() {
                    match toks[q].kind {
                        TokKind::Punct(b'"') => break,
                        TokKind::Punct(b')') => {
                            q = toks.len();
                            break;
                        }
                        _ => q += 1,
                    }
                }
                toks.get(q).and_then(|qt| {
                    string_literals(&stripped.text, src, qt.start, usize::MAX)
                        .into_iter()
                        .next()
                })
            }
            _ => None,
        };
        if let Some(p) = pattern {
            out.push((p, stripped.line_of(t.start)));
        }
    }
    out
}

/// Byte ranges of `#[cfg(test)] mod … { … }` blocks in the stripped text.
fn cfg_test_ranges(text: &str, toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].kind == TokKind::Punct(b'#')
            && toks[i + 1].kind == TokKind::Punct(b'[')
            && word_is(text, toks.get(i + 2), "cfg")
            && toks[i + 3].kind == TokKind::Punct(b'(')
            && word_is(text, toks.get(i + 4), "test")
            && toks[i + 5].kind == TokKind::Punct(b')')
            && toks[i + 6].kind == TokKind::Punct(b']');
        if is_cfg_test {
            // Skip any further attributes, then expect `mod name {`.
            let mut j = i + 7;
            while toks.get(j).map(|t| t.kind) == Some(TokKind::Punct(b'#'))
                && toks.get(j + 1).map(|t| t.kind) == Some(TokKind::Punct(b'['))
            {
                j = skip_group(toks, j + 1, b'[', b']');
            }
            if word_is(text, toks.get(j), "mod") {
                let mut b = j;
                while b < toks.len() && toks[b].kind != TokKind::Punct(b'{') {
                    b += 1;
                }
                let end = skip_group(toks, b, b'{', b'}');
                let end_off = toks
                    .get(end.saturating_sub(1))
                    .map_or(text.len(), |t| t.end);
                out.push((toks[i].start, end_off));
                i = end;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn word_is(text: &str, t: Option<&Token>, expect: &str) -> bool {
    t.is_some_and(|t| t.kind == TokKind::Word && word(text, t) == expect)
}

/// Cross-checks emitted metric patterns against the declared inventory,
/// both directions.
pub fn check_metric_inventory(
    inventory_path: &Path,
    inventory_src: &str,
    files: &[(PathBuf, String)],
) -> Vec<Diagnostic> {
    let inventory = parse_inventory(inventory_src);
    let mut used: Vec<bool> = inventory.iter().map(|e| e.computed).collect();
    let mut out = Vec::new();

    for (path, src) in files {
        for (pattern, line) in emitted_metrics(src) {
            match inventory.iter().position(|e| e.pattern == pattern) {
                Some(idx) => used[idx] = true,
                None => out.push(Diagnostic {
                    file: path.clone(),
                    line,
                    rule: Rule::R2MetricInventory,
                    message: format!(
                        "metric `{pattern}` is not declared in {} — typo'd names record \
                         nothing silently",
                        inventory_path.display()
                    ),
                }),
            }
        }
    }
    for (idx, entry) in inventory.iter().enumerate() {
        if !used[idx] {
            out.push(Diagnostic {
                file: inventory_path.to_path_buf(),
                line: entry.line,
                rule: Rule::R2MetricInventory,
                message: format!(
                    "declared metric `{}` is never emitted (stale entry?)",
                    entry.pattern
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------------

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the full audit over a workspace root.
///
/// # Errors
///
/// Propagates I/O failures reading the tree.
pub fn audit_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    let mut files = Vec::new();
    for krate in DETERMINISTIC_CRATES {
        collect_rs_files(&root.join("crates").join(krate), &mut files)?;
    }
    // The facade crate's own sources obey the same rules.
    collect_rs_files(&root.join("src"), &mut files)?;
    files.sort();

    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let ctx = FileCtx::from_path(path);
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        report
            .diagnostics
            .extend(scan_determinism(&rel, &src, ctx).into_iter().map(|mut d| {
                d.file = rel.clone();
                d
            }));
        report.files_scanned += 1;
    }

    // R1: protocol enum vs KINDS vs the failure exhaustiveness test.
    let protocol = root.join("crates/core/src/protocol.rs");
    let failure_test = root.join("tests/failure_and_errors.rs");
    if protocol.is_file() && failure_test.is_file() {
        report.diagnostics.extend(check_error_kinds(
            Path::new("crates/core/src/protocol.rs"),
            &std::fs::read_to_string(&protocol)?,
            Path::new("tests/failure_and_errors.rs"),
            &std::fs::read_to_string(&failure_test)?,
        ));
    } else {
        report.diagnostics.push(Diagnostic {
            file: PathBuf::from("crates/core/src/protocol.rs"),
            line: 1,
            rule: Rule::R1ErrorKinds,
            message: "protocol.rs or tests/failure_and_errors.rs missing".into(),
        });
    }

    // R2: emitted metric names vs the declared inventory.
    let inventory_path = root.join("crates/core/src/metrics/INVENTORY");
    match std::fs::read_to_string(&inventory_path) {
        Ok(inventory_src) => {
            let mut core_files = Vec::new();
            collect_rs_files(&root.join("crates/core/src"), &mut core_files)?;
            let mut sources = Vec::new();
            for f in core_files {
                let rel = f.strip_prefix(root).unwrap_or(&f).to_path_buf();
                sources.push((rel, std::fs::read_to_string(&f)?));
            }
            report.diagnostics.extend(check_metric_inventory(
                Path::new("crates/core/src/metrics/INVENTORY"),
                &inventory_src,
                &sources,
            ));
        }
        Err(_) => report.diagnostics.push(Diagnostic {
            file: PathBuf::from("crates/core/src/metrics/INVENTORY"),
            line: 1,
            rule: Rule::R2MetricInventory,
            message: "metrics INVENTORY file missing".into(),
        }),
    }

    report.sort();
    Ok(report)
}

/// Runs only the per-file D-rules over explicit files (fixture mode).
///
/// # Errors
///
/// Propagates I/O failures reading the files.
pub fn audit_files(paths: &[PathBuf]) -> io::Result<Report> {
    let mut report = Report::default();
    for path in paths {
        let src = std::fs::read_to_string(path)?;
        report
            .diagnostics
            .extend(scan_determinism(path, &src, FileCtx::from_path(path)));
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

// ---------------------------------------------------------------------------
// Runtime half: inventory pattern matching for the sim-sanitizer
// ---------------------------------------------------------------------------

/// Whether a concrete metric name matches *some* pattern in the given
/// INVENTORY source. Used by the runtime sanitizer to validate live
/// registry contents against the same file the static pass enforces.
pub fn inventory_matches(inventory_src: &str, name: &str) -> bool {
    parse_inventory(inventory_src)
        .iter()
        .any(|e| pattern_matches(&e.pattern, name))
}

/// Whether a concrete metric name matches an inventory pattern, where
/// `{...}` interpolations match any non-empty segment. Used by the
/// runtime sanitizer to validate live registry contents against the
/// same INVENTORY the static pass enforces.
pub fn pattern_matches(pattern: &str, name: &str) -> bool {
    // Split the pattern into literal segments around `{...}` holes:
    // `a.{x}.b` → ["a.", ".b"]. k holes yield k+1 literals (possibly
    // empty at the edges).
    let mut segs: Vec<&str> = Vec::new();
    let mut rest = pattern;
    loop {
        match rest.find('{') {
            Some(open) => {
                segs.push(&rest[..open]);
                match rest[open..].find('}') {
                    Some(close) => rest = &rest[open + close + 1..],
                    // Unbalanced brace: treat the pattern as a literal.
                    None => return pattern == name,
                }
            }
            None => {
                segs.push(rest);
                break;
            }
        }
    }
    // Greedy left-to-right match; every hole must be non-empty.
    let mut pos = 0usize;
    let last = segs.len() - 1;
    for (idx, seg) in segs.iter().enumerate() {
        if idx == 0 {
            if !name.starts_with(seg) {
                return false;
            }
            pos = seg.len();
        } else {
            // A hole precedes this literal and must consume ≥ 1 char.
            if pos >= name.len() {
                return false;
            }
            if seg.is_empty() {
                if idx == last {
                    // Trailing hole swallows the rest of the name.
                    return true;
                }
                pos += 1;
                continue;
            }
            match name[pos + 1..].find(seg) {
                Some(at) => pos = pos + 1 + at + seg.len(),
                None => return false,
            }
        }
    }
    pos == name.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_json_is_stable_and_escaped() {
        let d = Diagnostic {
            file: PathBuf::from("crates/core/src/x.rs"),
            line: 7,
            rule: Rule::D1Unordered,
            message: "a \"quoted\"\nthing".to_string(),
        };
        assert_eq!(
            d.to_json(),
            "{\"file\":\"crates/core/src/x.rs\",\"line\":7,\"rule\":\"D1\",\
             \"slug\":\"unordered\",\"message\":\"a \\\"quoted\\\"\\nthing\"}"
        );
        let r = Diagnostic {
            file: PathBuf::from("f.rs"),
            line: 1,
            rule: Rule::R1ErrorKinds,
            message: String::new(),
        };
        assert!(r.to_json().contains("\"slug\":null"));
    }

    fn scan(src: &str) -> Vec<Diagnostic> {
        scan_determinism(
            Path::new("crates/core/src/x.rs"),
            src,
            FileCtx { is_simtime: false },
        )
    }

    #[test]
    fn hashmap_without_annotation_fires_d1() {
        let d = scan("pub fn f() { let m: std::collections::HashMap<u32,u32> = Default::default(); m.len(); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::D1Unordered);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn annotated_hashmap_is_allowed() {
        let src =
            "struct S {\n    m: HashMap<u32, u32>, // audit:allow(unordered): keyed only\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn annotated_map_iterated_fires_d1() {
        let src = "struct S {\n    m: HashMap<u32, u32>, // audit:allow(unordered): keyed only\n}\nimpl S { fn f(&self) -> u32 { self.m.values().sum() } }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("values"));
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn annotated_map_for_loop_fires_d1() {
        let src = "struct S {\n    m: HashMap<u32, u32>, // audit:allow(unordered): keyed only\n}\nimpl S { fn f(&self) { for _ in &self.m {} } }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("for"));
    }

    #[test]
    fn multiline_chain_is_followed() {
        let src = "struct S {\n    m: HashMap<u32, u32>, // audit:allow(unordered): keyed only\n}\nimpl S { fn f(&self) -> usize { self.m\n  .borrow()\n  .keys()\n  .count() } }\n";
        let d = scan(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("keys"));
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let src = "// HashMap Instant::now SystemTime\nfn f() -> &'static str { \"HashMap thread_local\" }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn instant_fires_d2_outside_simtime_only() {
        let src = "fn f() { let _ = std::time::Instant::now(); }";
        let d = scan(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::D2Ambient);
        let exempt = scan_determinism(
            Path::new("crates/simtime/src/x.rs"),
            src,
            FileCtx { is_simtime: true },
        );
        assert!(exempt.is_empty());
    }

    #[test]
    fn std_thread_fires_d2() {
        let d = scan("fn f() { std::thread::yield_now(); }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::D2Ambient);
    }

    #[test]
    fn static_mut_and_thread_local_fire_d3() {
        let d = scan("static mut X: u32 = 0;\nthread_local! { static Y: u32 = 0; }\n");
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|d| d.rule == Rule::D3MutableStatic));
    }

    #[test]
    fn malformed_annotation_fires() {
        let src = "struct S { m: HashMap<u32,u32> } // audit:allow(unordered)\n";
        let d = scan(src);
        // The missing-why annotation does not suppress, so both the D1
        // finding and the malformed-annotation finding fire.
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.message.contains("requires a reason")));
    }

    #[test]
    fn stale_annotation_fires() {
        let src = "fn f() {} // audit:allow(unordered): nothing here\n";
        let d = scan(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("stale"));
    }

    #[test]
    fn standalone_annotation_covers_next_line() {
        let src =
            "struct S {\n    // audit:allow(unordered): keyed only\n    m: HashMap<u32, u32>,\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn standalone_annotation_does_not_cover_its_own_line_or_beyond() {
        // The annotation covers only line 2; the map on line 3 fires.
        let src = "// audit:allow(unordered): too far away\nfn f() {}\nstruct S { m: HashMap<u32, u32> }\n";
        let d = scan(src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.message.contains("stale")));
        assert!(d.iter().any(|d| d.line == 3));
    }

    #[test]
    fn kebab_case_conversion() {
        assert_eq!(kebab("DeviceOom"), "device-oom");
        assert_eq!(kebab("TimedOut"), "timed-out");
        assert_eq!(kebab("Disconnected"), "disconnected");
        assert_eq!(kebab("UnknownKernel"), "unknown-kernel");
    }

    #[test]
    fn r1_detects_count_mismatch() {
        let proto = "pub enum InvokeError { A(String), BadThing }\nimpl InvokeError { pub const KINDS: [&'static str; 1] = [\"a\"]; }\n";
        let test = "fn f() { let _ = (InvokeError::A(String::new()), InvokeError::BadThing); }";
        let d = check_error_kinds(Path::new("p.rs"), proto, Path::new("t.rs"), test);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("1 labels"));
    }

    #[test]
    fn r1_clean_when_consistent() {
        let proto = "pub enum InvokeError { DeviceOom(String), TimedOut }\nimpl InvokeError { pub const KINDS: [&'static str; 2] = [\"device-oom\", \"timed-out\"]; }\n";
        let test = "fn f() { let _ = \"device-oom\"; let _ = InvokeError::TimedOut; }";
        let d = check_error_kinds(Path::new("p.rs"), proto, Path::new("t.rs"), test);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn r2_flags_undeclared_and_stale_metrics() {
        let inv = "# comment\ninvocations\nnever.emitted\n";
        let src = "fn f(m: &M) { m.inc(\"invocations\"); m.inc(\"typo.metric\"); }";
        let d = check_metric_inventory(
            Path::new("INVENTORY"),
            inv,
            &[(PathBuf::from("x.rs"), src.to_string())],
        );
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.message.contains("typo.metric")));
        assert!(d.iter().any(|d| d.message.contains("never.emitted")));
    }

    #[test]
    fn r2_normalizes_format_patterns_verbatim() {
        let inv = "errors.{}\nfaults.{kind}\n";
        let src = "fn f(m: &M, e: E) { m.inc(&format!(\"errors.{}\", e.kind())); m.inc(&format!(\"faults.{kind}\")); }";
        let d = check_metric_inventory(
            Path::new("INVENTORY"),
            inv,
            &[(PathBuf::from("x.rs"), src.to_string())],
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn r2_skips_cfg_test_modules() {
        let inv = "real.metric\n";
        let src = "fn f(m: &M) { m.inc(\"real.metric\"); }\n#[cfg(test)]\nmod tests { fn g(m: &M) { m.inc(\"adhoc\"); } }\n";
        let d = check_metric_inventory(
            Path::new("INVENTORY"),
            inv,
            &[(PathBuf::from("x.rs"), src.to_string())],
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn pattern_matching_for_runtime_checks() {
        assert!(pattern_matches("invocations", "invocations"));
        assert!(!pattern_matches("invocations", "invocation"));
        assert!(pattern_matches("errors.{}", "errors.timed-out"));
        assert!(!pattern_matches("errors.{}", "errors."));
        assert!(pattern_matches("{}.utilization", "device0.utilization"));
        assert!(pattern_matches(
            "breaker.{device}.state",
            "breaker.device3.state"
        ));
        assert!(pattern_matches("{name}.{k}", "latency.server.matmul"));
        assert!(!pattern_matches("{name}.{k}", "invocations"));
    }

    #[test]
    fn raw_strings_and_chars_are_stripped() {
        let src = "fn f() { let _ = r#\"HashMap Instant\"#; let c = 'I'; let _lt: &'static str = \"x\"; }";
        assert!(scan(src).is_empty());
    }
}
