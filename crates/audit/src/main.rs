//! `kaas-audit` CLI: runs the workspace determinism/resource-safety
//! lint and exits nonzero on any finding.
//!
//! ```text
//! kaas-audit [ROOT]                  # full workspace audit
//! kaas-audit --files <f.rs>...       # D1–D3 only, on explicit files
//! kaas-audit --r1 <protocol> <test>  # R1 only, on explicit files
//! kaas-audit --r2 <INVENTORY> <f.rs>...  # R2 only
//! ```
//!
//! Diagnostics print as `path:line: [RULE] message`; the last line is a
//! machine-readable JSON summary. With `--format=json` (any position)
//! each finding prints as one JSON object instead — stable field names
//! `file`, `line`, `rule`, `slug`, `message` — for CI annotation.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use kaas_audit::{audit_files, audit_workspace, check_error_kinds, check_metric_inventory, Report};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
}

fn finish(report: Report, format: Format) -> ExitCode {
    for d in &report.diagnostics {
        match format {
            Format::Text => println!("{d}"),
            Format::Json => println!("{}", d.to_json()),
        }
    }
    println!("kaas-audit: {}", report.summary_json());
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("kaas-audit: {msg}");
    ExitCode::from(2)
}

/// The workspace root: an explicit argument, else the nearest ancestor
/// of the manifest dir (or cwd) containing a `[workspace]` Cargo.toml.
fn find_root(explicit: Option<&str>) -> Option<PathBuf> {
    if let Some(p) = explicit {
        return Some(PathBuf::from(p));
    }
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|_| std::env::current_dir())
        .ok()?;
    let mut dir = start.as_path();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        dir = dir.parent()?;
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = Format::Text;
    args.retain(|a| {
        if a == "--format=json" {
            format = Format::Json;
            false
        } else {
            true
        }
    });
    match args.first().map(String::as_str) {
        Some("--files") => {
            let paths: Vec<PathBuf> = args[1..].iter().map(PathBuf::from).collect();
            if paths.is_empty() {
                return fail("--files requires at least one path");
            }
            match audit_files(&paths) {
                Ok(r) => finish(r, format),
                Err(e) => fail(&format!("io error: {e}")),
            }
        }
        Some("--r1") => {
            let [proto, test] = &args[1..] else {
                return fail("--r1 requires <protocol.rs> <test.rs>");
            };
            let (Ok(ps), Ok(ts)) = (
                std::fs::read_to_string(proto),
                std::fs::read_to_string(test),
            ) else {
                return fail("could not read --r1 inputs");
            };
            finish(
                Report {
                    diagnostics: check_error_kinds(Path::new(proto), &ps, Path::new(test), &ts),
                    files_scanned: 2,
                },
                format,
            )
        }
        Some("--r2") => {
            let Some((inv, files)) = args[1..].split_first() else {
                return fail("--r2 requires <INVENTORY> <file.rs>...");
            };
            let Ok(inv_src) = std::fs::read_to_string(inv) else {
                return fail("could not read inventory");
            };
            let mut sources = Vec::new();
            for f in files {
                match std::fs::read_to_string(f) {
                    Ok(s) => sources.push((PathBuf::from(f), s)),
                    Err(e) => return fail(&format!("could not read {f}: {e}")),
                }
            }
            finish(
                Report {
                    diagnostics: check_metric_inventory(Path::new(inv), &inv_src, &sources),
                    files_scanned: sources.len(),
                },
                format,
            )
        }
        Some(flag) if flag.starts_with("--") => fail(&format!("unknown flag {flag}")),
        root => {
            let Some(root) = find_root(root) else {
                return fail("could not locate the workspace root");
            };
            match audit_workspace(&root) {
                Ok(r) => finish(r, format),
                Err(e) => fail(&format!("io error: {e}")),
            }
        }
    }
}
