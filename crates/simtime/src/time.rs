//! Virtual time: [`SimTime`] instants measured in nanoseconds since the
//! start of a simulation, paired with [`std::time::Duration`] spans.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant on a simulation's virtual clock.
///
/// `SimTime` is a monotonically non-decreasing count of nanoseconds since
/// the simulation started. It is `Copy`, totally ordered, and supports
/// arithmetic with [`Duration`].
///
/// # Examples
///
/// ```
/// use kaas_simtime::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// assert_eq!(t - SimTime::ZERO, Duration::from_millis(5));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Creates an instant from fractional seconds since simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "invalid SimTime seconds: {secs}"
        );
        SimTime((secs * 1e9).round() as u64)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since an earlier instant, saturating to zero if
    /// `earlier` is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(duration_to_nanos(d)))
    }

    /// Subtracts a duration, saturating at [`SimTime::ZERO`].
    pub fn saturating_sub(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(duration_to_nanos(d)))
    }
}

fn duration_to_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(
            self.0
                .checked_add(duration_to_nanos(rhs))
                .expect("SimTime overflow"),
        )
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.9}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn add_duration() {
        let t = SimTime::ZERO + Duration::from_micros(3);
        assert_eq!(t.as_nanos(), 3_000);
    }

    #[test]
    fn add_assign() {
        let mut t = SimTime::from_secs(1);
        t += Duration::from_secs(2);
        assert_eq!(t, SimTime::from_secs(3));
    }

    #[test]
    fn sub_gives_duration() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(2);
        assert_eq!(a - b, Duration::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_roundtrip() {
        let t = SimTime::from_secs_f64(1.5);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(
            SimTime::MAX.saturating_add(Duration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        assert_eq!(
            SimTime::from_secs(1).saturating_sub(Duration::from_secs(2)),
            SimTime::ZERO
        );
        assert_eq!(
            SimTime::from_secs(3).saturating_sub(Duration::from_secs(1)),
            SimTime::from_secs(2)
        );
    }

    #[test]
    fn display_formats_seconds() {
        let t = SimTime::from_secs_f64(0.25);
        assert_eq!(t.to_string(), "0.250000s");
    }
}
