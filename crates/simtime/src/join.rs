//! [`JoinHandle`]: awaiting the output of a spawned task.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Shared completion state between a spawned task and its [`JoinHandle`].
pub(crate) struct JoinState<T> {
    result: Option<T>,
    finished: bool,
    waker: Option<Waker>,
}

impl<T> JoinState<T> {
    pub(crate) fn new() -> Self {
        JoinState {
            result: None,
            finished: false,
            waker: None,
        }
    }

    pub(crate) fn complete(state: &Rc<RefCell<Self>>, value: T) {
        let waker = {
            let mut s = state.borrow_mut();
            s.result = Some(value);
            s.finished = true;
            s.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// Owned permission to await a spawned task's output.
///
/// Returned by [`crate::spawn`] and [`crate::Handle::spawn`]. Unlike most
/// runtimes, dropping a `JoinHandle` does *not* cancel the task — in a
/// simulation every spawned process keeps running unless the whole
/// simulation ends.
///
/// # Examples
///
/// ```
/// use kaas_simtime::{Simulation, spawn};
///
/// let mut sim = Simulation::new();
/// let out = sim.block_on(async {
///     let h = spawn(async { 2 + 2 });
///     h.await
/// });
/// assert_eq!(out, 4);
/// ```
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl<T> JoinHandle<T> {
    pub(crate) fn new(state: Rc<RefCell<JoinState<T>>>) -> Self {
        JoinHandle { state }
    }

    /// Whether the task has run to completion.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().finished
    }

    /// Takes the output if the task has completed and the output has not
    /// been taken yet (by `await` or a previous `try_take`).
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    /// # Panics
    ///
    /// Panics if awaited again after the output was already taken.
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        if s.finished {
            match s.result.take() {
                Some(v) => Poll::Ready(v),
                None => panic!("JoinHandle output already taken"),
            }
        } else {
            s.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{sleep, spawn, Simulation};
    use std::time::Duration;

    #[test]
    fn try_take_before_completion_is_none() {
        let mut sim = Simulation::new();
        let h = sim.spawn(async {
            sleep(Duration::from_secs(1)).await;
            5
        });
        assert!(!h.is_finished());
        assert!(h.try_take().is_none());
        sim.run();
        assert!(h.is_finished());
        assert_eq!(h.try_take(), Some(5));
        assert_eq!(h.try_take(), None);
    }

    #[test]
    fn awaiting_finished_handle_is_immediate() {
        let mut sim = Simulation::new();
        let out = sim.block_on(async {
            let h = spawn(async { "done" });
            // Let the child run first.
            sleep(Duration::from_secs(1)).await;
            assert!(h.is_finished());
            h.await
        });
        assert_eq!(out, "done");
    }

    #[test]
    fn join_wakes_waiter() {
        let mut sim = Simulation::new();
        let out = sim.block_on(async {
            let h = spawn(async {
                sleep(Duration::from_secs(2)).await;
                99
            });
            h.await
        });
        assert_eq!(out, 99);
        assert_eq!(sim.now().as_secs_f64(), 2.0);
    }
}
