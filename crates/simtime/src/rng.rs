//! Deterministic random-number streams for reproducible simulations.
//!
//! [`DetRng`] is a self-contained xoshiro256++ generator: the workspace
//! carries no external RNG dependency, so builds are reproducible and
//! fully offline. The API mirrors the common `rand` idioms
//! ([`gen`](DetRng::gen), [`gen_range`](DetRng::gen_range),
//! [`gen_bool`](DetRng::gen_bool)) to keep call sites natural.

/// The RNG used throughout the workspace: a seedable, portable
/// xoshiro256++ generator with SplitMix64 seed expansion.
///
/// Identical seeds produce identical sequences on every platform, which
/// is what makes whole-simulation runs replayable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

/// One step of SplitMix64 — used to expand a 64-bit seed into the
/// generator's 256-bit state and to mix stream ids.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that [`DetRng::gen`] can draw uniformly.
pub trait Sample {
    /// Draws one uniformly distributed value.
    fn sample(rng: &mut DetRng) -> Self;
}

impl Sample for u64 {
    fn sample(rng: &mut DetRng) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut DetRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for u8 {
    fn sample(rng: &mut DetRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Sample for usize {
    fn sample(rng: &mut DetRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Sample for bool {
    fn sample(rng: &mut DetRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut DetRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample(rng: &mut DetRng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types usable with [`DetRng::gen_range`] over a half-open `lo..hi`.
pub trait SampleRange: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range(rng: &mut DetRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range(rng: &mut DetRng, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                // Multiply-shift maps a 64-bit draw onto [0, span) with
                // negligible (2^-64-scale) bias.
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for f64 {
    fn sample_range(rng: &mut DetRng, lo: Self, hi: Self) -> Self {
        let u: f64 = Sample::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange for f32 {
    fn sample_range(rng: &mut DetRng, lo: Self, hi: Self) -> Self {
        let u: f32 = Sample::sample(rng);
        lo + u * (hi - lo)
    }
}

impl DetRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion, so
    /// nearby seeds still yield decorrelated states).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// The raw xoshiro256++ output step.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Draws one uniform value of the inferred type (`u32`, `u64`,
    /// `usize`, `bool`, or a float in `[0, 1)`).
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(range.start < range.end, "gen_range needs a non-empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Picks a uniformly random element (`None` on an empty slice).
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            slice.swap(i, self.gen_range(0..i + 1));
        }
    }
}

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use kaas_simtime::rng::det_rng;
///
/// let mut a = det_rng(7);
/// let mut b = det_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn det_rng(seed: u64) -> DetRng {
    DetRng::seed_from_u64(seed)
}

/// Derives an independent RNG stream from a base seed and a stream id,
/// so concurrent simulated actors draw from decorrelated sequences.
pub fn stream_rng(seed: u64, stream: u64) -> DetRng {
    // SplitMix64-style mixing keeps streams decorrelated even for small ids.
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    DetRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut x = det_rng(42);
        let mut y = det_rng(42);
        let xs: Vec<u64> = (0..32).map(|_| x.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| y.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = det_rng(1).gen();
        let b: u64 = det_rng(2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn streams_are_decorrelated() {
        let a: u64 = stream_rng(1, 0).gen();
        let b: u64 = stream_rng(1, 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn stream_zero_differs_from_base_only_by_mix() {
        // Regression guard: stream id 0 must still be well-mixed.
        let a: u64 = stream_rng(0, 0).gen();
        let b: u64 = stream_rng(0, 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = det_rng(9);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = det_rng(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5..17i64);
            assert!((-5..17).contains(&v));
            let f = rng.gen_range(-2.5..2.5f64);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = det_rng(1234);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = det_rng(77);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = det_rng(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = det_rng(6);
        let items = [1, 2, 3];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(*rng.choose(&items).unwrap());
        }
        assert_eq!(seen.len(), 3);
        assert!(rng.choose::<u8>(&[]).is_none());
    }
}
