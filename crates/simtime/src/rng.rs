//! Deterministic random-number streams for reproducible simulations.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG type used throughout the workspace (a seedable, portable PRNG).
pub type DetRng = StdRng;

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use kaas_simtime::rng::det_rng;
/// use rand::Rng;
///
/// let mut a = det_rng(7);
/// let mut b = det_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn det_rng(seed: u64) -> DetRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent RNG stream from a base seed and a stream id,
/// so concurrent simulated actors draw from decorrelated sequences.
pub fn stream_rng(seed: u64, stream: u64) -> DetRng {
    // SplitMix64-style mixing keeps streams decorrelated even for small ids.
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_sequence() {
        let a: Vec<u32> = det_rng(42).sample_iter(rand::distributions::Standard).take(8).collect();
        let b: Vec<u32> = det_rng(42).sample_iter(rand::distributions::Standard).take(8).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = det_rng(1).gen();
        let b: u64 = det_rng(2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn streams_are_decorrelated() {
        let a: u64 = stream_rng(1, 0).gen();
        let b: u64 = stream_rng(1, 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn stream_zero_differs_from_base_only_by_mix() {
        // Regression guard: stream id 0 must still be well-mixed.
        let a: u64 = stream_rng(0, 0).gen();
        let b: u64 = stream_rng(0, 1).gen();
        assert_ne!(a, b);
    }
}
