//! The deterministic single-threaded discrete-event executor.
//!
//! A [`Simulation`] owns a set of tasks (plain `Future`s, no `Send`
//! required), a virtual clock, and a timer wheel. Tasks advance only when
//! polled; the clock advances only when every runnable task has been
//! drained, jumping straight to the next timer deadline. The result is a
//! deterministic discrete-event simulation that is written like ordinary
//! async Rust.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use crate::join::{JoinHandle, JoinState};
use crate::time::SimTime;

type LocalFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Queue of task ids that have been woken and must be re-polled.
///
/// This is the only piece of executor state shared with [`Waker`]s, which
/// the `std::task` contract requires to be `Send + Sync` even though this
/// executor never leaves its thread.
#[derive(Default)]
pub(crate) struct WakeQueue {
    queue: Mutex<VecDeque<usize>>,
}

impl WakeQueue {
    fn push(&self, id: usize) {
        self.queue
            .lock()
            .expect("wake queue poisoned")
            .push_back(id);
    }

    fn pop(&self) -> Option<usize> {
        self.queue.lock().expect("wake queue poisoned").pop_front()
    }
}

struct TaskWaker {
    id: usize,
    queue: Arc<WakeQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.queue.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.queue.push(self.id);
    }
}

/// A timer registered with the executor: wake `waker` once the clock
/// reaches `at`. Ties are broken by registration order (`seq`) so the
/// simulation stays deterministic. A cancelled timer (its future was
/// dropped) is discarded without advancing the clock.
struct TimerEntry {
    at: SimTime,
    seq: u64,
    waker: Waker,
    cancelled: Rc<Cell<bool>>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

pub(crate) struct Core {
    now: SimTime,
    timer_seq: u64,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    tasks: Vec<Option<LocalFuture>>,
    free: Vec<usize>,
    live: usize,
    /// Sanitizer hooks run after every task poll (an "executor step").
    /// Only compiled under the `sim-sanitizer` feature so the hot loop
    /// stays hook-free in normal builds.
    #[cfg(feature = "sim-sanitizer")]
    step_hooks: Vec<Rc<dyn Fn()>>,
}

impl Core {
    fn new() -> Self {
        Core {
            now: SimTime::ZERO,
            timer_seq: 0,
            timers: BinaryHeap::new(),
            tasks: Vec::new(),
            free: Vec::new(),
            live: 0,
            #[cfg(feature = "sim-sanitizer")]
            step_hooks: Vec::new(),
        }
    }

    fn insert_task(&mut self, fut: LocalFuture) -> usize {
        self.live += 1;
        if let Some(id) = self.free.pop() {
            debug_assert!(self.tasks[id].is_none());
            self.tasks[id] = Some(fut);
            id
        } else {
            self.tasks.push(Some(fut));
            self.tasks.len() - 1
        }
    }

    fn register_timer(&mut self, at: SimTime, waker: Waker) -> Rc<Cell<bool>> {
        let seq = self.timer_seq;
        self.timer_seq += 1;
        let cancelled = Rc::new(Cell::new(false));
        self.timers.push(Reverse(TimerEntry {
            at,
            seq,
            waker,
            cancelled: Rc::clone(&cancelled),
        }));
        cancelled
    }

    /// Discards cancelled timers sitting at the head of the heap so they
    /// never advance the clock.
    fn prune_cancelled_timers(&mut self) {
        while let Some(Reverse(head)) = self.timers.peek() {
            if head.cancelled.get() {
                self.timers.pop();
            } else {
                break;
            }
        }
    }
}

/// Handle to a running (or constructed) simulation.
///
/// Obtainable inside tasks via [`Handle::current`], or from
/// [`Simulation::handle`]. Cloning is cheap.
#[derive(Clone)]
pub struct Handle {
    core: Rc<RefCell<Core>>,
    wake: Arc<WakeQueue>,
}

impl std::fmt::Debug for Handle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Handle").field("now", &self.now()).finish()
    }
}

thread_local! {
    static CONTEXT: RefCell<Option<Handle>> = const { RefCell::new(None) };
}

struct ContextGuard {
    prev: Option<Handle>,
}

impl ContextGuard {
    fn enter(handle: Handle) -> Self {
        let prev = CONTEXT.with(|c| c.borrow_mut().replace(handle));
        ContextGuard { prev }
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

impl Handle {
    /// The handle of the simulation currently running on this thread.
    ///
    /// # Panics
    ///
    /// Panics when called outside [`Simulation::run`] /
    /// [`Simulation::block_on`] (there is no ambient simulation).
    pub fn current() -> Handle {
        Handle::try_current().expect(
            "no simulation context: kaas_simtime free functions may only be \
             used inside tasks driven by Simulation::run",
        )
    }

    /// Like [`Handle::current`] but returns `None` instead of panicking.
    pub fn try_current() -> Option<Handle> {
        CONTEXT.with(|c| c.borrow().clone())
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.borrow().now
    }

    /// Spawns a task onto the simulation.
    ///
    /// The task starts running at the current virtual instant (before time
    /// next advances). Returns a [`JoinHandle`] that resolves to the task's
    /// output.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let state = Rc::new(RefCell::new(JoinState::new()));
        let state2 = Rc::clone(&state);
        let wrapped = Box::pin(async move {
            let out = fut.await;
            JoinState::complete(&state2, out);
        });
        let id = self.core.borrow_mut().insert_task(wrapped);
        self.wake.push(id);
        JoinHandle::new(state)
    }

    /// Registers `waker` to be woken once the clock reaches `at`; returns
    /// a cancellation flag (set it to discard the timer).
    pub(crate) fn register_timer(&self, at: SimTime, waker: Waker) -> Rc<Cell<bool>> {
        self.core.borrow_mut().register_timer(at, waker)
    }

    /// Number of tasks that have been spawned and not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.core.borrow().live
    }

    /// Registers a sanitizer hook run after every executor step (each
    /// task poll). Hooks must be cheap and must panic on invariant
    /// violation — that is their whole job.
    #[cfg(feature = "sim-sanitizer")]
    pub fn add_step_hook(&self, hook: Rc<dyn Fn()>) {
        self.core.borrow_mut().step_hooks.push(hook);
    }
}

/// A deterministic discrete-event simulation.
///
/// # Examples
///
/// ```
/// use kaas_simtime::{Simulation, sleep};
/// use std::time::Duration;
///
/// let mut sim = Simulation::new();
/// let out = sim.block_on(async {
///     sleep(Duration::from_secs(3)).await;
///     kaas_simtime::now()
/// });
/// assert_eq!(out.as_secs_f64(), 3.0);
/// ```
pub struct Simulation {
    handle: Handle,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now())
            .field("live_tasks", &self.handle.live_tasks())
            .finish()
    }
}

impl Simulation {
    /// Creates an empty simulation with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Simulation {
            handle: Handle {
                core: Rc::new(RefCell::new(Core::new())),
                wake: Arc::new(WakeQueue::default()),
            },
        }
    }

    /// A cloneable handle to this simulation.
    pub fn handle(&self) -> Handle {
        self.handle.clone()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.handle.now()
    }

    /// Number of live (incomplete) tasks.
    pub fn live_tasks(&self) -> usize {
        self.handle.live_tasks()
    }

    /// Spawns a task; see [`Handle::spawn`].
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.handle.spawn(fut)
    }

    /// Runs until no runnable task and no pending timer remains.
    ///
    /// Returns the final virtual time. Tasks blocked on external events that
    /// can never fire (a deadlock) are left pending; check
    /// [`Simulation::live_tasks`] afterwards if that matters to you.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the clock would pass `limit`, then stops with the clock
    /// at `limit` (or earlier if the event queue empties first).
    pub fn run_until(&mut self, limit: SimTime) -> SimTime {
        let _guard = ContextGuard::enter(self.handle());
        loop {
            self.drain_runnable();
            // Advance virtual time to the next (live) timer deadline.
            let next = {
                let mut core = self.handle.core.borrow_mut();
                core.prune_cancelled_timers();
                core.timers.peek().map(|Reverse(e)| e.at)
            };
            let Some(next) = next else {
                break;
            };
            if next > limit {
                let mut core = self.handle.core.borrow_mut();
                if limit != SimTime::MAX && limit > core.now {
                    core.now = limit;
                }
                break;
            }
            let mut core = self.handle.core.borrow_mut();
            debug_assert!(next >= core.now, "timer in the past");
            core.now = next;
            while let Some(Reverse(head)) = core.timers.peek() {
                if head.at > next {
                    break;
                }
                let Reverse(entry) = core.timers.pop().expect("peeked");
                if !entry.cancelled.get() {
                    entry.waker.wake();
                }
            }
        }
        self.now()
    }

    /// Advances the simulation by `d` of virtual time.
    pub fn run_for(&mut self, d: Duration) -> SimTime {
        let limit = self.now() + d;
        self.run_until(limit)
    }

    /// Spawns `fut`, runs the simulation to completion, and returns the
    /// future's output.
    ///
    /// # Panics
    ///
    /// Panics if the simulation goes idle before `fut` completes (i.e. the
    /// future deadlocked waiting on an event nobody will ever send).
    pub fn block_on<F>(&mut self, fut: F) -> F::Output
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let handle = self.spawn(fut);
        self.run();
        handle
            .try_take()
            .expect("simulation went idle before the root future completed (deadlock)")
    }

    /// Polls every woken task until the wake queue is empty.
    fn drain_runnable(&mut self) {
        while let Some(id) = self.handle.wake.pop() {
            self.poll_task(id);
        }
    }

    fn poll_task(&mut self, id: usize) {
        // Take the future out of its slot so the core is not borrowed while
        // the task runs (tasks may spawn, register timers, wake others...).
        let Some(mut fut) = self
            .handle
            .core
            .borrow_mut()
            .tasks
            .get_mut(id)
            .and_then(Option::take)
        else {
            // Stale wake for a completed task.
            return;
        };
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            queue: Arc::clone(&self.handle.wake),
        }));
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                let mut core = self.handle.core.borrow_mut();
                core.free.push(id);
                core.live -= 1;
            }
            Poll::Pending => {
                self.handle.core.borrow_mut().tasks[id] = Some(fut);
            }
        }
        // Every task poll is an executor step: give the sanitizer a
        // chance to check cross-module invariants at a quiescent point
        // (no task mid-poll, core unborrowed).
        #[cfg(feature = "sim-sanitizer")]
        {
            let hooks = self.handle.core.borrow().step_hooks.clone();
            for hook in hooks {
                hook();
            }
        }
    }
}

/// Current virtual time of the ambient simulation.
///
/// # Panics
///
/// Panics outside a running simulation; see [`Handle::current`].
pub fn now() -> SimTime {
    Handle::current().now()
}

/// Spawns a task onto the ambient simulation; see [`Handle::spawn`].
///
/// # Panics
///
/// Panics outside a running simulation; see [`Handle::current`].
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    Handle::current().spawn(fut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sleep;
    use std::cell::Cell;

    #[test]
    fn empty_simulation_finishes_at_zero() {
        let mut sim = Simulation::new();
        assert_eq!(sim.run(), SimTime::ZERO);
    }

    #[test]
    fn block_on_returns_value() {
        let mut sim = Simulation::new();
        assert_eq!(sim.block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn sleep_advances_clock() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            sleep(Duration::from_millis(250)).await;
            now()
        });
        assert_eq!(t, SimTime::from_secs_f64(0.25));
        assert_eq!(sim.now(), t);
    }

    #[test]
    fn tasks_interleave_deterministically() {
        let mut sim = Simulation::new();
        let log: Rc<RefCell<Vec<(u64, &str)>>> = Rc::new(RefCell::new(Vec::new()));
        let l1 = Rc::clone(&log);
        let l2 = Rc::clone(&log);
        sim.spawn(async move {
            for _ in 0..3 {
                sleep(Duration::from_secs(2)).await;
                l1.borrow_mut().push((now().as_nanos(), "a"));
            }
        });
        sim.spawn(async move {
            for _ in 0..2 {
                sleep(Duration::from_secs(3)).await;
                l2.borrow_mut().push((now().as_nanos(), "b"));
            }
        });
        sim.run();
        let log = log.borrow();
        let secs: Vec<(u64, &str)> = log.iter().map(|&(n, s)| (n / 1_000_000_000, s)).collect();
        // At t=6 both fire; "b" registered its timer at t=3, "a" at t=4,
        // so registration order puts "b" first.
        assert_eq!(secs, vec![(2, "a"), (3, "b"), (4, "a"), (6, "b"), (6, "a")]);
    }

    #[test]
    fn run_until_stops_at_limit() {
        let mut sim = Simulation::new();
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        sim.spawn(async move {
            sleep(Duration::from_secs(10)).await;
            d.set(true);
        });
        sim.run_until(SimTime::from_secs(5));
        assert!(!done.get());
        assert_eq!(sim.now(), SimTime::from_secs(5));
        sim.run();
        assert!(done.get());
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn run_for_advances_relative() {
        let mut sim = Simulation::new();
        sim.spawn(async {
            sleep(Duration::from_secs(100)).await;
        });
        sim.run_for(Duration::from_secs(30));
        assert_eq!(sim.now(), SimTime::from_secs(30));
        sim.run_for(Duration::from_secs(30));
        assert_eq!(sim.now(), SimTime::from_secs(60));
    }

    #[test]
    fn spawn_inside_task() {
        let mut sim = Simulation::new();
        let out = sim.block_on(async {
            let h = spawn(async {
                sleep(Duration::from_secs(1)).await;
                7
            });
            h.await
        });
        assert_eq!(out, 7);
    }

    #[test]
    fn live_tasks_counts_unfinished() {
        let mut sim = Simulation::new();
        // A task that waits forever on a timerless pending future: model a
        // deadlock with a never-completing oneshot.
        let (_tx, rx) = crate::channel::oneshot::<()>();
        sim.spawn(async move {
            let _ = rx.await;
        });
        sim.run();
        assert_eq!(sim.live_tasks(), 1);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn block_on_deadlock_panics() {
        let (_tx, rx) = crate::channel::oneshot::<()>();
        let mut sim = Simulation::new();
        sim.block_on(async move {
            let _ = rx.await;
        });
    }

    #[test]
    fn same_deadline_timers_fire_in_registration_order() {
        let mut sim = Simulation::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..10u32 {
            let l = Rc::clone(&log);
            sim.spawn(async move {
                sleep(Duration::from_secs(1)).await;
                l.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handle_try_current_outside_run_is_none() {
        assert!(Handle::try_current().is_none());
    }

    #[test]
    fn many_tasks_reuse_slots() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            for _ in 0..100 {
                spawn(async { sleep(Duration::from_millis(1)).await }).await;
            }
        });
        assert_eq!(sim.live_tasks(), 0);
    }
}
