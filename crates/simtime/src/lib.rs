//! # kaas-simtime — deterministic discrete-event simulation runtime
//!
//! A single-threaded async executor whose clock is **virtual**: awaiting
//! [`sleep`] does not block the thread, it schedules the task at a future
//! instant of simulated time and the executor jumps the clock forward once
//! all runnable work has drained. This turns ordinary async Rust into a
//! deterministic discrete-event simulator — the substrate on which the
//! whole KaaS reproduction (servers, clients, networks, accelerators) runs.
//!
//! ## Why a simulator?
//!
//! The KaaS paper (Middleware '23) evaluates a serverless runtime on real
//! GPUs, FPGAs, TPUs, and QPUs. Reproducing the *systems* results does not
//! require the silicon: every claim is about when work starts and ends and
//! which overheads sit on the critical path. Running all actors in virtual
//! time gives bit-for-bit reproducible experiments that finish in
//! milliseconds of wall-clock time.
//!
//! ## Quick start
//!
//! ```
//! use kaas_simtime::{Simulation, spawn, sleep, now, channel};
//! use std::time::Duration;
//!
//! let mut sim = Simulation::new();
//! let total = sim.block_on(async {
//!     let (tx, mut rx) = channel::unbounded();
//!     for id in 0..3u32 {
//!         let tx = tx.clone();
//!         spawn(async move {
//!             sleep(Duration::from_millis(10 * (id as u64 + 1))).await;
//!             tx.send(id).await.ok();
//!         });
//!     }
//!     drop(tx);
//!     let mut sum = 0;
//!     while let Some(v) = rx.recv().await {
//!         sum += v;
//!     }
//!     assert_eq!(now(), kaas_simtime::SimTime::from_nanos(30_000_000));
//!     sum
//! });
//! assert_eq!(total, 3);
//! ```
//!
//! ## Determinism guarantees
//!
//! * Tasks woken at the same instant run in wake order (FIFO).
//! * Timers with equal deadlines fire in registration order.
//! * Channel and semaphore queues are strictly FIFO.
//! * All randomness flows through seeded [`rng`] streams.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod channel;
mod combinators;
mod executor;
mod join;
pub mod rng;
mod sleep;
pub mod sync;
mod time;
pub mod trace;

pub use combinators::{join_all, race, Either, Race};
pub use executor::{now, spawn, Handle, Simulation};
pub use join::JoinHandle;
pub use sleep::{sleep, sleep_until, timeout, yield_now, Elapsed, Sleep, Timeout, YieldNow};
pub use time::SimTime;
pub use trace::{OpenSpan, Span, SpanId, SpanSink};

pub use std::time::Duration;
