//! Virtual-time message passing: [`oneshot`] and multi-producer
//! single-consumer queues ([`unbounded`], [`bounded`]).
//!
//! All channels are single-threaded (the simulation never leaves its
//! thread) but follow the familiar async-channel API shape so simulation
//! code reads like production service code.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

// ---------------------------------------------------------------------------
// oneshot
// ---------------------------------------------------------------------------

struct OneshotState<T> {
    value: Option<T>,
    tx_alive: bool,
    rx_alive: bool,
    waker: Option<Waker>,
}

/// Sending half of a [`oneshot`] channel.
#[derive(Debug)]
pub struct OneshotSender<T> {
    state: Rc<RefCell<OneshotState<T>>>,
}

/// Receiving half of a [`oneshot`] channel; a future resolving to the sent
/// value.
#[derive(Debug)]
#[must_use = "futures do nothing unless awaited"]
pub struct OneshotReceiver<T> {
    state: Rc<RefCell<OneshotState<T>>>,
}

impl<T> std::fmt::Debug for OneshotState<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OneshotState")
            .field("has_value", &self.value.is_some())
            .finish()
    }
}

/// Error returned when awaiting a [`OneshotReceiver`] whose sender was
/// dropped without sending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sender dropped without sending a value")
    }
}

impl std::error::Error for RecvError {}

/// Creates a channel carrying a single value.
///
/// # Examples
///
/// ```
/// use kaas_simtime::{Simulation, spawn, channel};
///
/// let mut sim = Simulation::new();
/// let got = sim.block_on(async {
///     let (tx, rx) = channel::oneshot();
///     spawn(async move { tx.send(123).ok(); });
///     rx.await.unwrap()
/// });
/// assert_eq!(got, 123);
/// ```
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let state = Rc::new(RefCell::new(OneshotState {
        value: None,
        tx_alive: true,
        rx_alive: true,
        waker: None,
    }));
    (
        OneshotSender {
            state: Rc::clone(&state),
        },
        OneshotReceiver { state },
    )
}

impl<T> OneshotSender<T> {
    /// Sends `value`, consuming the sender.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` if the receiver has been dropped.
    pub fn send(self, value: T) -> Result<(), T> {
        let waker = {
            let mut s = self.state.borrow_mut();
            if !s.rx_alive {
                return Err(value);
            }
            s.value = Some(value);
            s.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
        Ok(())
    }

    /// Whether the receiving half is still alive.
    pub fn is_open(&self) -> bool {
        self.state.borrow().rx_alive
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut s = self.state.borrow_mut();
            s.tx_alive = false;
            s.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Drop for OneshotReceiver<T> {
    fn drop(&mut self) {
        self.state.borrow_mut().rx_alive = false;
    }
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Result<T, RecvError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.state.borrow_mut();
        if let Some(v) = s.value.take() {
            return Poll::Ready(Ok(v));
        }
        if !s.tx_alive {
            return Poll::Ready(Err(RecvError));
        }
        s.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// mpsc
// ---------------------------------------------------------------------------

/// Error returned by [`Sender::send`] / [`Sender::try_send`] when the
/// receiver is gone (or, for `try_send`, the queue is full); carries the
/// unsent value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel closed or full")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

struct ParkedSend<T> {
    id: u64,
    value: Option<T>,
    waker: Option<Waker>,
    done: Rc<Cell<bool>>,
}

struct MpscState<T> {
    queue: VecDeque<T>,
    capacity: Option<usize>,
    parked: VecDeque<ParkedSend<T>>,
    senders: usize,
    rx_alive: bool,
    rx_waker: Option<Waker>,
    next_park_id: u64,
}

impl<T> MpscState<T> {
    fn wake_rx(&mut self) {
        if let Some(w) = self.rx_waker.take() {
            w.wake();
        }
    }

    /// After the queue shrank, promote parked sends into free slots.
    fn promote_parked(&mut self) {
        while let Some(cap) = self.capacity {
            if self.queue.len() >= cap {
                break;
            }
            let Some(mut park) = self.parked.pop_front() else {
                break;
            };
            if let Some(v) = park.value.take() {
                self.queue.push_back(v);
            }
            park.done.set(true);
            if let Some(w) = park.waker.take() {
                w.wake();
            }
        }
    }
}

/// Sending half of an mpsc channel. Cloneable.
pub struct Sender<T> {
    state: Rc<RefCell<MpscState<T>>>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender")
            .field("len", &self.state.borrow().queue.len())
            .finish()
    }
}

/// Receiving half of an mpsc channel.
pub struct Receiver<T> {
    state: Rc<RefCell<MpscState<T>>>,
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver")
            .field("len", &self.state.borrow().queue.len())
            .finish()
    }
}

/// Creates a channel with no capacity limit: sends always complete
/// immediately.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel holding at most `capacity` queued messages; senders
/// wait (in FIFO order) for space.
///
/// # Panics
///
/// Panics if `capacity == 0`.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "bounded channel capacity must be at least 1");
    with_capacity(Some(capacity))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let state = Rc::new(RefCell::new(MpscState {
        queue: VecDeque::new(),
        capacity,
        parked: VecDeque::new(),
        senders: 1,
        rx_alive: true,
        rx_waker: None,
        next_park_id: 0,
    }));
    (
        Sender {
            state: Rc::clone(&state),
        },
        Receiver { state },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.state.borrow_mut().senders += 1;
        Sender {
            state: Rc::clone(&self.state),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.state.borrow_mut();
        s.senders -= 1;
        if s.senders == 0 {
            s.wake_rx();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut s = self.state.borrow_mut();
        s.rx_alive = false;
        // Unblock every parked sender; their sends fail. Entries stay in
        // the queue (with their values) so each `Send` future can recover
        // its value for the returned `SendError`.
        let mut wakers = Vec::new();
        for p in s.parked.iter_mut() {
            p.done.set(true);
            if let Some(w) = p.waker.take() {
                wakers.push(w);
            }
        }
        drop(s);
        for w in wakers {
            w.wake();
        }
    }
}

impl<T> Sender<T> {
    /// Sends `value`, waiting for queue space on bounded channels.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] carrying the value if the receiver was dropped
    /// (possibly while this send was parked; in that case the value is
    /// lost — it was already moved into the channel internals — and the
    /// error carries `None`-like semantics via [`SendError`] on entry only).
    pub fn send(&self, value: T) -> Send<'_, T> {
        Send {
            sender: self,
            value: Some(value),
            parked: None,
        }
    }

    /// Attempts to send without waiting.
    ///
    /// # Errors
    ///
    /// Returns the value if the channel is full or the receiver is gone.
    pub fn try_send(&self, value: T) -> Result<(), SendError<T>> {
        let mut s = self.state.borrow_mut();
        if !s.rx_alive {
            return Err(SendError(value));
        }
        if let Some(cap) = s.capacity {
            if s.queue.len() >= cap || !s.parked.is_empty() {
                return Err(SendError(value));
            }
        }
        s.queue.push_back(value);
        s.wake_rx();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the receiver is still alive.
    pub fn is_open(&self) -> bool {
        self.state.borrow().rx_alive
    }
}

/// Future returned by [`Sender::send`].
#[must_use = "futures do nothing unless awaited"]
pub struct Send<'a, T> {
    sender: &'a Sender<T>,
    value: Option<T>,
    parked: Option<(u64, Rc<Cell<bool>>)>,
}

impl<T> std::fmt::Debug for Send<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Send").finish_non_exhaustive()
    }
}

impl<T> Unpin for Send<'_, T> {}

impl<T> Future for Send<'_, T> {
    type Output = Result<(), SendError<T>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = Pin::into_inner(self);
        // Already parked: resolve when the channel marks us done.
        if let Some((id, done)) = &this.parked {
            if done.get() {
                let id = *id;
                let mut s = this.sender.state.borrow_mut();
                if s.rx_alive {
                    // Entry was promoted into the queue and removed.
                    drop(s);
                    this.parked = None;
                    return Poll::Ready(Ok(()));
                }
                // Channel closed while parked: recover our value.
                let pos = s
                    .parked
                    .iter()
                    .position(|p| p.id == id)
                    .expect("parked entry must survive channel close");
                let mut entry = s.parked.remove(pos).expect("indexed");
                drop(s);
                this.parked = None;
                let v = entry.value.take().expect("parked value intact on close");
                return Poll::Ready(Err(SendError(v)));
            }
            // Refresh waker.
            let mut s = this.sender.state.borrow_mut();
            let id = this.parked.as_ref().expect("parked").0;
            if let Some(p) = s.parked.iter_mut().find(|p| p.id == id) {
                p.waker = Some(cx.waker().clone());
            }
            return Poll::Pending;
        }

        let mut s = this.sender.state.borrow_mut();
        if !s.rx_alive {
            drop(s);
            let v = this.value.take().expect("send polled after completion");
            return Poll::Ready(Err(SendError(v)));
        }
        let must_park = match s.capacity {
            Some(cap) => s.queue.len() >= cap || !s.parked.is_empty(),
            None => false,
        };
        if must_park {
            let id = s.next_park_id;
            s.next_park_id += 1;
            let done = Rc::new(Cell::new(false));
            let v = this.value.take().expect("send value");
            s.parked.push_back(ParkedSend {
                id,
                value: Some(v),
                waker: Some(cx.waker().clone()),
                done: Rc::clone(&done),
            });
            drop(s);
            this.parked = Some((id, done));
            Poll::Pending
        } else {
            let v = this.value.take().expect("send polled after completion");
            s.queue.push_back(v);
            s.wake_rx();
            Poll::Ready(Ok(()))
        }
    }
}

impl<T> Drop for Send<'_, T> {
    fn drop(&mut self) {
        if let Some((id, _done)) = self.parked.take() {
            // Cancelled while parked (or closed before the final poll):
            // withdraw the entry if it is still queued.
            let mut s = self.sender.state.borrow_mut();
            s.parked.retain(|p| p.id != id);
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next message, waiting if the queue is empty.
    ///
    /// Resolves to `None` once every sender has been dropped and the queue
    /// is drained.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { receiver: self }
    }

    /// Attempts to receive without waiting.
    pub fn try_recv(&mut self) -> Option<T> {
        let mut s = self.state.borrow_mut();
        let v = s.queue.pop_front();
        if v.is_some() {
            s.promote_parked();
        }
        v
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
#[must_use = "futures do nothing unless awaited"]
pub struct Recv<'a, T> {
    receiver: &'a mut Receiver<T>,
}

impl<T> std::fmt::Debug for Recv<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recv").finish_non_exhaustive()
    }
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.receiver.state.borrow_mut();
        if let Some(v) = s.queue.pop_front() {
            s.promote_parked();
            return Poll::Ready(Some(v));
        }
        if s.senders == 0 {
            return Poll::Ready(None);
        }
        s.rx_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sleep, spawn, Simulation};
    use std::time::Duration;

    #[test]
    fn oneshot_roundtrip() {
        let mut sim = Simulation::new();
        let v = sim.block_on(async {
            let (tx, rx) = oneshot::<u32>();
            spawn(async move {
                sleep(Duration::from_secs(1)).await;
                tx.send(7).ok();
            });
            rx.await
        });
        assert_eq!(v, Ok(7));
    }

    #[test]
    fn oneshot_sender_drop_errors() {
        let mut sim = Simulation::new();
        let v = sim.block_on(async {
            let (tx, rx) = oneshot::<u32>();
            spawn(async move {
                sleep(Duration::from_secs(1)).await;
                drop(tx);
            });
            rx.await
        });
        assert_eq!(v, Err(RecvError));
    }

    #[test]
    fn oneshot_send_to_dropped_receiver_fails() {
        let (tx, rx) = oneshot::<u32>();
        drop(rx);
        assert!(!tx.is_open());
        assert_eq!(tx.send(5), Err(5));
    }

    #[test]
    fn unbounded_fifo_order() {
        let mut sim = Simulation::new();
        let got = sim.block_on(async {
            let (tx, mut rx) = unbounded::<u32>();
            for i in 0..5 {
                tx.send(i).await.unwrap();
            }
            drop(tx);
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_waits_for_sender() {
        let mut sim = Simulation::new();
        let (tx, mut rx) = unbounded::<&str>();
        let h = sim.spawn(async move { rx.recv().await });
        sim.spawn(async move {
            sleep(Duration::from_secs(2)).await;
            tx.send("hi").await.unwrap();
        });
        sim.run();
        assert_eq!(h.try_take(), Some(Some("hi")));
        assert_eq!(sim.now().as_secs_f64(), 2.0);
    }

    #[test]
    fn recv_none_after_all_senders_drop() {
        let mut sim = Simulation::new();
        let out = sim.block_on(async {
            let (tx, mut rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            drop(tx);
            spawn(async move {
                sleep(Duration::from_secs(1)).await;
                drop(tx2);
            });
            rx.recv().await
        });
        assert_eq!(out, None);
    }

    #[test]
    fn bounded_blocks_sender_until_space() {
        let mut sim = Simulation::new();
        let out = sim.block_on(async {
            let (tx, mut rx) = bounded::<u32>(1);
            tx.send(1).await.unwrap();
            let h = spawn(async move {
                // This send must wait until the receiver drains a slot.
                tx.send(2).await.unwrap();
                crate::now()
            });
            sleep(Duration::from_secs(3)).await;
            assert_eq!(rx.recv().await, Some(1));
            let sent_at = h.await;
            assert_eq!(sent_at.as_secs_f64(), 3.0);
            rx.recv().await
        });
        assert_eq!(out, Some(2));
    }

    #[test]
    fn bounded_preserves_order_across_parking() {
        let mut sim = Simulation::new();
        let got = sim.block_on(async {
            let (tx, mut rx) = bounded::<u32>(2);
            for i in 0..6 {
                let tx = tx.clone();
                spawn(async move {
                    tx.send(i).await.unwrap();
                });
            }
            drop(tx);
            sleep(Duration::from_secs(1)).await;
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn try_send_full_returns_value() {
        let (tx, _rx) = bounded::<u32>(1);
        assert!(tx.try_send(1).is_ok());
        assert_eq!(tx.try_send(2), Err(SendError(2)));
        assert_eq!(tx.len(), 1);
    }

    #[test]
    fn try_send_closed_returns_value() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(!tx.is_open());
        assert_eq!(tx.try_send(9), Err(SendError(9)));
    }

    #[test]
    fn try_recv_nonblocking() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let (tx, mut rx) = unbounded::<u32>();
            assert_eq!(rx.try_recv(), None);
            tx.send(3).await.unwrap();
            assert_eq!(rx.try_recv(), Some(3));
        });
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let mut sim = Simulation::new();
        let out = sim.block_on(async {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            tx.send(11).await
        });
        assert_eq!(out, Err(SendError(11)));
    }

    #[test]
    fn receiver_drop_unblocks_parked_senders() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).await.unwrap();
            let h = spawn(async move {
                match tx.send(2).await {
                    Err(SendError(v)) => v,
                    Ok(()) => panic!("send should fail after receiver drop"),
                }
            });
            sleep(Duration::from_secs(1)).await;
            drop(rx);
            // The parked sender gets its value back in the error.
            assert_eq!(h.await, 2);
        });
    }
}
