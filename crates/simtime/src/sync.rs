//! Synchronization primitives in virtual time: [`Semaphore`] (FIFO-fair
//! counting semaphore with RAII permits) and [`Event`] (one-shot broadcast
//! flag).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WaiterPhase {
    Queued,
    Granted,
    Consumed,
    Cancelled,
}

struct Waiter {
    n: usize,
    phase: Rc<Cell<WaiterPhase>>,
    waker: Option<Waker>,
}

struct SemState {
    permits: usize,
    waiters: VecDeque<Waiter>,
}

impl SemState {
    /// Grants permits to waiters strictly in FIFO order.
    fn grant(&mut self) -> Vec<Waker> {
        let mut woken = Vec::new();
        while let Some(front) = self.waiters.front() {
            match front.phase.get() {
                WaiterPhase::Cancelled => {
                    self.waiters.pop_front();
                }
                WaiterPhase::Queued if front.n <= self.permits => {
                    let mut w = self.waiters.pop_front().expect("front exists");
                    self.permits -= w.n;
                    w.phase.set(WaiterPhase::Granted);
                    if let Some(waker) = w.waker.take() {
                        woken.push(waker);
                    }
                }
                _ => break,
            }
        }
        woken
    }
}

/// A FIFO-fair counting semaphore.
///
/// Unlike `tokio::sync::Semaphore`, permits are plain `usize` counts and
/// acquisition order is strictly first-come-first-served — a large request
/// at the head of the queue blocks smaller later ones, which keeps
/// simulated resource contention deterministic and starvation-free.
///
/// # Examples
///
/// ```
/// use kaas_simtime::{Simulation, sync::Semaphore};
///
/// let mut sim = Simulation::new();
/// sim.block_on(async {
///     let sem = Semaphore::new(2);
///     let a = sem.acquire(1).await;
///     let b = sem.acquire(1).await;
///     assert_eq!(sem.available(), 0);
///     drop(a);
///     assert_eq!(sem.available(), 1);
///     drop(b);
/// });
/// ```
#[derive(Clone)]
pub struct Semaphore {
    state: Rc<RefCell<SemState>>,
}

impl std::fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.borrow();
        f.debug_struct("Semaphore")
            .field("available", &s.permits)
            .field("waiters", &s.waiters.len())
            .finish()
    }
}

impl Semaphore {
    /// Creates a semaphore with `permits` available permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            state: Rc::new(RefCell::new(SemState {
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        self.state.borrow().permits
    }

    /// Number of queued waiters.
    pub fn waiters(&self) -> usize {
        self.state
            .borrow()
            .waiters
            .iter()
            .filter(|w| w.phase.get() == WaiterPhase::Queued)
            .count()
    }

    /// Acquires `n` permits, waiting in FIFO order; the returned
    /// [`SemaphoreGuard`] releases them when dropped.
    pub fn acquire(&self, n: usize) -> Acquire {
        Acquire {
            sem: self.clone(),
            n,
            waiter: None,
        }
    }

    /// Attempts to acquire `n` permits without waiting.
    ///
    /// Fails (returns `None`) if fewer than `n` permits are available *or*
    /// earlier waiters are queued (FIFO fairness is never bypassed).
    pub fn try_acquire(&self, n: usize) -> Option<SemaphoreGuard> {
        let mut s = self.state.borrow_mut();
        let blocked = s
            .waiters
            .iter()
            .any(|w| w.phase.get() == WaiterPhase::Queued);
        if blocked || s.permits < n {
            return None;
        }
        s.permits -= n;
        drop(s);
        Some(SemaphoreGuard {
            sem: self.clone(),
            n,
        })
    }

    /// Adds `n` new permits to the semaphore (capacity growth).
    pub fn add_permits(&self, n: usize) {
        let wakers = {
            let mut s = self.state.borrow_mut();
            s.permits += n;
            s.grant()
        };
        for w in wakers {
            w.wake();
        }
    }

    fn release(&self, n: usize) {
        self.add_permits(n);
    }
}

/// Future returned by [`Semaphore::acquire`].
#[must_use = "futures do nothing unless awaited"]
#[derive(Debug)]
pub struct Acquire {
    sem: Semaphore,
    n: usize,
    waiter: Option<Rc<Cell<WaiterPhase>>>,
}

impl Future for Acquire {
    type Output = SemaphoreGuard;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Some(phase) = &self.waiter {
            match phase.get() {
                WaiterPhase::Granted => {
                    phase.set(WaiterPhase::Consumed);
                    return Poll::Ready(SemaphoreGuard {
                        sem: self.sem.clone(),
                        n: self.n,
                    });
                }
                WaiterPhase::Queued => {
                    // Refresh our stored waker.
                    let phase = Rc::clone(phase);
                    let mut s = self.sem.state.borrow_mut();
                    if let Some(w) = s.waiters.iter_mut().find(|w| Rc::ptr_eq(&w.phase, &phase)) {
                        w.waker = Some(cx.waker().clone());
                    }
                    return Poll::Pending;
                }
                WaiterPhase::Consumed | WaiterPhase::Cancelled => {
                    panic!("Acquire polled after completion")
                }
            }
        }
        let mut s = self.sem.state.borrow_mut();
        let blocked = s
            .waiters
            .iter()
            .any(|w| w.phase.get() == WaiterPhase::Queued);
        if !blocked && s.permits >= self.n {
            s.permits -= self.n;
            drop(s);
            return Poll::Ready(SemaphoreGuard {
                sem: self.sem.clone(),
                n: self.n,
            });
        }
        let phase = Rc::new(Cell::new(WaiterPhase::Queued));
        s.waiters.push_back(Waiter {
            n: self.n,
            phase: Rc::clone(&phase),
            waker: Some(cx.waker().clone()),
        });
        drop(s);
        self.waiter = Some(phase);
        Poll::Pending
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(phase) = self.waiter.take() {
            match phase.get() {
                WaiterPhase::Queued => {
                    phase.set(WaiterPhase::Cancelled);
                    // Lazily removed by `grant`; but trigger a grant pass in
                    // case we were at the head blocking others.
                    self.sem.add_permits(0);
                }
                WaiterPhase::Granted => {
                    // Granted but never observed: return the permits.
                    self.sem.release(self.n);
                }
                WaiterPhase::Consumed | WaiterPhase::Cancelled => {}
            }
        }
    }
}

/// RAII permit holder returned by [`Semaphore::acquire`] /
/// [`Semaphore::try_acquire`]; releases its permits on drop.
#[derive(Debug)]
pub struct SemaphoreGuard {
    sem: Semaphore,
    n: usize,
}

impl SemaphoreGuard {
    /// Number of permits held.
    pub fn permits(&self) -> usize {
        self.n
    }

    /// Releases the permits permanently (they are *not* returned to the
    /// semaphore) — used to model capacity that is consumed, not borrowed.
    pub fn forget(mut self) {
        self.n = 0;
    }
}

impl Drop for SemaphoreGuard {
    fn drop(&mut self) {
        if self.n > 0 {
            self.sem.release(self.n);
        }
    }
}

// ---------------------------------------------------------------------------
// Event
// ---------------------------------------------------------------------------

struct EventState {
    set: bool,
    waiters: Vec<Waker>,
}

/// A one-shot broadcast flag: any number of tasks [`Event::wait`] until a
/// single [`Event::set`] releases them all (and all future waiters).
///
/// # Examples
///
/// ```
/// use kaas_simtime::{Simulation, spawn, sync::Event};
///
/// let mut sim = Simulation::new();
/// sim.block_on(async {
///     let ev = Event::new();
///     let ev2 = ev.clone();
///     let h = spawn(async move {
///         ev2.wait().await;
///         "released"
///     });
///     ev.set();
///     assert_eq!(h.await, "released");
/// });
/// ```
#[derive(Clone)]
pub struct Event {
    state: Rc<RefCell<EventState>>,
}

impl Default for Event {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Event")
            .field("set", &self.is_set())
            .finish()
    }
}

impl Event {
    /// Creates an unset event.
    pub fn new() -> Self {
        Event {
            state: Rc::new(RefCell::new(EventState {
                set: false,
                waiters: Vec::new(),
            })),
        }
    }

    /// Sets the flag and wakes all current waiters. Idempotent.
    pub fn set(&self) {
        let wakers = {
            let mut s = self.state.borrow_mut();
            s.set = true;
            std::mem::take(&mut s.waiters)
        };
        for w in wakers {
            w.wake();
        }
    }

    /// Whether the flag has been set.
    pub fn is_set(&self) -> bool {
        self.state.borrow().set
    }

    /// Waits until the flag is set (immediately if it already is).
    pub fn wait(&self) -> EventWait {
        EventWait {
            state: Rc::clone(&self.state),
        }
    }
}

/// Future returned by [`Event::wait`].
#[must_use = "futures do nothing unless awaited"]
pub struct EventWait {
    state: Rc<RefCell<EventState>>,
}

impl std::fmt::Debug for EventWait {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventWait").finish_non_exhaustive()
    }
}

impl Future for EventWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut s = self.state.borrow_mut();
        if s.set {
            Poll::Ready(())
        } else {
            s.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{now, sleep, spawn, Simulation};
    use std::time::Duration;

    #[test]
    fn semaphore_limits_concurrency() {
        let mut sim = Simulation::new();
        let peak = Rc::new(Cell::new(0usize));
        let cur = Rc::new(Cell::new(0usize));
        sim.block_on(async move {
            let sem = Semaphore::new(3);
            let mut handles = Vec::new();
            for _ in 0..10 {
                let sem = sem.clone();
                let peak = Rc::clone(&peak);
                let cur = Rc::clone(&cur);
                handles.push(spawn(async move {
                    let _g = sem.acquire(1).await;
                    cur.set(cur.get() + 1);
                    peak.set(peak.get().max(cur.get()));
                    sleep(Duration::from_secs(1)).await;
                    cur.set(cur.get() - 1);
                }));
            }
            for h in handles {
                h.await;
            }
            assert_eq!(peak.get(), 3);
        });
    }

    #[test]
    fn semaphore_fifo_order() {
        let mut sim = Simulation::new();
        let order: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        sim.block_on({
            let order = Rc::clone(&order);
            async move {
                let sem = Semaphore::new(1);
                let mut handles = Vec::new();
                for i in 0..5u32 {
                    let sem = sem.clone();
                    let order = Rc::clone(&order);
                    handles.push(spawn(async move {
                        let _g = sem.acquire(1).await;
                        order.borrow_mut().push(i);
                        sleep(Duration::from_millis(10)).await;
                    }));
                    // Stagger arrivals so the queue order is well-defined.
                    sleep(Duration::from_millis(1)).await;
                }
                for h in handles {
                    h.await;
                }
            }
        });
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn large_request_blocks_smaller_later_ones() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let sem = Semaphore::new(2);
            let g = sem.acquire(2).await;
            let sem2 = sem.clone();
            let big = spawn(async move { drop(sem2.acquire(2).await) });
            sleep(Duration::from_millis(1)).await;
            // A small request arriving later must not overtake the big one.
            assert!(sem.try_acquire(1).is_none());
            drop(g);
            big.await;
            assert_eq!(sem.available(), 2);
        });
    }

    #[test]
    fn try_acquire_respects_availability() {
        let sem = Semaphore::new(1);
        let g = sem.try_acquire(1).expect("one available");
        assert!(sem.try_acquire(1).is_none());
        drop(g);
        assert!(sem.try_acquire(1).is_some());
    }

    #[test]
    fn guard_forget_consumes_permits() {
        let sem = Semaphore::new(2);
        let g = sem.try_acquire(2).expect("free");
        g.forget();
        assert_eq!(sem.available(), 0);
    }

    #[test]
    fn add_permits_grows_capacity() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let sem = Semaphore::new(0);
            let sem2 = sem.clone();
            let h = spawn(async move {
                let _g = sem2.acquire(1).await;
                now()
            });
            sleep(Duration::from_secs(4)).await;
            sem.add_permits(1);
            assert_eq!(h.await, crate::SimTime::from_secs(4));
        });
    }

    #[test]
    fn cancelled_head_waiter_does_not_block_queue() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let sem = Semaphore::new(1);
            let g = sem.try_acquire(1).expect("free");
            let sem2 = sem.clone();
            let head = spawn(async move {
                // Give up waiting after 1s.
                crate::timeout(Duration::from_secs(1), sem2.acquire(1)).await
            });
            sleep(Duration::from_millis(10)).await;
            let sem3 = sem.clone();
            let tail = spawn(async move {
                let _g = sem3.acquire(1).await;
                now()
            });
            // Head cancels at t=1s; we release at t=3s; the cancelled head
            // must not prevent the tail waiter from acquiring.
            assert!(head.await.is_err());
            sleep(Duration::from_secs(2)).await;
            drop(g);
            let got_at = tail.await;
            assert_eq!(got_at.as_secs_f64(), 3.0);
        });
    }

    #[test]
    fn event_releases_all_waiters() {
        let mut sim = Simulation::new();
        let count = Rc::new(Cell::new(0));
        sim.block_on({
            let count = Rc::clone(&count);
            async move {
                let ev = Event::new();
                let mut hs = Vec::new();
                for _ in 0..5 {
                    let ev = ev.clone();
                    let count = Rc::clone(&count);
                    hs.push(spawn(async move {
                        ev.wait().await;
                        count.set(count.get() + 1);
                    }));
                }
                sleep(Duration::from_secs(1)).await;
                assert_eq!(count.get(), 0);
                ev.set();
                for h in hs {
                    h.await;
                }
                assert_eq!(count.get(), 5);
            }
        });
    }

    #[test]
    fn event_wait_after_set_is_immediate() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let ev = Event::new();
            ev.set();
            assert!(ev.is_set());
            ev.wait().await; // must not hang
        });
    }
}
