//! Timer futures: [`sleep`], [`sleep_until`], [`yield_now`], [`timeout`].

use std::cell::Cell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};
use std::time::Duration;

use crate::executor::Handle;
use crate::time::SimTime;

/// Future returned by [`sleep`] and [`sleep_until`].
#[derive(Debug)]
#[must_use = "futures do nothing unless awaited"]
pub struct Sleep {
    deadline: Option<SimTime>,
    delay: Duration,
    timer: Option<Rc<Cell<bool>>>,
}

impl Sleep {
    fn after(delay: Duration) -> Self {
        Sleep {
            deadline: None,
            delay,
            timer: None,
        }
    }

    fn until(at: SimTime) -> Self {
        Sleep {
            deadline: Some(at),
            delay: Duration::ZERO,
            timer: None,
        }
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let handle = Handle::current();
        let now = handle.now();
        let delay = self.delay;
        let deadline = *self.deadline.get_or_insert(now + delay);
        if now >= deadline {
            self.timer = None;
            Poll::Ready(())
        } else {
            if self.timer.is_none() {
                self.timer = Some(handle.register_timer(deadline, cx.waker().clone()));
            }
            Poll::Pending
        }
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        // Cancel the pending timer so an abandoned sleep never advances
        // the simulation clock.
        if let Some(cancelled) = self.timer.take() {
            cancelled.set(true);
        }
    }
}

/// Suspends the current task for `d` of virtual time.
///
/// Sleeping costs no wall-clock time: the simulation clock jumps to the
/// deadline once all other runnable work has drained.
///
/// # Examples
///
/// ```
/// use kaas_simtime::{Simulation, sleep, now};
/// use std::time::Duration;
///
/// let mut sim = Simulation::new();
/// sim.block_on(async {
///     sleep(Duration::from_millis(10)).await;
///     assert_eq!(now().as_nanos(), 10_000_000);
/// });
/// ```
pub fn sleep(d: Duration) -> Sleep {
    Sleep::after(d)
}

/// Suspends the current task until the virtual clock reaches `at`.
///
/// Completes immediately if `at` is not in the future.
pub fn sleep_until(at: SimTime) -> Sleep {
    Sleep::until(at)
}

/// Future returned by [`yield_now`].
#[derive(Debug, Default)]
#[must_use = "futures do nothing unless awaited"]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Yields to other runnable tasks without advancing virtual time.
pub fn yield_now() -> YieldNow {
    YieldNow::default()
}

/// Error returned by [`timeout`] when the deadline elapses first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed;

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline elapsed before the future completed")
    }
}

impl std::error::Error for Elapsed {}

/// Future returned by [`timeout`].
#[derive(Debug)]
#[must_use = "futures do nothing unless awaited"]
pub struct Timeout<F> {
    future: F,
    sleep: Sleep,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: structural pinning; neither field is moved out.
        let this = unsafe { self.get_unchecked_mut() };
        let fut = unsafe { Pin::new_unchecked(&mut this.future) };
        if let Poll::Ready(v) = fut.poll(cx) {
            return Poll::Ready(Ok(v));
        }
        let sleep = unsafe { Pin::new_unchecked(&mut this.sleep) };
        match sleep.poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(Elapsed)),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Awaits `future` for at most `d` of virtual time.
///
/// # Errors
///
/// Returns [`Elapsed`] if the deadline passes before `future` completes.
/// The inner future is dropped in that case.
///
/// # Examples
///
/// ```
/// use kaas_simtime::{Simulation, sleep, timeout};
/// use std::time::Duration;
///
/// let mut sim = Simulation::new();
/// sim.block_on(async {
///     let slow = sleep(Duration::from_secs(10));
///     assert!(timeout(Duration::from_secs(1), slow).await.is_err());
/// });
/// ```
pub fn timeout<F: Future>(d: Duration, future: F) -> Timeout<F> {
    Timeout {
        future,
        sleep: Sleep::after(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{now, spawn, Simulation};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn sleep_zero_completes_without_time_advance() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            sleep(Duration::ZERO).await;
            assert_eq!(now(), SimTime::ZERO);
        });
    }

    #[test]
    fn sleep_until_past_is_immediate() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            sleep(Duration::from_secs(5)).await;
            sleep_until(SimTime::from_secs(1)).await;
            assert_eq!(now(), SimTime::from_secs(5));
        });
    }

    #[test]
    fn yield_now_lets_peers_run() {
        let mut sim = Simulation::new();
        let log: Rc<RefCell<Vec<&str>>> = Rc::new(RefCell::new(Vec::new()));
        let (l1, l2) = (Rc::clone(&log), Rc::clone(&log));
        sim.block_on(async move {
            let h = spawn(async move {
                l1.borrow_mut().push("peer");
            });
            yield_now().await;
            l2.borrow_mut().push("main");
            h.await;
        });
        assert_eq!(*log.borrow(), vec!["peer", "main"]);
    }

    #[test]
    fn timeout_success_passes_value() {
        let mut sim = Simulation::new();
        let out = sim.block_on(async {
            timeout(Duration::from_secs(5), async {
                sleep(Duration::from_secs(1)).await;
                42
            })
            .await
        });
        assert_eq!(out, Ok(42));
        assert_eq!(sim.now(), SimTime::from_secs(1));
    }

    #[test]
    fn timeout_elapsed_reports_error_at_deadline() {
        let mut sim = Simulation::new();
        let out = sim.block_on(async {
            timeout(Duration::from_secs(2), sleep(Duration::from_secs(50))).await
        });
        assert_eq!(out, Err(Elapsed));
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn elapsed_displays() {
        assert!(Elapsed.to_string().contains("deadline"));
    }

    #[test]
    fn nested_sleeps_accumulate() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            for _ in 0..5 {
                sleep(Duration::from_millis(200)).await;
            }
            assert_eq!(now(), SimTime::from_secs(1));
        });
    }
}
