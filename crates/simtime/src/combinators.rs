//! Small future combinators for simulation code: [`join_all`] (await a
//! batch concurrently) and [`race`] (first of two).

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::executor::spawn;
use crate::join::JoinHandle;

/// Spawns every future and awaits all outputs, preserving input order.
///
/// Unlike sequentially awaiting, the futures run concurrently — in a
/// simulation that means their virtual-time activities overlap.
///
/// # Examples
///
/// ```
/// use kaas_simtime::{join_all, now, sleep, Simulation};
/// use std::time::Duration;
///
/// let mut sim = Simulation::new();
/// let outs = sim.block_on(async {
///     let futs = (1..=3u64).map(|i| async move {
///         sleep(Duration::from_secs(i)).await;
///         i
///     });
///     join_all(futs).await
/// });
/// assert_eq!(outs, vec![1, 2, 3]);
/// // All three slept concurrently: 3 s total, not 6 s.
/// assert_eq!(sim.now().as_secs_f64(), 3.0);
/// ```
pub async fn join_all<I, F>(futures: I) -> Vec<F::Output>
where
    I: IntoIterator<Item = F>,
    F: Future + 'static,
    F::Output: 'static,
{
    let handles: Vec<JoinHandle<F::Output>> = futures.into_iter().map(spawn).collect();
    let mut outputs = Vec::with_capacity(handles.len());
    for h in handles {
        outputs.push(h.await);
    }
    outputs
}

/// The winner of a [`race`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future finished first.
    Left(A),
    /// The second future finished first.
    Right(B),
}

/// Future returned by [`race`].
#[derive(Debug)]
#[must_use = "futures do nothing unless awaited"]
pub struct Race<A, B> {
    a: A,
    b: B,
}

impl<A: Future + Unpin, B: Future + Unpin> Future for Race<A, B> {
    type Output = Either<A::Output, B::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = Pin::into_inner(self);
        if let Poll::Ready(v) = Pin::new(&mut this.a).poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        if let Poll::Ready(v) = Pin::new(&mut this.b).poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    }
}

/// Races two futures; the loser is dropped when the winner resolves.
/// The first future wins ties (checked first at each poll).
///
/// # Examples
///
/// ```
/// use kaas_simtime::{race, sleep, Either, Simulation};
/// use std::time::Duration;
///
/// let mut sim = Simulation::new();
/// let won = sim.block_on(async {
///     race(sleep(Duration::from_secs(1)), sleep(Duration::from_secs(5))).await
/// });
/// assert!(matches!(won, Either::Left(())));
/// assert_eq!(sim.now().as_secs_f64(), 1.0);
/// ```
pub fn race<A, B>(a: A, b: B) -> Race<A, B>
where
    A: Future + Unpin,
    B: Future + Unpin,
{
    Race { a, b }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{now, sleep, Simulation};
    use std::time::Duration;

    #[test]
    fn join_all_preserves_order_under_reversed_completion() {
        let mut sim = Simulation::new();
        let outs = sim.block_on(async {
            let futs = (0..4u64).map(|i| async move {
                // Later items finish earlier.
                sleep(Duration::from_secs(10 - i)).await;
                i
            });
            join_all(futs).await
        });
        assert_eq!(outs, vec![0, 1, 2, 3]);
        assert_eq!(sim.now(), crate::SimTime::from_secs(10));
    }

    #[test]
    fn join_all_of_empty_is_empty() {
        let mut sim = Simulation::new();
        let outs: Vec<u8> =
            sim.block_on(async { join_all(Vec::<std::future::Ready<u8>>::new()).await });
        assert!(outs.is_empty());
    }

    #[test]
    fn race_right_can_win() {
        let mut sim = Simulation::new();
        let won = sim.block_on(async {
            race(sleep(Duration::from_secs(9)), sleep(Duration::from_secs(2))).await
        });
        assert!(matches!(won, Either::Right(())));
        assert_eq!(sim.now().as_secs_f64(), 2.0);
    }

    #[test]
    fn race_does_not_advance_past_the_winner() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            race(sleep(Duration::from_secs(3)), sleep(Duration::from_secs(7))).await;
            assert_eq!(now().as_secs_f64(), 3.0);
        });
        // The loser's timer was cancelled on drop: the clock stops at 3 s.
        assert_eq!(sim.now().as_secs_f64(), 3.0);
    }

    #[test]
    fn tie_goes_to_the_left() {
        let mut sim = Simulation::new();
        let won = sim.block_on(async {
            race(sleep(Duration::from_secs(1)), sleep(Duration::from_secs(1))).await
        });
        assert!(matches!(won, Either::Left(())));
    }
}
