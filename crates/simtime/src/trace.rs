//! [`Tracer`]: a lightweight, deterministic event log for simulations.
//!
//! Actors record labeled events at the current virtual instant; tests
//! and tools read the ordered log back (or render it as CSV) to inspect
//! causality without a debugger.

use std::cell::RefCell;
use std::rc::Rc;

use crate::executor::Handle;
use crate::time::SimTime;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Emitting actor (free-form, e.g. "server", "runner3").
    pub actor: String,
    /// What happened.
    pub label: String,
}

/// A shared, append-only event log.
///
/// # Examples
///
/// ```
/// use kaas_simtime::{Simulation, sleep, trace::Tracer};
/// use std::time::Duration;
///
/// let tracer = Tracer::new();
/// let t2 = tracer.clone();
/// let mut sim = Simulation::new();
/// sim.block_on(async move {
///     t2.record("client", "request sent");
///     sleep(Duration::from_millis(3)).await;
///     t2.record("client", "response received");
/// });
/// let log = tracer.events();
/// assert_eq!(log.len(), 2);
/// assert!(log[0].at < log[1].at);
/// ```
#[derive(Clone, Default)]
pub struct Tracer {
    events: Rc<RefCell<Vec<TraceEvent>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("events", &self.events.borrow().len())
            .finish()
    }
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an event at the current virtual time (or
    /// [`SimTime::ZERO`] outside a running simulation).
    pub fn record(&self, actor: impl Into<String>, label: impl Into<String>) {
        let at = Handle::try_current()
            .map(|h| h.now())
            .unwrap_or(SimTime::ZERO);
        self.events.borrow_mut().push(TraceEvent {
            at,
            actor: actor.into(),
            label: label.into(),
        });
    }

    /// Snapshot of all events, in record order (which is also time
    /// order, since the clock is monotone).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.borrow().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events emitted by one actor.
    pub fn by_actor(&self, actor: &str) -> Vec<TraceEvent> {
        self.events
            .borrow()
            .iter()
            .filter(|e| e.actor == actor)
            .cloned()
            .collect()
    }

    /// Renders the log as `time_s,actor,label` CSV lines.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for e in self.events.borrow().iter() {
            out.push_str(&format!(
                "{:.9},{},{}\n",
                e.at.as_secs_f64(),
                e.actor,
                e.label
            ));
        }
        out
    }

    /// Clears the log.
    pub fn clear(&self) {
        self.events.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sleep, spawn, Simulation};
    use std::time::Duration;

    #[test]
    fn events_carry_virtual_timestamps() {
        let tracer = Tracer::new();
        let t = tracer.clone();
        let mut sim = Simulation::new();
        sim.block_on(async move {
            t.record("a", "start");
            sleep(Duration::from_secs(2)).await;
            t.record("a", "end");
        });
        let log = tracer.events();
        assert_eq!(log[0].at, SimTime::ZERO);
        assert_eq!(log[1].at, SimTime::from_secs(2));
    }

    #[test]
    fn log_is_time_ordered_across_actors() {
        let tracer = Tracer::new();
        let mut sim = Simulation::new();
        for i in 0..5u64 {
            let t = tracer.clone();
            sim.spawn(async move {
                sleep(Duration::from_millis(i * 7)).await;
                t.record(format!("actor{i}"), "tick");
            });
        }
        sim.run();
        let log = tracer.events();
        assert_eq!(log.len(), 5);
        assert!(log.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn by_actor_filters() {
        let tracer = Tracer::new();
        let mut sim = Simulation::new();
        let (ta, tb) = (tracer.clone(), tracer.clone());
        sim.block_on(async move {
            let h = spawn(async move { tb.record("b", "x") });
            ta.record("a", "y");
            ta.record("a", "z");
            h.await;
        });
        assert_eq!(tracer.by_actor("a").len(), 2);
        assert_eq!(tracer.by_actor("b").len(), 1);
        assert!(tracer.by_actor("c").is_empty());
    }

    #[test]
    fn csv_and_clear() {
        let tracer = Tracer::new();
        tracer.record("outside", "no sim context");
        let csv = tracer.to_csv();
        assert!(csv.contains("0.000000000,outside,no sim context"));
        tracer.clear();
        assert!(tracer.is_empty());
    }
}
