//! Deterministic tracing for simulations: instant events and spans.
//!
//! Two sinks live here:
//!
//! * [`Tracer`] — a lightweight, append-only log of labeled *instant*
//!   events. Actors record at the current virtual instant; tests and
//!   tools read the ordered log back (or render it as CSV) to inspect
//!   causality without a debugger.
//! * [`SpanSink`] — a log of *spans* (named intervals with parent/child
//!   structure) that follows work across actors: one kernel invocation
//!   becomes a tree of spans from client serialization through queueing,
//!   cold start, device copies, and the reply. Spans export to the
//!   chrome://tracing JSON format via [`SpanSink::to_chrome_json`], and
//!   the export is **byte-identical** across identical runs — span ids,
//!   track ids, and timestamps are all derived from deterministic
//!   simulation state.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::executor::Handle;
use crate::time::SimTime;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Emitting actor (free-form, e.g. "server", "runner3").
    pub actor: String,
    /// What happened.
    pub label: String,
}

/// A shared, append-only event log.
///
/// # Examples
///
/// ```
/// use kaas_simtime::{Simulation, sleep, trace::Tracer};
/// use std::time::Duration;
///
/// let tracer = Tracer::new();
/// let t2 = tracer.clone();
/// let mut sim = Simulation::new();
/// sim.block_on(async move {
///     t2.record("client", "request sent");
///     sleep(Duration::from_millis(3)).await;
///     t2.record("client", "response received");
/// });
/// let log = tracer.events();
/// assert_eq!(log.len(), 2);
/// assert!(log[0].at < log[1].at);
/// ```
#[derive(Clone, Default)]
pub struct Tracer {
    events: Rc<RefCell<Vec<TraceEvent>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("events", &self.events.borrow().len())
            .finish()
    }
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an event at the current virtual time (or
    /// [`SimTime::ZERO`] outside a running simulation).
    pub fn record(&self, actor: impl Into<String>, label: impl Into<String>) {
        let at = Handle::try_current()
            .map(|h| h.now())
            .unwrap_or(SimTime::ZERO);
        self.events.borrow_mut().push(TraceEvent {
            at,
            actor: actor.into(),
            label: label.into(),
        });
    }

    /// Snapshot of all events, in record order (which is also time
    /// order, since the clock is monotone).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.borrow().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events emitted by one actor.
    pub fn by_actor(&self, actor: &str) -> Vec<TraceEvent> {
        self.events
            .borrow()
            .iter()
            .filter(|e| e.actor == actor)
            .cloned()
            .collect()
    }

    /// Renders the log as `time_s,actor,label` CSV lines.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for e in self.events.borrow().iter() {
            out.push_str(&format!(
                "{:.9},{},{}\n",
                e.at.as_secs_f64(),
                e.actor,
                e.label
            ));
        }
        out
    }

    /// Clears the log.
    pub fn clear(&self) {
        self.events.borrow_mut().clear();
    }
}

/// Identity of one span within a [`SpanSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "span{}", self.0)
    }
}

/// A named interval of virtual time on some track, optionally nested
/// under a parent span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Sink-unique identity.
    pub id: SpanId,
    /// Enclosing span, if any (`None` for roots).
    pub parent: Option<SpanId>,
    /// The actor/timeline this span belongs to (e.g. "client0",
    /// "server", "runner3"). Tracks map to chrome://tracing processes.
    pub track: String,
    /// What the interval covers (e.g. "serialize", "kernel_exec").
    pub name: String,
    /// Interval start.
    pub start: SimTime,
    /// Interval end (`start <= end`; clamped at record time).
    pub end: SimTime,
    /// Free-form key/value annotations, in insertion order.
    pub args: Vec<(String, String)>,
}

impl Span {
    /// Length of the interval.
    pub fn duration(&self) -> std::time::Duration {
        self.end.saturating_since(self.start)
    }
}

#[derive(Default)]
struct SpanState {
    spans: Vec<Span>,
    next_id: u64,
}

/// A shared, append-only span log with deterministic ids and a
/// chrome://tracing JSON exporter.
///
/// # Examples
///
/// ```
/// use kaas_simtime::{Simulation, sleep, now, trace::SpanSink};
/// use std::time::Duration;
///
/// let sink = SpanSink::new();
/// let s2 = sink.clone();
/// let mut sim = Simulation::new();
/// sim.block_on(async move {
///     let t0 = now();
///     sleep(Duration::from_millis(3)).await;
///     let root = s2.record("client", "invoke", t0, now(), None, vec![]);
///     s2.record("client", "serialize", t0, t0 + Duration::from_millis(1), Some(root), vec![]);
/// });
/// let spans = sink.spans();
/// assert_eq!(spans.len(), 2);
/// assert_eq!(spans[1].parent, Some(spans[0].id));
/// assert!(sink.to_chrome_json().contains("\"ph\":\"X\""));
/// ```
#[derive(Clone, Default)]
pub struct SpanSink {
    state: Rc<RefCell<SpanState>>,
}

impl std::fmt::Debug for SpanSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanSink")
            .field("spans", &self.state.borrow().spans.len())
            .finish()
    }
}

impl SpanSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed span and returns its id. Ids are allocated
    /// sequentially per sink, so identical runs allocate identical ids.
    /// An `end` before `start` is clamped to `start`.
    pub fn record(
        &self,
        track: impl Into<String>,
        name: impl Into<String>,
        start: SimTime,
        end: SimTime,
        parent: Option<SpanId>,
        args: Vec<(String, String)>,
    ) -> SpanId {
        let mut s = self.state.borrow_mut();
        let id = SpanId(s.next_id);
        s.next_id += 1;
        s.spans.push(Span {
            id,
            parent,
            track: track.into(),
            name: name.into(),
            start,
            end: end.max(start),
            args,
        });
        id
    }

    /// Opens a span whose id is allocated now but whose interval is
    /// recorded later, at [`OpenSpan::finish`] — so children can link to
    /// the parent's id while the parent is still in progress. `start`
    /// defaults to the current virtual time.
    pub fn open(
        &self,
        track: impl Into<String>,
        name: impl Into<String>,
        parent: Option<SpanId>,
    ) -> OpenSpan {
        let start = Handle::try_current()
            .map(|h| h.now())
            .unwrap_or(SimTime::ZERO);
        let id = {
            let mut s = self.state.borrow_mut();
            let id = SpanId(s.next_id);
            s.next_id += 1;
            id
        };
        OpenSpan {
            sink: self.clone(),
            id,
            parent,
            track: track.into(),
            name: name.into(),
            start,
            args: Vec::new(),
        }
    }

    fn record_with_id(&self, span: Span) {
        self.state.borrow_mut().spans.push(span);
    }

    /// Records an instant (zero-length) span at the current virtual time.
    pub fn mark(
        &self,
        track: impl Into<String>,
        name: impl Into<String>,
        parent: Option<SpanId>,
    ) -> SpanId {
        let at = Handle::try_current()
            .map(|h| h.now())
            .unwrap_or(SimTime::ZERO);
        self.record(track, name, at, at, parent, Vec::new())
    }

    /// Snapshot of all spans, in record order.
    pub fn spans(&self) -> Vec<Span> {
        self.state.borrow().spans.clone()
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.state.borrow().spans.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears the log (ids keep counting up, so later spans never reuse
    /// an id handed out before the clear).
    pub fn clear(&self) {
        self.state.borrow_mut().spans.clear();
    }

    /// All spans with no parent, in record order.
    pub fn roots(&self) -> Vec<Span> {
        self.state
            .borrow()
            .spans
            .iter()
            .filter(|s| s.parent.is_none())
            .cloned()
            .collect()
    }

    /// Direct children of `parent`, in record order.
    pub fn children_of(&self, parent: SpanId) -> Vec<Span> {
        self.state
            .borrow()
            .spans
            .iter()
            .filter(|s| s.parent == Some(parent))
            .cloned()
            .collect()
    }

    /// Renders the log as chrome://tracing "Trace Event Format" JSON
    /// (open in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)).
    ///
    /// Each track becomes a process (named via `process_name` metadata
    /// events, numbered in first-appearance order); each span becomes a
    /// complete (`"ph":"X"`) event with microsecond timestamps carrying
    /// nanosecond precision. The output depends only on the recorded
    /// spans, so identical runs produce byte-identical JSON.
    pub fn to_chrome_json(&self) -> String {
        let state = self.state.borrow();
        // Assign pids by first appearance, deterministically.
        let mut tracks: Vec<&str> = Vec::new();
        for span in &state.spans {
            if !tracks.iter().any(|t| *t == span.track) {
                tracks.push(&span.track);
            }
        }
        let pid_of = |track: &str| tracks.iter().position(|t| *t == track).unwrap_or(0);

        let mut out = String::from("[");
        let mut first = true;
        let push = |event: String, out: &mut String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push('\n');
            out.push_str(&event);
        };
        for (pid, track) in tracks.iter().enumerate() {
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    escape_json(track)
                ),
                &mut out,
                &mut first,
            );
        }
        for span in &state.spans {
            let mut args = format!("\"span\":{}", span.id.0);
            if let Some(p) = span.parent {
                let _ = write!(args, ",\"parent\":{}", p.0);
            }
            for (k, v) in &span.args {
                let _ = write!(args, ",\"{}\":\"{}\"", escape_json(k), escape_json(v));
            }
            let dur = span.end.saturating_since(span.start).as_nanos() as u64;
            push(
                format!(
                    "{{\"ph\":\"X\",\"pid\":{},\"tid\":0,\"name\":\"{}\",\
                     \"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
                    pid_of(&span.track),
                    escape_json(&span.name),
                    micros(span.start.as_nanos()),
                    micros(dur),
                ),
                &mut out,
                &mut first,
            );
        }
        out.push_str("\n]\n");
        out
    }
}

/// A span handed out by [`SpanSink::open`]: its [`SpanId`] already
/// exists (children may link to it) but the interval is only appended
/// to the sink when [`finish`](OpenSpan::finish) is called.
#[derive(Debug)]
pub struct OpenSpan {
    sink: SpanSink,
    id: SpanId,
    parent: Option<SpanId>,
    track: String,
    name: String,
    start: SimTime,
    args: Vec<(String, String)>,
}

impl OpenSpan {
    /// The pre-allocated id — usable as a parent before the span is
    /// finished.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Appends a key/value annotation.
    pub fn push_arg(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.args.push((key.into(), value.into()));
    }

    /// Records the span ending at the current virtual time and returns
    /// its id.
    pub fn finish(self) -> SpanId {
        let end = Handle::try_current()
            .map(|h| h.now())
            .unwrap_or(SimTime::ZERO);
        self.finish_at(end)
    }

    /// Records the span ending at `end` (clamped to its start) and
    /// returns its id.
    pub fn finish_at(self, end: SimTime) -> SpanId {
        let id = self.id;
        let sink = self.sink.clone();
        sink.record_with_id(Span {
            id,
            parent: self.parent,
            track: self.track,
            name: self.name,
            start: self.start,
            end: end.max(self.start),
            args: self.args,
        });
        id
    }
}

/// Formats a nanosecond count as microseconds with three decimals (the
/// trace-event `ts`/`dur` unit, preserving full nanosecond precision).
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sleep, spawn, Simulation};
    use std::time::Duration;

    #[test]
    fn events_carry_virtual_timestamps() {
        let tracer = Tracer::new();
        let t = tracer.clone();
        let mut sim = Simulation::new();
        sim.block_on(async move {
            t.record("a", "start");
            sleep(Duration::from_secs(2)).await;
            t.record("a", "end");
        });
        let log = tracer.events();
        assert_eq!(log[0].at, SimTime::ZERO);
        assert_eq!(log[1].at, SimTime::from_secs(2));
    }

    #[test]
    fn log_is_time_ordered_across_actors() {
        let tracer = Tracer::new();
        let mut sim = Simulation::new();
        for i in 0..5u64 {
            let t = tracer.clone();
            sim.spawn(async move {
                sleep(Duration::from_millis(i * 7)).await;
                t.record(format!("actor{i}"), "tick");
            });
        }
        sim.run();
        let log = tracer.events();
        assert_eq!(log.len(), 5);
        assert!(log.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn by_actor_filters() {
        let tracer = Tracer::new();
        let mut sim = Simulation::new();
        let (ta, tb) = (tracer.clone(), tracer.clone());
        sim.block_on(async move {
            let h = spawn(async move { tb.record("b", "x") });
            ta.record("a", "y");
            ta.record("a", "z");
            h.await;
        });
        assert_eq!(tracer.by_actor("a").len(), 2);
        assert_eq!(tracer.by_actor("b").len(), 1);
        assert!(tracer.by_actor("c").is_empty());
    }

    #[test]
    fn csv_and_clear() {
        let tracer = Tracer::new();
        tracer.record("outside", "no sim context");
        let csv = tracer.to_csv();
        assert!(csv.contains("0.000000000,outside,no sim context"));
        tracer.clear();
        assert!(tracer.is_empty());
    }

    #[test]
    fn span_ids_are_sequential_and_parents_link() {
        let sink = SpanSink::new();
        let root = sink.record(
            "a",
            "outer",
            SimTime::ZERO,
            SimTime::from_secs(1),
            None,
            vec![],
        );
        let child = sink.record(
            "a",
            "inner",
            SimTime::ZERO,
            SimTime::from_secs(1),
            Some(root),
            vec![],
        );
        assert_eq!(root, SpanId(0));
        assert_eq!(child, SpanId(1));
        assert_eq!(sink.roots().len(), 1);
        assert_eq!(sink.children_of(root).len(), 1);
        assert!(sink.children_of(child).is_empty());
    }

    #[test]
    fn span_end_is_clamped_to_start() {
        let sink = SpanSink::new();
        sink.record(
            "a",
            "backwards",
            SimTime::from_secs(2),
            SimTime::from_secs(1),
            None,
            vec![],
        );
        let s = &sink.spans()[0];
        assert_eq!(s.duration(), Duration::ZERO);
    }

    #[test]
    fn chrome_json_has_metadata_and_complete_events() {
        let sink = SpanSink::new();
        sink.record(
            "client0",
            "invoke",
            SimTime::from_nanos(1_500),
            SimTime::from_nanos(4_750),
            None,
            vec![("kernel".into(), "matmul".into())],
        );
        let json = sink.to_chrome_json();
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"name\":\"client0\""));
        // 1500 ns = 1.500 µs; 3250 ns duration = 3.250 µs.
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dur\":3.250"), "{json}");
        assert!(json.contains("\"kernel\":\"matmul\""));
    }

    #[test]
    fn chrome_json_is_deterministic() {
        let render = || {
            let sink = SpanSink::new();
            let mut sim = Simulation::new();
            let s = sink.clone();
            sim.block_on(async move {
                let t0 = crate::now();
                sleep(Duration::from_millis(7)).await;
                let root = s.record("x", "outer", t0, crate::now(), None, vec![]);
                s.mark("y", "tick", Some(root));
            });
            sink.to_chrome_json()
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn open_spans_allocate_ids_before_children_record() {
        let sink = SpanSink::new();
        let mut sim = Simulation::new();
        let s = sink.clone();
        sim.block_on(async move {
            let mut root = s.open("client0", "invoke", None);
            root.push_arg("kernel", "matmul");
            let t0 = crate::now();
            sleep(Duration::from_millis(2)).await;
            s.record(
                "client0",
                "serialize",
                t0,
                crate::now(),
                Some(root.id()),
                vec![],
            );
            sleep(Duration::from_millis(1)).await;
            root.finish();
        });
        let spans = sink.spans();
        // Child recorded first, but links to the root's pre-allocated id.
        assert_eq!(spans[0].name, "serialize");
        assert_eq!(spans[0].parent, Some(SpanId(0)));
        assert_eq!(spans[1].id, SpanId(0));
        assert_eq!(spans[1].duration(), Duration::from_millis(3));
        assert_eq!(sink.roots().len(), 1);
    }

    #[test]
    fn json_strings_are_escaped() {
        let sink = SpanSink::new();
        sink.record(
            "a\"b\\c",
            "line\nbreak",
            SimTime::ZERO,
            SimTime::ZERO,
            None,
            vec![],
        );
        let json = sink.to_chrome_json();
        assert!(json.contains("a\\\"b\\\\c"));
        assert!(json.contains("line\\nbreak"));
    }
}
