//! Property-based tests of the simulator's core guarantees.

use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use kaas_simtime::channel;
use kaas_simtime::sync::Semaphore;
use kaas_simtime::{now, sleep, spawn, SimTime, Simulation};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Virtual time observed inside tasks never decreases, regardless of
    /// how sleeps interleave.
    #[test]
    fn clock_is_monotone_across_tasks(delays in prop::collection::vec(0u64..2_000, 1..40)) {
        let mut sim = Simulation::new();
        let observed: Rc<RefCell<Vec<SimTime>>> = Rc::new(RefCell::new(Vec::new()));
        for &d in &delays {
            let observed = Rc::clone(&observed);
            sim.spawn(async move {
                sleep(Duration::from_micros(d)).await;
                observed.borrow_mut().push(now());
                sleep(Duration::from_micros(d / 2 + 1)).await;
                observed.borrow_mut().push(now());
            });
        }
        sim.run();
        let obs = observed.borrow();
        prop_assert_eq!(obs.len(), delays.len() * 2);
        // The recorded sequence (in event order) is sorted.
        let mut sorted = obs.clone();
        sorted.sort();
        prop_assert_eq!(&*obs, &sorted);
    }

    /// The final clock equals the maximum requested deadline.
    #[test]
    fn run_ends_at_last_deadline(delays in prop::collection::vec(1u64..5_000, 1..30)) {
        let mut sim = Simulation::new();
        for &d in &delays {
            sim.spawn(async move {
                sleep(Duration::from_micros(d)).await;
            });
        }
        let end = sim.run();
        let max = *delays.iter().max().unwrap();
        prop_assert_eq!(end, SimTime::ZERO + Duration::from_micros(max));
    }

    /// Unbounded channels deliver every message exactly once, in order,
    /// per sender.
    #[test]
    fn channel_is_lossless_and_fifo(msgs in prop::collection::vec(0u32..1000, 0..100)) {
        let mut sim = Simulation::new();
        let msgs2 = msgs.clone();
        let got = sim.block_on(async move {
            let (tx, mut rx) = channel::unbounded();
            spawn(async move {
                for (i, m) in msgs2.into_iter().enumerate() {
                    sleep(Duration::from_nanos((m as u64 * 7 + i as u64) % 97)).await;
                    tx.send(m).await.unwrap();
                }
            });
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        prop_assert_eq!(got, msgs);
    }

    /// Bounded channels never hold more than their capacity.
    #[test]
    fn bounded_channel_respects_capacity(
        cap in 1usize..8,
        n in 1usize..40,
    ) {
        let mut sim = Simulation::new();
        let peak = sim.block_on(async move {
            let (tx, mut rx) = channel::bounded::<usize>(cap);
            let peak = Rc::new(RefCell::new(0usize));
            let p2 = Rc::clone(&peak);
            let txl = tx.clone();
            drop(tx);
            spawn(async move {
                for i in 0..n {
                    txl.send(i).await.unwrap();
                    let len = txl.len();
                    let mut p = p2.borrow_mut();
                    if len > *p {
                        *p = len;
                    }
                }
            });
            let mut count = 0;
            while let Some(_) = rx.recv().await {
                count += 1;
                sleep(Duration::from_micros(1)).await;
            }
            assert_eq!(count, n);
            let p = *peak.borrow();
            p
        });
        prop_assert!(peak <= cap, "peak {peak} exceeded capacity {cap}");
    }

    /// A semaphore never over-admits, for any permit pattern.
    #[test]
    fn semaphore_never_overadmits(
        permits in 1usize..6,
        requests in prop::collection::vec((1usize..4, 1u64..500), 1..30),
    ) {
        let mut sim = Simulation::new();
        let max_permits = permits;
        let violation = sim.block_on(async move {
            let sem = Semaphore::new(max_permits);
            let in_use = Rc::new(RefCell::new((0usize, false)));
            let mut handles = Vec::new();
            for (want, hold_us) in requests {
                let want = want.min(max_permits);
                let sem = sem.clone();
                let in_use = Rc::clone(&in_use);
                handles.push(spawn(async move {
                    let _g = sem.acquire(want).await;
                    {
                        let mut s = in_use.borrow_mut();
                        s.0 += want;
                        if s.0 > max_permits {
                            s.1 = true;
                        }
                    }
                    sleep(Duration::from_micros(hold_us)).await;
                    in_use.borrow_mut().0 -= want;
                }));
            }
            for h in handles {
                h.await;
            }
            let v = in_use.borrow().1;
            v
        });
        prop_assert!(!violation, "semaphore admitted more than {max_permits} permits");
    }

    /// Two identical simulations give identical final clocks (determinism
    /// under arbitrary workloads).
    #[test]
    fn identical_runs_identical_clocks(delays in prop::collection::vec(0u64..10_000, 1..25)) {
        let run = |delays: Vec<u64>| {
            let mut sim = Simulation::new();
            for (i, d) in delays.into_iter().enumerate() {
                sim.spawn(async move {
                    for k in 0..3 {
                        sleep(Duration::from_nanos(d * (k + 1) + i as u64)).await;
                    }
                });
            }
            sim.run()
        };
        prop_assert_eq!(run(delays.clone()), run(delays));
    }
}
