//! Property-style tests of the simulator's core guarantees.
//!
//! These run many randomized cases from the in-tree deterministic RNG
//! ([`kaas_simtime::rng::DetRng`]) instead of an external property-test
//! framework, so the suite builds with no registry access. Enable with
//! `--features proptest-tests`.
#![cfg(feature = "proptest-tests")]

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use kaas_simtime::channel;
use kaas_simtime::rng::det_rng;
use kaas_simtime::sync::Semaphore;
use kaas_simtime::{now, sleep, spawn, SimTime, Simulation};

const CASES: u64 = 64;

/// Virtual time observed inside tasks never decreases, regardless of
/// how sleeps interleave.
#[test]
fn clock_is_monotone_across_tasks() {
    for case in 0..CASES {
        let mut rng = det_rng(0x51_0000 + case);
        let n = rng.gen_range(1..40usize);
        let delays: Vec<u64> = (0..n).map(|_| rng.gen_range(0..2_000u64)).collect();

        let mut sim = Simulation::new();
        let observed: Rc<RefCell<Vec<SimTime>>> = Rc::new(RefCell::new(Vec::new()));
        for &d in &delays {
            let observed = Rc::clone(&observed);
            sim.spawn(async move {
                sleep(Duration::from_micros(d)).await;
                observed.borrow_mut().push(now());
                sleep(Duration::from_micros(d / 2 + 1)).await;
                observed.borrow_mut().push(now());
            });
        }
        sim.run();
        let obs = observed.borrow();
        assert_eq!(obs.len(), delays.len() * 2);
        // The recorded sequence (in event order) is sorted.
        let mut sorted = obs.clone();
        sorted.sort();
        assert_eq!(&*obs, &sorted);
    }
}

/// The final clock equals the maximum requested deadline.
#[test]
fn run_ends_at_last_deadline() {
    for case in 0..CASES {
        let mut rng = det_rng(0x52_0000 + case);
        let n = rng.gen_range(1..30usize);
        let delays: Vec<u64> = (0..n).map(|_| rng.gen_range(1..5_000u64)).collect();

        let mut sim = Simulation::new();
        for &d in &delays {
            sim.spawn(async move {
                sleep(Duration::from_micros(d)).await;
            });
        }
        let end = sim.run();
        let max = *delays.iter().max().unwrap();
        assert_eq!(end, SimTime::ZERO + Duration::from_micros(max));
    }
}

/// Unbounded channels deliver every message exactly once, in order,
/// per sender.
#[test]
fn channel_is_lossless_and_fifo() {
    for case in 0..CASES {
        let mut rng = det_rng(0x53_0000 + case);
        let n = rng.gen_range(0..100usize);
        let msgs: Vec<u32> = (0..n).map(|_| rng.gen_range(0..1000u32)).collect();

        let mut sim = Simulation::new();
        let msgs2 = msgs.clone();
        let got = sim.block_on(async move {
            let (tx, mut rx) = channel::unbounded();
            spawn(async move {
                for (i, m) in msgs2.into_iter().enumerate() {
                    sleep(Duration::from_nanos((m as u64 * 7 + i as u64) % 97)).await;
                    tx.send(m).await.unwrap();
                }
            });
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        assert_eq!(got, msgs);
    }
}

/// Bounded channels never hold more than their capacity.
#[test]
fn bounded_channel_respects_capacity() {
    for case in 0..CASES {
        let mut rng = det_rng(0x54_0000 + case);
        let cap = rng.gen_range(1..8usize);
        let n = rng.gen_range(1..40usize);

        let mut sim = Simulation::new();
        let peak = sim.block_on(async move {
            let (tx, mut rx) = channel::bounded::<usize>(cap);
            let peak = Rc::new(RefCell::new(0usize));
            let p2 = Rc::clone(&peak);
            let txl = tx.clone();
            drop(tx);
            spawn(async move {
                for i in 0..n {
                    txl.send(i).await.unwrap();
                    let len = txl.len();
                    let mut p = p2.borrow_mut();
                    if len > *p {
                        *p = len;
                    }
                }
            });
            let mut count = 0;
            while rx.recv().await.is_some() {
                count += 1;
                sleep(Duration::from_micros(1)).await;
            }
            assert_eq!(count, n);
            let p = *peak.borrow();
            p
        });
        assert!(peak <= cap, "peak {peak} exceeded capacity {cap}");
    }
}

/// A semaphore never over-admits, for any permit pattern.
#[test]
fn semaphore_never_overadmits() {
    for case in 0..CASES {
        let mut rng = det_rng(0x55_0000 + case);
        let permits = rng.gen_range(1..6usize);
        let n = rng.gen_range(1..30usize);
        let requests: Vec<(usize, u64)> = (0..n)
            .map(|_| (rng.gen_range(1..4usize), rng.gen_range(1..500u64)))
            .collect();

        let mut sim = Simulation::new();
        let max_permits = permits;
        let violation = sim.block_on(async move {
            let sem = Semaphore::new(max_permits);
            let in_use = Rc::new(RefCell::new((0usize, false)));
            let mut handles = Vec::new();
            for (want, hold_us) in requests {
                let want = want.min(max_permits);
                let sem = sem.clone();
                let in_use = Rc::clone(&in_use);
                handles.push(spawn(async move {
                    let _g = sem.acquire(want).await;
                    {
                        let mut s = in_use.borrow_mut();
                        s.0 += want;
                        if s.0 > max_permits {
                            s.1 = true;
                        }
                    }
                    sleep(Duration::from_micros(hold_us)).await;
                    in_use.borrow_mut().0 -= want;
                }));
            }
            for h in handles {
                h.await;
            }
            let v = in_use.borrow().1;
            v
        });
        assert!(
            !violation,
            "semaphore admitted more than {max_permits} permits"
        );
    }
}

/// Two identical simulations give identical final clocks (determinism
/// under arbitrary workloads).
#[test]
fn identical_runs_identical_clocks() {
    for case in 0..CASES {
        let mut rng = det_rng(0x56_0000 + case);
        let n = rng.gen_range(1..25usize);
        let delays: Vec<u64> = (0..n).map(|_| rng.gen_range(0..10_000u64)).collect();

        let run = |delays: Vec<u64>| {
            let mut sim = Simulation::new();
            for (i, d) in delays.into_iter().enumerate() {
                sim.spawn(async move {
                    for k in 0..3 {
                        sleep(Duration::from_nanos(d * (k + 1) + i as u64)).await;
                    }
                });
            }
            sim.run()
        };
        assert_eq!(run(delays.clone()), run(delays));
    }
}
