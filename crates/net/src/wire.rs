//! A unidirectional, order-preserving message pipe with link timing.
//!
//! A [`Wire`] models a TCP-like byte stream at message granularity:
//! transmissions serialize on the link (bandwidth sharing), then propagate
//! for the link latency, and arrive in order. Multiple messages may be "in
//! flight" (transmitted but still propagating) simultaneously, so long
//! fat pipes behave correctly.

use kaas_simtime::channel::{self, Receiver, Sender};
use kaas_simtime::sync::Semaphore;
use kaas_simtime::{sleep, spawn};

use crate::profile::LinkProfile;

/// A message travelling over a wire: an application value annotated with
/// its on-wire size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<T> {
    /// Application payload.
    pub body: T,
    /// Wire size in bytes (drives transmission time).
    pub bytes: u64,
}

impl<T> Frame<T> {
    /// Creates a frame of `bytes` on-wire size.
    pub fn new(body: T, bytes: u64) -> Self {
        Frame { body, bytes }
    }
}

/// Sending half of a [`wire`].
pub struct WireSender<T> {
    profile: LinkProfile,
    link: Semaphore,
    tx: Sender<Frame<T>>,
}

impl<T> std::fmt::Debug for WireSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireSender")
            .field("profile", &self.profile)
            .finish()
    }
}

impl<T> Clone for WireSender<T> {
    fn clone(&self) -> Self {
        WireSender {
            profile: self.profile,
            link: self.link.clone(),
            tx: self.tx.clone(),
        }
    }
}

/// Receiving half of a [`wire`].
pub struct WireReceiver<T> {
    rx: Receiver<Frame<T>>,
}

impl<T> std::fmt::Debug for WireReceiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireReceiver").finish_non_exhaustive()
    }
}

/// Creates a unidirectional wire with the given link timing.
pub fn wire<T: 'static>(profile: LinkProfile) -> (WireSender<T>, WireReceiver<T>) {
    let (tx, rx) = channel::unbounded();
    (
        WireSender {
            profile,
            link: Semaphore::new(1),
            tx,
        },
        WireReceiver { rx },
    )
}

/// Error returned by [`WireSender::send`] when the receiving endpoint has
/// been dropped before transmission begins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire peer disconnected")
    }
}

impl std::error::Error for Disconnected {}

impl<T: 'static> WireSender<T> {
    /// Transmits `frame`: waits for the link (FIFO), spends the
    /// transmission time, then lets the frame propagate in the background
    /// and delivers it after the link latency.
    ///
    /// Resolves when transmission completes (the sender is free again),
    /// *not* when the frame arrives — like a socket write returning once
    /// the bytes hit the send buffer/wire.
    ///
    /// # Errors
    ///
    /// Returns [`Disconnected`] if the receiver is gone.
    pub async fn send(&self, frame: Frame<T>) -> Result<(), Disconnected> {
        if !self.tx.is_open() {
            return Err(Disconnected);
        }
        let _guard = self.link.acquire(1).await;
        sleep(self.profile.transmission_time(frame.bytes)).await;
        let latency = self.profile.latency;
        let tx = self.tx.clone();
        // Propagation happens off the sender's critical path so the link
        // can pipeline subsequent transmissions.
        spawn(async move {
            sleep(latency).await;
            let _ = tx.send(frame).await;
        });
        Ok(())
    }

    /// Transmits and waits for full delivery (transmission + propagation).
    ///
    /// # Errors
    ///
    /// Returns [`Disconnected`] if the receiver is gone.
    pub async fn send_and_flush(&self, frame: Frame<T>) -> Result<(), Disconnected> {
        if !self.tx.is_open() {
            return Err(Disconnected);
        }
        let _guard = self.link.acquire(1).await;
        sleep(self.profile.transfer_time(frame.bytes)).await;
        self.tx.send(frame).await.map_err(|_| Disconnected)
    }

    /// The link timing profile.
    pub fn profile(&self) -> LinkProfile {
        self.profile
    }

    /// Whether the receiving endpoint still exists.
    pub fn is_open(&self) -> bool {
        self.tx.is_open()
    }
}

impl<T> WireReceiver<T> {
    /// Receives the next frame; `None` once all senders are gone and the
    /// pipe is drained.
    pub async fn recv(&mut self) -> Option<Frame<T>> {
        self.rx.recv().await
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<Frame<T>> {
        self.rx.try_recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::LinkProfile;
    use kaas_simtime::{now, Simulation};
    use std::time::Duration;

    fn test_link() -> LinkProfile {
        // 1 MB/s, 10 ms latency, no per-message overhead: easy arithmetic.
        LinkProfile::new(Duration::from_millis(10), 1.0e6)
    }

    #[test]
    fn frame_arrives_after_transmission_plus_latency() {
        let mut sim = Simulation::new();
        let arrived = sim.block_on(async {
            let (tx, mut rx) = wire::<&str>(test_link());
            spawn(async move {
                tx.send(Frame::new("hello", 1_000_000)).await.unwrap();
            });
            rx.recv().await.expect("frame");
            now()
        });
        // 1 s transmission + 10 ms latency.
        assert!((arrived.as_secs_f64() - 1.01).abs() < 1e-9);
    }

    #[test]
    fn messages_arrive_in_order_and_pipeline() {
        let mut sim = Simulation::new();
        let (order, t_last) = sim.block_on(async {
            let (tx, mut rx) = wire::<u32>(test_link());
            spawn(async move {
                for i in 0..3 {
                    tx.send(Frame::new(i, 500_000)).await.unwrap();
                }
            });
            let mut order = Vec::new();
            while order.len() < 3 {
                order.push(rx.recv().await.unwrap().body);
            }
            (order, now())
        });
        assert_eq!(order, vec![0, 1, 2]);
        // Three 0.5 s transmissions serialize; last arrives at 1.5 s + 10 ms,
        // NOT at 3 × (0.5 + 0.01): propagation overlaps transmission.
        assert!((t_last.as_secs_f64() - 1.51).abs() < 1e-9);
    }

    #[test]
    fn send_returns_at_transmission_end() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let (tx, _rx) = wire::<u8>(test_link());
            tx.send(Frame::new(1, 1_000_000)).await.unwrap();
            now()
        });
        assert!(
            (t.as_secs_f64() - 1.0).abs() < 1e-9,
            "send resolves pre-latency"
        );
    }

    #[test]
    fn send_and_flush_includes_latency() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let (tx, _rx) = wire::<u8>(test_link());
            tx.send_and_flush(Frame::new(1, 1_000_000)).await.unwrap();
            now()
        });
        assert!((t.as_secs_f64() - 1.01).abs() < 1e-9);
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let mut sim = Simulation::new();
        let out = sim.block_on(async {
            let (tx, rx) = wire::<u8>(test_link());
            drop(rx);
            assert!(!tx.is_open());
            tx.send(Frame::new(1, 10)).await
        });
        assert_eq!(out, Err(Disconnected));
    }

    #[test]
    fn concurrent_senders_share_the_link() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let (tx, mut rx) = wire::<u32>(test_link());
            for i in 0..4u32 {
                let tx = tx.clone();
                spawn(async move {
                    tx.send(Frame::new(i, 250_000)).await.unwrap();
                });
            }
            for _ in 0..4 {
                rx.recv().await.unwrap();
            }
            now()
        });
        // 4 × 0.25 s serialized + 10 ms propagation of the last frame.
        assert!((t.as_secs_f64() - 1.01).abs() < 1e-9);
    }
}
