//! A unidirectional, order-preserving message pipe with link timing.
//!
//! A [`Wire`] models a TCP-like byte stream at message granularity:
//! transmissions serialize on the link (bandwidth sharing), then propagate
//! for the link latency, and arrive in order. Multiple messages may be "in
//! flight" (transmitted but still propagating) simultaneously, so long
//! fat pipes behave correctly.
//!
//! A [`Frame`] carries whatever the application calls one message — the
//! KaaS protocol coalesces a whole client batch into a single frame
//! (`RequestFrame::Batch` in `kaas-core`), so the batch pays one
//! transmission slot and one propagation latency instead of one per
//! call; its `bytes` field is the coalesced wire size.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use kaas_simtime::channel::{self, Receiver, Sender};
use kaas_simtime::sync::Semaphore;
use kaas_simtime::{sleep, spawn};

use crate::profile::LinkProfile;

#[derive(Debug, Default)]
struct LinkFaultState {
    extra_delay: Cell<Duration>,
    drop_next: Cell<u32>,
    dropped: Cell<u64>,
}

/// A shared fault-injection handle for one wire direction.
///
/// Every [`WireSender`] owns one; clones share state, so a handle taken
/// from a connection keeps steering the link afterwards. Two fault
/// modes, both deterministic:
///
/// * **delay spike** — [`set_extra_delay`](LinkFault::set_extra_delay)
///   adds a fixed extra propagation delay to every frame until cleared.
/// * **drop** — [`drop_next`](LinkFault::drop_next) silently discards
///   the next *n* frames after transmission (the sender still pays the
///   transmission time, like a packet lost past the NIC). The receiver
///   never sees them; recovery is the caller's timeout.
#[derive(Debug, Clone, Default)]
pub struct LinkFault {
    state: Rc<LinkFaultState>,
}

impl LinkFault {
    /// Creates an inert handle (no delay, no drops).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the extra propagation delay added to every subsequent frame
    /// (pass [`Duration::ZERO`] to end the spike).
    pub fn set_extra_delay(&self, extra: Duration) {
        self.state.extra_delay.set(extra);
    }

    /// The currently injected extra delay.
    pub fn extra_delay(&self) -> Duration {
        self.state.extra_delay.get()
    }

    /// Arms the link to drop the next `n` frames.
    pub fn drop_next(&self, n: u32) {
        self.state.drop_next.set(self.state.drop_next.get() + n);
    }

    /// Total frames dropped by this handle so far.
    pub fn dropped(&self) -> u64 {
        self.state.dropped.get()
    }

    /// Consumes one armed drop, returning whether the frame should be
    /// discarded.
    fn take_drop(&self) -> bool {
        let n = self.state.drop_next.get();
        if n > 0 {
            self.state.drop_next.set(n - 1);
            self.state.dropped.set(self.state.dropped.get() + 1);
            true
        } else {
            false
        }
    }
}

/// A message travelling over a wire: an application value annotated with
/// its on-wire size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<T> {
    /// Application payload.
    pub body: T,
    /// Wire size in bytes (drives transmission time).
    pub bytes: u64,
}

impl<T> Frame<T> {
    /// Creates a frame of `bytes` on-wire size.
    pub fn new(body: T, bytes: u64) -> Self {
        Frame { body, bytes }
    }
}

/// Sending half of a [`wire`].
pub struct WireSender<T> {
    profile: LinkProfile,
    link: Semaphore,
    tx: Sender<Frame<T>>,
    fault: LinkFault,
}

impl<T> std::fmt::Debug for WireSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireSender")
            .field("profile", &self.profile)
            .finish()
    }
}

impl<T> Clone for WireSender<T> {
    fn clone(&self) -> Self {
        WireSender {
            profile: self.profile,
            link: self.link.clone(),
            tx: self.tx.clone(),
            fault: self.fault.clone(),
        }
    }
}

/// Receiving half of a [`wire`].
pub struct WireReceiver<T> {
    rx: Receiver<Frame<T>>,
}

impl<T> std::fmt::Debug for WireReceiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireReceiver").finish_non_exhaustive()
    }
}

/// Creates a unidirectional wire with the given link timing.
pub fn wire<T: 'static>(profile: LinkProfile) -> (WireSender<T>, WireReceiver<T>) {
    let (tx, rx) = channel::unbounded();
    (
        WireSender {
            profile,
            link: Semaphore::new(1),
            tx,
            fault: LinkFault::new(),
        },
        WireReceiver { rx },
    )
}

/// Error returned by [`WireSender::send`] when the receiving endpoint has
/// been dropped before transmission begins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire peer disconnected")
    }
}

impl std::error::Error for Disconnected {}

impl<T: 'static> WireSender<T> {
    /// Transmits `frame`: waits for the link (FIFO), spends the
    /// transmission time, then lets the frame propagate in the background
    /// and delivers it after the link latency.
    ///
    /// Resolves when transmission completes (the sender is free again),
    /// *not* when the frame arrives — like a socket write returning once
    /// the bytes hit the send buffer/wire.
    ///
    /// # Errors
    ///
    /// Returns [`Disconnected`] if the receiver is gone.
    pub async fn send(&self, frame: Frame<T>) -> Result<(), Disconnected> {
        if !self.tx.is_open() {
            return Err(Disconnected);
        }
        let _guard = self.link.acquire(1).await;
        sleep(self.profile.transmission_time(frame.bytes)).await;
        if self.fault.take_drop() {
            // The frame is lost past the NIC: the sender already paid the
            // transmission time, the receiver never hears about it.
            return Ok(());
        }
        let latency = self.profile.latency + self.fault.extra_delay();
        let tx = self.tx.clone();
        // Propagation happens off the sender's critical path so the link
        // can pipeline subsequent transmissions.
        spawn(async move {
            sleep(latency).await;
            let _ = tx.send(frame).await;
        });
        Ok(())
    }

    /// Transmits and waits for full delivery (transmission + propagation).
    ///
    /// # Errors
    ///
    /// Returns [`Disconnected`] if the receiver is gone.
    pub async fn send_and_flush(&self, frame: Frame<T>) -> Result<(), Disconnected> {
        if !self.tx.is_open() {
            return Err(Disconnected);
        }
        let _guard = self.link.acquire(1).await;
        sleep(self.profile.transmission_time(frame.bytes)).await;
        if self.fault.take_drop() {
            return Ok(());
        }
        sleep(self.profile.latency + self.fault.extra_delay()).await;
        self.tx.send(frame).await.map_err(|_| Disconnected)
    }

    /// The link timing profile.
    pub fn profile(&self) -> LinkProfile {
        self.profile
    }

    /// The fault-injection handle steering this wire direction (shared
    /// across clones of the sender).
    pub fn fault(&self) -> LinkFault {
        self.fault.clone()
    }

    /// Whether the receiving endpoint still exists.
    pub fn is_open(&self) -> bool {
        self.tx.is_open()
    }
}

impl<T> WireReceiver<T> {
    /// Receives the next frame; `None` once all senders are gone and the
    /// pipe is drained.
    pub async fn recv(&mut self) -> Option<Frame<T>> {
        self.rx.recv().await
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<Frame<T>> {
        self.rx.try_recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::LinkProfile;
    use kaas_simtime::{now, Simulation};
    use std::time::Duration;

    fn test_link() -> LinkProfile {
        // 1 MB/s, 10 ms latency, no per-message overhead: easy arithmetic.
        LinkProfile::new(Duration::from_millis(10), 1.0e6)
    }

    #[test]
    fn frame_arrives_after_transmission_plus_latency() {
        let mut sim = Simulation::new();
        let arrived = sim.block_on(async {
            let (tx, mut rx) = wire::<&str>(test_link());
            spawn(async move {
                tx.send(Frame::new("hello", 1_000_000)).await.unwrap();
            });
            rx.recv().await.expect("frame");
            now()
        });
        // 1 s transmission + 10 ms latency.
        assert!((arrived.as_secs_f64() - 1.01).abs() < 1e-9);
    }

    #[test]
    fn messages_arrive_in_order_and_pipeline() {
        let mut sim = Simulation::new();
        let (order, t_last) = sim.block_on(async {
            let (tx, mut rx) = wire::<u32>(test_link());
            spawn(async move {
                for i in 0..3 {
                    tx.send(Frame::new(i, 500_000)).await.unwrap();
                }
            });
            let mut order = Vec::new();
            while order.len() < 3 {
                order.push(rx.recv().await.unwrap().body);
            }
            (order, now())
        });
        assert_eq!(order, vec![0, 1, 2]);
        // Three 0.5 s transmissions serialize; last arrives at 1.5 s + 10 ms,
        // NOT at 3 × (0.5 + 0.01): propagation overlaps transmission.
        assert!((t_last.as_secs_f64() - 1.51).abs() < 1e-9);
    }

    #[test]
    fn send_returns_at_transmission_end() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let (tx, _rx) = wire::<u8>(test_link());
            tx.send(Frame::new(1, 1_000_000)).await.unwrap();
            now()
        });
        assert!(
            (t.as_secs_f64() - 1.0).abs() < 1e-9,
            "send resolves pre-latency"
        );
    }

    #[test]
    fn send_and_flush_includes_latency() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let (tx, _rx) = wire::<u8>(test_link());
            tx.send_and_flush(Frame::new(1, 1_000_000)).await.unwrap();
            now()
        });
        assert!((t.as_secs_f64() - 1.01).abs() < 1e-9);
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let mut sim = Simulation::new();
        let out = sim.block_on(async {
            let (tx, rx) = wire::<u8>(test_link());
            drop(rx);
            assert!(!tx.is_open());
            tx.send(Frame::new(1, 10)).await
        });
        assert_eq!(out, Err(Disconnected));
    }

    #[test]
    fn dropped_frames_cost_transmission_but_never_arrive() {
        let mut sim = Simulation::new();
        let (got, dropped, t) = sim.block_on(async {
            let (tx, mut rx) = wire::<u32>(test_link());
            tx.fault().drop_next(1);
            tx.send(Frame::new(1, 1_000_000)).await.unwrap();
            let t_after_drop = now();
            // The dropped frame still held the link for its 1 s
            // transmission time.
            assert!((t_after_drop.as_secs_f64() - 1.0).abs() < 1e-9);
            tx.send(Frame::new(2, 1_000_000)).await.unwrap();
            let got = rx.recv().await.unwrap().body;
            (got, tx.fault().dropped(), now())
        });
        assert_eq!(got, 2, "the dropped frame is never delivered");
        assert_eq!(dropped, 1);
        assert!((t.as_secs_f64() - 2.01).abs() < 1e-9);
    }

    #[test]
    fn extra_delay_spikes_propagation() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let (tx, mut rx) = wire::<u8>(test_link());
            tx.fault().set_extra_delay(Duration::from_millis(90));
            spawn(async move {
                tx.send(Frame::new(1, 1_000_000)).await.unwrap();
            });
            rx.recv().await.unwrap();
            now()
        });
        // 1 s transmission + 10 ms latency + 90 ms injected delay.
        assert!((t.as_secs_f64() - 1.1).abs() < 1e-9, "t={t:?}");
    }

    #[test]
    fn concurrent_senders_share_the_link() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let (tx, mut rx) = wire::<u32>(test_link());
            for i in 0..4u32 {
                let tx = tx.clone();
                spawn(async move {
                    tx.send(Frame::new(i, 250_000)).await.unwrap();
                });
            }
            for _ in 0..4 {
                rx.recv().await.unwrap();
            }
            now()
        });
        // 4 × 0.25 s serialized + 10 ms propagation of the last frame.
        assert!((t.as_secs_f64() - 1.01).abs() < 1e-9);
    }
}
