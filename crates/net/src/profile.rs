//! Cost profiles for links, serialization, and memory copies.

use std::time::Duration;

/// Byte-size helpers used across the workspace.
pub mod size {
    /// One kibibyte.
    pub const KIB: u64 = 1024;
    /// One mebibyte.
    pub const MIB: u64 = 1024 * KIB;
    /// One gibibyte.
    pub const GIB: u64 = 1024 * MIB;
}

/// Timing model of a network link: fixed one-way latency plus a serial
/// transmission time proportional to message size.
///
/// # Examples
///
/// ```
/// use kaas_net::LinkProfile;
///
/// let lan = LinkProfile::lan_1gbps();
/// // A 1 MB message takes ~8 ms of transmission plus 75 µs propagation.
/// assert!(lan.transfer_time(1_000_000).as_secs_f64() > 0.008);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// One-way propagation delay.
    pub latency: Duration,
    /// Transmission rate in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed per-message processing overhead (NIC, kernel, framing).
    pub per_message_overhead: Duration,
}

impl LinkProfile {
    /// Same-host loopback: negligible latency, memory-speed bandwidth.
    pub fn loopback() -> Self {
        LinkProfile {
            latency: Duration::from_micros(5),
            bandwidth_bytes_per_sec: 8.0e9,
            per_message_overhead: Duration::from_micros(10),
        }
    }

    /// The paper's client↔server link: 1 Gbps Ethernet, 0.15 ms RTT
    /// (§5.3), i.e. 75 µs one-way.
    pub fn lan_1gbps() -> Self {
        LinkProfile {
            latency: Duration::from_micros(75),
            bandwidth_bytes_per_sec: 1.0e9 / 8.0,
            per_message_overhead: Duration::from_micros(20),
        }
    }

    /// An RDMA-class fabric (future-work profile from §6): single-digit
    /// microsecond latency and 100 Gbps bandwidth, no kernel overhead.
    pub fn rdma_100g() -> Self {
        LinkProfile {
            latency: Duration::from_micros(2),
            bandwidth_bytes_per_sec: 100.0e9 / 8.0,
            per_message_overhead: Duration::from_nanos(500),
        }
    }

    /// Creates a custom profile.
    pub fn new(latency: Duration, bandwidth_bytes_per_sec: f64) -> Self {
        assert!(bandwidth_bytes_per_sec > 0.0, "bandwidth must be positive");
        LinkProfile {
            latency,
            bandwidth_bytes_per_sec,
            per_message_overhead: Duration::ZERO,
        }
    }

    /// Serial transmission time for a message of `bytes` (excludes
    /// propagation latency).
    pub fn transmission_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
            + self.per_message_overhead
    }

    /// End-to-end time for a single message of `bytes` on an idle link.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        self.transmission_time(bytes) + self.latency
    }
}

/// CPU-side cost of converting a payload to/from wire format.
///
/// Calibrated to an interpreted-language serializer (the paper's prototype
/// pickles Python objects): §5.3 observes 490–832 ms of added delay for
/// multi-megabyte genetic-algorithm payloads, which a ~55 MB/s
/// serialization rate over a 1 Gbps link reproduces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SerializationProfile {
    /// Serialization/deserialization throughput in bytes per second.
    pub bytes_per_sec: f64,
    /// Fixed per-call overhead (object graph walk, buffers).
    pub per_call: Duration,
}

impl SerializationProfile {
    /// Interpreted-language serializer (Python pickle class).
    pub fn python_pickle() -> Self {
        SerializationProfile {
            bytes_per_sec: 55.0e6,
            per_call: Duration::from_micros(200),
        }
    }

    /// Buffer-protocol serialization of large numeric arrays (numpy
    /// pickle protocol 5 class): fast enough that §5.3 "cannot observe a
    /// difference in execution time between in-band and out-of-band data
    /// transfer" for array payloads.
    pub fn numpy() -> Self {
        SerializationProfile {
            bytes_per_sec: 1.2e9,
            per_call: Duration::from_micros(300),
        }
    }

    /// A fast binary serializer (bincode class).
    pub fn binary() -> Self {
        SerializationProfile {
            bytes_per_sec: 2.0e9,
            per_call: Duration::from_micros(5),
        }
    }

    /// Time to serialize (or deserialize) `bytes`.
    pub fn time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec) + self.per_call
    }
}

/// Cost of a same-host shared-memory copy, used for out-of-band data
/// transfer (§4.1: "a shared memory region may be defined by the client,
/// which can then be accessed by the task runner").
///
/// Calibrated so KaaS invocation overhead equals the baseline's at
/// 20 000 × 20 000 matrices (Fig. 7): ≈ 17 GB/s effective copy bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemcpyProfile {
    /// Copy throughput in bytes per second.
    pub bytes_per_sec: f64,
}

impl MemcpyProfile {
    /// Host DDR4 shared-memory copy.
    pub fn host_ddr4() -> Self {
        MemcpyProfile {
            bytes_per_sec: 17.0e9,
        }
    }

    /// Time to copy `bytes`.
    pub fn time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_rtt_matches_paper() {
        let lan = LinkProfile::lan_1gbps();
        // 0.15 ms RTT => 75 µs one-way.
        assert_eq!(lan.latency * 2, Duration::from_micros(150));
    }

    #[test]
    fn transmission_scales_with_bytes() {
        let lan = LinkProfile::lan_1gbps();
        let t1 = lan.transmission_time(1_000_000);
        let t2 = lan.transmission_time(2_000_000);
        assert!(t2 > t1);
        let delta = (t2 - t1).as_secs_f64();
        assert!(
            (delta - 0.008).abs() < 1e-4,
            "1 MB at 1 Gbps ≈ 8 ms, got {delta}"
        );
    }

    #[test]
    fn loopback_is_much_faster_than_lan() {
        let msg = 10 * size::MIB;
        assert!(
            LinkProfile::loopback().transfer_time(msg)
                < LinkProfile::lan_1gbps().transfer_time(msg) / 10
        );
    }

    #[test]
    fn rdma_beats_lan_on_latency_and_bandwidth() {
        let rdma = LinkProfile::rdma_100g();
        let lan = LinkProfile::lan_1gbps();
        assert!(rdma.latency < lan.latency);
        assert!(rdma.transfer_time(size::MIB) < lan.transfer_time(size::MIB));
    }

    #[test]
    fn pickle_much_slower_than_binary() {
        let b = 50 * size::MIB;
        assert!(
            SerializationProfile::python_pickle().time(b)
                > SerializationProfile::binary().time(b) * 10
        );
    }

    #[test]
    fn memcpy_time_linear() {
        let m = MemcpyProfile::host_ddr4();
        let t = m.time(17_000_000_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = LinkProfile::new(Duration::ZERO, 0.0);
    }
}
