//! Bidirectional connections, listeners, and a tiny in-simulation
//! "network" with named endpoints — the TCP analogue the KaaS prototype
//! builds on (§4.1: client ↔ KaaS server ↔ task runners all speak TCP).
//!
//! The `Out`/`In` payload types are opaque here; the KaaS protocol
//! instantiates them with framed envelopes (`RequestFrame` /
//! `ResponseFrame` in `kaas-core`) so one [`send`](Connection::send)
//! can carry either a single call or a coalesced batch — batching is
//! purely an application-level choice of what constitutes a frame, and
//! replies coalesce symmetrically on the return wire.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use kaas_simtime::channel::{self, Receiver, Sender};
use kaas_simtime::trace::{SpanId, SpanSink};
use kaas_simtime::{now, sleep};

use crate::profile::LinkProfile;
use crate::wire::{wire, Disconnected, Frame, LinkFault, WireReceiver, WireSender};

/// One side of a bidirectional connection: sends `Out` frames, receives
/// `In` frames.
#[derive(Debug)]
pub struct Connection<Out, In> {
    tx: WireSender<Out>,
    rx: WireReceiver<In>,
    tracer: Option<(SpanSink, String)>,
}

impl<Out: 'static, In: 'static> Connection<Out, In> {
    /// Sends a frame (resolves at end of transmission; delivery happens
    /// after the link latency).
    ///
    /// # Errors
    ///
    /// Returns [`Disconnected`] if the peer is gone.
    pub async fn send(&self, body: Out, bytes: u64) -> Result<(), Disconnected> {
        self.tx.send(Frame::new(body, bytes)).await
    }

    /// Attaches a span sink: every traced send records a `net_send` span
    /// on `track` covering the transmission time (see
    /// [`send_traced`](Connection::send_traced)).
    pub fn set_tracer(&mut self, sink: SpanSink, track: impl Into<String>) {
        self.tracer = Some((sink, track.into()));
    }

    /// Like [`send`](Connection::send), but records a `net_send` span
    /// (child of `parent`, annotated with the frame size) when a tracer
    /// is attached via [`set_tracer`](Connection::set_tracer).
    ///
    /// # Errors
    ///
    /// Returns [`Disconnected`] if the peer is gone.
    pub async fn send_traced(
        &self,
        body: Out,
        bytes: u64,
        parent: Option<SpanId>,
    ) -> Result<(), Disconnected> {
        match &self.tracer {
            Some((sink, track)) => {
                let t0 = now();
                let result = self.tx.send(Frame::new(body, bytes)).await;
                sink.record(
                    track.clone(),
                    "net_send",
                    t0,
                    now(),
                    parent,
                    vec![("bytes".into(), bytes.to_string())],
                );
                result
            }
            None => self.send(body, bytes).await,
        }
    }

    /// Receives the next frame; `None` when the peer hung up.
    pub async fn recv(&mut self) -> Option<Frame<In>> {
        self.rx.recv().await
    }

    /// The link profile of the sending direction.
    pub fn profile(&self) -> LinkProfile {
        self.tx.profile()
    }

    /// The fault-injection handle for the sending direction (shared with
    /// every clone of the underlying wire — see [`LinkFault`]).
    pub fn fault(&self) -> LinkFault {
        self.tx.fault()
    }

    /// Whether the peer's receiving half still exists.
    pub fn is_open(&self) -> bool {
        self.tx.is_open()
    }

    /// Splits into independently owned halves.
    pub fn split(self) -> (WireSender<Out>, WireReceiver<In>) {
        (self.tx, self.rx)
    }
}

/// Creates a directly-wired connection pair (no listener involved), with
/// symmetric link timing.
pub fn pair<A: 'static, B: 'static>(profile: LinkProfile) -> (Connection<A, B>, Connection<B, A>) {
    let (atx, arx) = wire::<A>(profile);
    let (btx, brx) = wire::<B>(profile);
    (
        Connection {
            tx: atx,
            rx: brx,
            tracer: None,
        },
        Connection {
            tx: btx,
            rx: arx,
            tracer: None,
        },
    )
}

/// Errors from [`Network::connect`] / [`Network::listen`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No listener is bound to the address.
    ConnectionRefused(String),
    /// The address already has a listener.
    AddrInUse(String),
    /// The listener was dropped while connecting.
    ListenerClosed(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::ConnectionRefused(a) => write!(f, "connection refused: {a}"),
            NetError::AddrInUse(a) => write!(f, "address in use: {a}"),
            NetError::ListenerClosed(a) => write!(f, "listener closed: {a}"),
        }
    }
}

impl std::error::Error for NetError {}

type ServerConn<Req, Resp> = Connection<Resp, Req>;

struct NetState<Req, Resp> {
    listeners: BTreeMap<String, Sender<ServerConn<Req, Resp>>>,
    next_client: u64,
}

/// A named-endpoint network for one request/response protocol.
///
/// Servers [`listen`](Network::listen) on string addresses; clients
/// [`connect`](Network::connect) with a chosen [`LinkProfile`] (loopback
/// for same-host, `lan_1gbps` for remote — the caller decides topology).
///
/// # Examples
///
/// ```
/// use kaas_net::{Network, LinkProfile};
/// use kaas_simtime::{Simulation, spawn};
///
/// let mut sim = Simulation::new();
/// let got = sim.block_on(async {
///     let net: Network<&str, u32> = Network::new();
///     let mut listener = net.listen("kaas:7000").unwrap();
///     spawn(async move {
///         let mut conn = listener.accept().await.unwrap();
///         let req = conn.recv().await.unwrap();
///         assert_eq!(req.body, "len?");
///         conn.send(4, 8).await.unwrap();
///     });
///     let mut c = net.connect("kaas:7000", LinkProfile::loopback()).await.unwrap();
///     c.send("len?", 4).await.unwrap();
///     c.recv().await.unwrap().body
/// });
/// assert_eq!(got, 4);
/// ```
pub struct Network<Req, Resp> {
    state: Rc<RefCell<NetState<Req, Resp>>>,
}

impl<Req, Resp> std::fmt::Debug for Network<Req, Resp> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("listeners", &self.state.borrow().listeners.len())
            .finish()
    }
}

impl<Req, Resp> Clone for Network<Req, Resp> {
    fn clone(&self) -> Self {
        Network {
            state: Rc::clone(&self.state),
        }
    }
}

impl<Req: 'static, Resp: 'static> Default for Network<Req, Resp> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Req: 'static, Resp: 'static> Network<Req, Resp> {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network {
            state: Rc::new(RefCell::new(NetState {
                listeners: BTreeMap::new(),
                next_client: 0,
            })),
        }
    }

    /// Hands out the next client identity on this network (0, 1, 2, …).
    ///
    /// Protocols use this to namespace per-client sequence numbers:
    /// two clients of the same network that both start counting requests
    /// from zero would otherwise collide in merged traces. Allocation is
    /// per-network state, so identical simulation runs hand out
    /// identical ids.
    pub fn alloc_client_id(&self) -> u64 {
        let mut s = self.state.borrow_mut();
        let id = s.next_client;
        s.next_client += 1;
        id
    }

    /// Binds a listener to `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::AddrInUse`] if `addr` already has a listener.
    pub fn listen(&self, addr: &str) -> Result<Listener<Req, Resp>, NetError> {
        let mut s = self.state.borrow_mut();
        if s.listeners.contains_key(addr) {
            return Err(NetError::AddrInUse(addr.to_owned()));
        }
        let (tx, rx) = channel::unbounded();
        s.listeners.insert(addr.to_owned(), tx);
        Ok(Listener {
            addr: addr.to_owned(),
            incoming: rx,
            net: Rc::clone(&self.state),
        })
    }

    /// Opens a connection to `addr` over a link with `profile` timing.
    /// Establishment costs one round trip.
    ///
    /// # Errors
    ///
    /// [`NetError::ConnectionRefused`] if nothing listens on `addr`;
    /// [`NetError::ListenerClosed`] if the listener disappeared mid-dial.
    pub async fn connect(
        &self,
        addr: &str,
        profile: LinkProfile,
    ) -> Result<Connection<Req, Resp>, NetError> {
        let acceptor = self
            .state
            .borrow()
            .listeners
            .get(addr)
            .cloned()
            .ok_or_else(|| NetError::ConnectionRefused(addr.to_owned()))?;
        // TCP-style handshake: one round trip before data can flow.
        sleep(profile.latency * 2).await;
        let (client, server) = pair::<Req, Resp>(profile);
        acceptor
            .send(server)
            .await
            .map_err(|_| NetError::ListenerClosed(addr.to_owned()))?;
        Ok(client)
    }
}

/// Accepts inbound connections for an address; unbinds on drop.
pub struct Listener<Req, Resp> {
    addr: String,
    incoming: Receiver<ServerConn<Req, Resp>>,
    net: Rc<RefCell<NetState<Req, Resp>>>,
}

impl<Req, Resp> std::fmt::Debug for Listener<Req, Resp> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Listener")
            .field("addr", &self.addr)
            .finish()
    }
}

impl<Req, Resp> Listener<Req, Resp> {
    /// The bound address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Waits for the next inbound connection; `None` if the network side
    /// dropped (cannot normally happen while the listener is bound).
    pub async fn accept(&mut self) -> Option<ServerConn<Req, Resp>> {
        self.incoming.recv().await
    }
}

impl<Req, Resp> Drop for Listener<Req, Resp> {
    fn drop(&mut self) {
        self.net.borrow_mut().listeners.remove(&self.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_simtime::{now, spawn, Simulation};
    use std::time::Duration;

    #[test]
    fn connect_without_listener_refused() {
        let mut sim = Simulation::new();
        let out = sim.block_on(async {
            let net: Network<u8, u8> = Network::new();
            net.connect("nowhere", LinkProfile::loopback()).await.err()
        });
        assert_eq!(out, Some(NetError::ConnectionRefused("nowhere".into())));
    }

    #[test]
    fn double_listen_rejected() {
        let net: Network<u8, u8> = Network::new();
        let _l = net.listen("a").unwrap();
        assert_eq!(net.listen("a").err(), Some(NetError::AddrInUse("a".into())));
    }

    #[test]
    fn listener_drop_unbinds() {
        let net: Network<u8, u8> = Network::new();
        drop(net.listen("a").unwrap());
        assert!(net.listen("a").is_ok());
    }

    #[test]
    fn handshake_costs_one_rtt() {
        let mut sim = Simulation::new();
        let t = sim.block_on(async {
            let net: Network<u8, u8> = Network::new();
            let _l = net.listen("srv").unwrap();
            let link = LinkProfile::new(Duration::from_millis(50), 1e9);
            net.connect("srv", link).await.unwrap();
            now()
        });
        assert_eq!(t.as_secs_f64(), 0.1);
    }

    #[test]
    fn request_response_roundtrip() {
        let mut sim = Simulation::new();
        let reply = sim.block_on(async {
            let net: Network<u32, u32> = Network::new();
            let mut l = net.listen("echo").unwrap();
            spawn(async move {
                while let Some(mut conn) = l.accept().await {
                    spawn(async move {
                        while let Some(req) = conn.recv().await {
                            conn.send(req.body * 2, 8).await.ok();
                        }
                    });
                }
            });
            let mut c = net.connect("echo", LinkProfile::loopback()).await.unwrap();
            c.send(21, 8).await.unwrap();
            c.recv().await.unwrap().body
        });
        assert_eq!(reply, 42);
    }

    #[test]
    fn client_ids_are_sequential_per_network() {
        let a: Network<u8, u8> = Network::new();
        let b: Network<u8, u8> = Network::new();
        assert_eq!(a.alloc_client_id(), 0);
        assert_eq!(a.alloc_client_id(), 1);
        // A fresh network starts over — ids are per-network state.
        assert_eq!(b.alloc_client_id(), 0);
        // Clones share the counter.
        assert_eq!(a.clone().alloc_client_id(), 2);
    }

    #[test]
    fn multiple_clients_are_isolated() {
        let mut sim = Simulation::new();
        let (a, b) = sim.block_on(async {
            let net: Network<u32, u32> = Network::new();
            let mut l = net.listen("svc").unwrap();
            spawn(async move {
                while let Some(mut conn) = l.accept().await {
                    spawn(async move {
                        while let Some(req) = conn.recv().await {
                            conn.send(req.body + 100, 8).await.ok();
                        }
                    });
                }
            });
            let mut c1 = net.connect("svc", LinkProfile::loopback()).await.unwrap();
            let mut c2 = net.connect("svc", LinkProfile::loopback()).await.unwrap();
            c1.send(1, 8).await.unwrap();
            c2.send(2, 8).await.unwrap();
            (c1.recv().await.unwrap().body, c2.recv().await.unwrap().body)
        });
        assert_eq!((a, b), (101, 102));
    }
}
