//! # kaas-net — simulated network substrate
//!
//! Models everything the KaaS prototype's TCP plumbing does (§4.1 of the
//! paper), in virtual time on top of [`kaas_simtime`]:
//!
//! * [`LinkProfile`] — latency/bandwidth timing for loopback, the paper's
//!   1 Gbps LAN, and an RDMA-class fabric (§6 future work).
//! * [`wire`]/[`Connection`]/[`Network`] — order-preserving message pipes,
//!   bidirectional connections, and named listeners with TCP-style
//!   handshakes.
//! * [`SerializationProfile`] — CPU cost of in-band payload encoding
//!   (calibrated to the prototype's Python serializer).
//! * [`SharedMemory`]/[`ShmHandle`] — out-of-band data transfer at memcpy
//!   rates.
//!
//! ```
//! use kaas_net::{Network, LinkProfile};
//! use kaas_simtime::{Simulation, spawn};
//!
//! let mut sim = Simulation::new();
//! let answer = sim.block_on(async {
//!     let net: Network<u64, u64> = Network::new();
//!     let mut srv = net.listen("kaas").unwrap();
//!     spawn(async move {
//!         let mut conn = srv.accept().await.unwrap();
//!         while let Some(req) = conn.recv().await {
//!             conn.send(req.body * req.body, 8).await.ok();
//!         }
//!     });
//!     let mut conn = net.connect("kaas", LinkProfile::lan_1gbps()).await.unwrap();
//!     conn.send(12, 8).await.unwrap();
//!     conn.recv().await.unwrap().body
//! });
//! assert_eq!(answer, 144);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod conn;
mod profile;
mod shm;
mod wire;

pub use conn::{pair, Connection, Listener, NetError, Network};
pub use profile::{size, LinkProfile, MemcpyProfile, SerializationProfile};
pub use shm::{SharedMemory, ShmHandle, HANDLE_WIRE_BYTES};
pub use wire::{wire, Disconnected, Frame, LinkFault, WireReceiver, WireSender};
