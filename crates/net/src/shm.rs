//! Same-host shared memory for out-of-band data transfer (§4.1).
//!
//! Instead of serializing payloads onto the connection, a client `put`s
//! the data into a [`SharedMemory`] region and sends only the small
//! [`ShmHandle`] in-band; the task runner then `take`s the payload by
//! handle. Both sides pay only a memcpy-rate cost, never serialization or
//! network transmission.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap; // audit:allow(unordered): keyed get/insert/remove only, never iterated
use std::marker::PhantomData;
use std::rc::Rc;

use kaas_simtime::sleep;

use crate::profile::MemcpyProfile;

/// Wire size of a shared-memory handle when sent in-band (a key plus a
/// length — the whole point of out-of-band transfer).
pub const HANDLE_WIRE_BYTES: u64 = 64;

/// A typed reference to a payload stored in a [`SharedMemory`] region.
pub struct ShmHandle<T> {
    key: u64,
    bytes: u64,
    _marker: PhantomData<fn() -> T>,
}

impl<T> std::fmt::Debug for ShmHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmHandle")
            .field("key", &self.key)
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl<T> Clone for ShmHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ShmHandle<T> {}

impl<T> ShmHandle<T> {
    /// Size of the referenced payload in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

struct ShmState {
    slots: HashMap<u64, Box<dyn Any>>, // audit:allow(unordered): keyed lookups only; iteration order never observed
    next_key: u64,
    bytes_stored: u64,
}

/// A host-local shared-memory region with memcpy-rate access costs.
///
/// # Examples
///
/// ```
/// use kaas_net::SharedMemory;
/// use kaas_simtime::Simulation;
///
/// let mut sim = Simulation::new();
/// sim.block_on(async {
///     let shm = SharedMemory::host();
///     let h = shm.put(vec![1.0f64; 1024], 8 * 1024).await;
///     let back: Vec<f64> = shm.take(h).await.unwrap();
///     assert_eq!(back.len(), 1024);
/// });
/// ```
#[derive(Clone)]
pub struct SharedMemory {
    state: Rc<RefCell<ShmState>>,
    memcpy: MemcpyProfile,
}

impl std::fmt::Debug for SharedMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.borrow();
        f.debug_struct("SharedMemory")
            .field("slots", &s.slots.len())
            .field("bytes_stored", &s.bytes_stored)
            .finish()
    }
}

impl SharedMemory {
    /// A region backed by host DDR4 (the prototype's configuration).
    pub fn host() -> Self {
        Self::with_profile(MemcpyProfile::host_ddr4())
    }

    /// A region with custom copy bandwidth.
    pub fn with_profile(memcpy: MemcpyProfile) -> Self {
        SharedMemory {
            state: Rc::new(RefCell::new(ShmState {
                slots: HashMap::new(), // audit:allow(unordered): keyed lookups only; iteration order never observed
                next_key: 0,
                bytes_stored: 0,
            })),
            memcpy,
        }
    }

    /// Copies `value` (logical size `bytes`) into the region, returning a
    /// handle. Costs one memcpy of `bytes`.
    pub async fn put<T: 'static>(&self, value: T, bytes: u64) -> ShmHandle<T> {
        sleep(self.memcpy.time(bytes)).await;
        let mut s = self.state.borrow_mut();
        let key = s.next_key;
        s.next_key += 1;
        s.slots.insert(key, Box::new(value));
        s.bytes_stored += bytes;
        ShmHandle {
            key,
            bytes,
            _marker: PhantomData,
        }
    }

    /// Removes and returns the payload for `handle`.
    ///
    /// Consuming a region is a zero-copy **mapping** (the paper's task
    /// runner accesses the client's region "by providing a pointer to
    /// that region", §4.1) — only [`SharedMemory::put`] pays memcpy time.
    ///
    /// Returns `None` if the handle was already taken (or never valid for
    /// this region).
    pub async fn take<T: 'static>(&self, handle: ShmHandle<T>) -> Option<T> {
        let boxed = {
            let mut s = self.state.borrow_mut();
            let v = s.slots.remove(&handle.key)?;
            s.bytes_stored = s.bytes_stored.saturating_sub(handle.bytes);
            v
        };
        Some(
            *boxed
                .downcast::<T>()
                .expect("ShmHandle type is enforced at put time"),
        )
    }

    /// Total bytes currently stored.
    pub fn bytes_stored(&self) -> u64 {
        self.state.borrow().bytes_stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaas_simtime::{now, Simulation};

    #[test]
    fn put_charges_copy_time_take_is_zero_copy() {
        let mut sim = Simulation::new();
        let (value, elapsed) = sim.block_on(async {
            let shm = SharedMemory::with_profile(MemcpyProfile { bytes_per_sec: 1e6 });
            let h = shm.put(7u32, 500_000).await;
            let v = shm.take(h).await.unwrap();
            (v, now())
        });
        assert_eq!(value, 7);
        assert!(
            (elapsed.as_secs_f64() - 0.5).abs() < 1e-9,
            "0.5 s put, free take"
        );
    }

    #[test]
    fn double_take_returns_none() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let shm = SharedMemory::host();
            let h = shm.put(1u8, 1).await;
            assert!(shm.take(h).await.is_some());
            assert!(shm.take(h).await.is_none());
        });
    }

    #[test]
    fn bytes_stored_tracks_occupancy() {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let shm = SharedMemory::host();
            let h1 = shm.put(vec![0u8; 10], 10).await;
            let _h2 = shm.put(vec![0u8; 20], 20).await;
            assert_eq!(shm.bytes_stored(), 30);
            shm.take(h1).await;
            assert_eq!(shm.bytes_stored(), 20);
        });
    }

    #[test]
    fn handles_are_copy_and_small() {
        const _: () = assert!(HANDLE_WIRE_BYTES < 1024);
        let mut sim = Simulation::new();
        sim.block_on(async {
            let shm = SharedMemory::host();
            let h = shm.put(5i64, 8).await;
            let h2 = h; // Copy
            assert_eq!(h2.bytes(), 8);
            assert_eq!(shm.take(h).await, Some(5));
        });
    }
}
