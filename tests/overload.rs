//! Integration: adaptive overload control. The AIMD admission limiter
//! must tighten under queue pressure and recover when it clears, bounded
//! shard queues must eject expired work honestly (every shed surfaces as
//! a typed error AND a counter — no silent drops), `Overloaded` must
//! carry a deterministic `retry_after` hint the client retry loop
//! honors, retry budgets must cap the retry-to-fresh ratio, and request
//! hedging must recover a dropped primary without waiting for a timeout.

use std::rc::Rc;
use std::time::Duration;

use kaas::accel::{Device, DeviceId, GpuDevice, GpuProfile};
use kaas::core::{
    AimdConfig, ClientRetryConfig, DispatchMode, InvokeError, KaasClient, KaasNetwork, KaasServer,
    KernelRegistry, RetryBudget, RetryBudgetConfig, ServerConfig, ShardConfig,
};
use kaas::kernels::{MonteCarlo, Value};
use kaas::net::{LinkProfile, SharedMemory};
use kaas::simtime::{now, spawn, Simulation};

async fn boot(config: ServerConfig) -> (KaasServer, KaasNetwork) {
    let devices: Vec<Device> = vec![GpuDevice::new(DeviceId(0), GpuProfile::v100()).into()];
    let registry = KernelRegistry::new();
    registry.register(MonteCarlo::default()).unwrap();
    let shm = SharedMemory::host();
    let server = KaasServer::new(devices, registry, shm, config);
    let net: KaasNetwork = KaasNetwork::new();
    spawn(server.clone().serve(net.listen("kaas").unwrap()));
    (server, net)
}

async fn connect(net: &KaasNetwork) -> KaasClient {
    KaasClient::connect(net, "kaas", LinkProfile::loopback())
        .await
        .unwrap()
}

/// The AIMD limiter tightens while observed queue wait exceeds the
/// target, never leaves its configured range, agrees with both the
/// snapshot and the `admission.limit` gauge, and climbs back once the
/// pressure clears.
#[test]
fn adaptive_limiter_tightens_under_pressure_and_recovers() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let aimd = AimdConfig::default()
            .with_target_queue_wait(Duration::from_millis(1))
            .with_limit_range(4, 64)
            .with_initial_limit(64)
            .with_cooldown(Duration::from_millis(2));
        let shard = ShardConfig {
            shards: 1,
            ..ShardConfig::default()
        };
        let config = ServerConfig::default()
            .with_dispatch(DispatchMode::Sharded(shard))
            .with_dispatch_overhead(Duration::from_millis(1))
            .with_adaptive_admission(aimd);
        let (server, net) = boot(config).await;
        server.prewarm("mci", 1).await.unwrap();

        // Flood: 16 closed-loop clients with zero think time against a
        // dispatch path that drains one job per millisecond keep the
        // single shard's queue wait well above the 1 ms target.
        let mut workers = Vec::new();
        for _ in 0..16 {
            let mut client = connect(&net).await;
            workers.push(spawn(async move {
                for _ in 0..20 {
                    let _ = client
                        .call("mci")
                        .arg(Value::U64(100))
                        .timeout(Duration::from_secs(2))
                        .send()
                        .await;
                }
            }));
        }
        for w in workers {
            w.await;
        }

        let snap = server.snapshot();
        let tightened = snap.admission_limit.expect("adaptive policy has a limit");
        assert!(
            tightened < 64,
            "sustained over-target queue wait must shrink the limit, got {tightened}"
        );
        assert!(tightened >= 4, "the limit must respect min_limit");
        assert_eq!(
            server.metrics_registry().gauge("admission.limit"),
            Some(tightened as f64),
            "the gauge must mirror the live limit"
        );

        // Recovery: a single sequential client observes ~zero queue
        // wait, so additive increase walks the limit back up.
        let mut client = connect(&net).await;
        for _ in 0..80 {
            client
                .call("mci")
                .arg(Value::U64(100))
                .send()
                .await
                .unwrap();
        }
        let recovered = server.snapshot().admission_limit.unwrap();
        assert!(
            recovered > tightened,
            "below-target queue wait must grow the limit back ({tightened} -> {recovered})"
        );
        assert!(recovered <= 64, "the limit must respect max_limit");
    });
}

/// Bounded queues shed honestly: expired work is ejected at dequeue
/// before it can reach placement, every ejection reaches the client as
/// a typed error, and the three accounting surfaces (per-shard metric,
/// snapshot, aggregate counter) agree exactly.
#[test]
fn bounded_queue_ejects_expired_work_before_placement() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let shard = ShardConfig {
            shards: 1,
            queue_cap: Some(4),
            ..ShardConfig::default()
        };
        let config = ServerConfig::default()
            .with_dispatch(DispatchMode::Sharded(shard))
            .with_dispatch_overhead(Duration::from_micros(500))
            .with_admission_policy(None);
        let (server, net) = boot(config).await;
        server.prewarm("mci", 1).await.unwrap();

        // Ten simultaneous arrivals against a depth-4 queue draining at
        // one job per 500 µs: the tail of the queue expires before its
        // dequeue, the overflow is shed at the front door.
        let mut workers = Vec::new();
        for _ in 0..10 {
            let mut client = connect(&net).await;
            workers.push(spawn(async move {
                client
                    .call("mci")
                    .arg(Value::U64(1_000))
                    .deadline(Duration::from_micros(1_200))
                    .timeout(Duration::from_secs(1))
                    .send()
                    .await
            }));
        }
        let mut ok = 0usize;
        let mut deadline_exceeded = 0usize;
        let mut overloaded = 0usize;
        for w in workers {
            match w.await {
                Ok(_) => ok += 1,
                Err(InvokeError::DeadlineExceeded) => deadline_exceeded += 1,
                Err(InvokeError::Overloaded { retry_after }) => {
                    assert!(
                        retry_after.is_some(),
                        "server-side sheds must carry a retry_after hint"
                    );
                    overloaded += 1;
                }
                Err(e) => panic!("unexpected error under pure overload: {e:?}"),
            }
        }
        assert_eq!(ok + deadline_exceeded + overloaded, 10, "no lost requests");
        assert!(overloaded > 0, "the depth cap must shed at the front door");

        let snap = server.snapshot();
        let m = server.metrics_registry();
        let per_shard: u64 = snap.shard_ejected.iter().sum();
        assert!(
            snap.dispatch_ejected > 0,
            "queued work whose deadline expired must be ejected at dequeue: {snap:?}"
        );
        assert_eq!(per_shard, snap.dispatch_ejected);
        assert_eq!(snap.dispatch_ejected, m.counter("dispatch.ejected"));
        assert_eq!(snap.shard_ejected[0], m.counter("dispatch.shard.0.ejected"));
        // Overloaded errors map 1:1 to front-door depth-cap sheds
        // (admission is disabled here and arrivals were live, so no
        // other path produces them); the rest of the ejection count is
        // dequeue-time ejection of work that expired while queued.
        let dequeue_ejected = snap.dispatch_ejected - overloaded as u64;
        assert!(
            dequeue_ejected > 0,
            "expired queued work must be ejected at dequeue"
        );
        // Every ejection surfaced to its client as a typed error
        // (DeadlineExceeded may additionally come from work that
        // expired after dequeue, hence >=).
        assert!(deadline_exceeded as u64 >= dequeue_ejected);
        // Ejected work never reached placement: only the successes (and
        // the prewarm-free dispatch path) count as invocations.
        assert_eq!(m.counter("invocations"), ok as u64);
        assert_eq!(server.snapshot().total_in_flight(), 0);
    });
}

/// The `retry_after` hint is deterministic — two identical sheds quote
/// the identical pacing — and a budgeted client retry loop both honors
/// the hint and gives up (with an honest counter) once the budget runs
/// dry.
#[test]
fn retry_after_is_deterministic_and_budgets_cap_retries() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let overhead = ServerConfig::default().dispatch_overhead;
        let config = ServerConfig::default().with_max_in_flight(0);
        let (_server, net) = boot(config).await;

        // Two back-to-back sheds from an idle server quote the same
        // drain estimate: exactly one dispatch overhead.
        let mut plain = connect(&net).await;
        let mut hints = Vec::new();
        for _ in 0..2 {
            let err = plain
                .call("mci")
                .arg(Value::U64(1_000))
                .send()
                .await
                .unwrap_err();
            let InvokeError::Overloaded { retry_after } = err else {
                panic!("expected Overloaded, got {err:?}");
            };
            hints.push(retry_after.expect("sheds carry a hint"));
        }
        assert_eq!(hints[0], hints[1], "same state must quote the same hint");
        assert_eq!(hints[0], overhead);

        // A budgeted retry loop: full bucket of 2 tokens, so attempts
        // 2 and 3 run and attempt 4 is denied — surfaced on the
        // client-local registry, never silently swallowed.
        let budget = Rc::new(RetryBudget::new(
            RetryBudgetConfig::default()
                .with_ratio_pct(10)
                .with_burst(2),
        ));
        let mut budgeted = connect(&net)
            .await
            .with_retry(ClientRetryConfig::new(8).with_budget(Rc::clone(&budget)));
        let start = now();
        let err = budgeted
            .call("mci")
            .arg(Value::U64(1_000))
            .send()
            .await
            .unwrap_err();
        assert!(matches!(err, InvokeError::Overloaded { .. }));
        assert_eq!(
            budgeted
                .metrics_registry()
                .counter("retries.budget_exhausted"),
            1
        );
        assert_eq!(budget.exhausted(), 1);
        // Both retries were paced by the server's hint even though the
        // client itself configured no backoff.
        assert!(
            now().saturating_since(start) >= 2 * overhead,
            "retries must wait at least the server-quoted retry_after"
        );
    });
}

/// Hedging recovers a dropped primary without waiting for the client
/// timeout, and the duplicate is accounted for (`hedges.sent` /
/// `hedges.won`); when the primary answers first the hedge never fires.
#[test]
fn hedging_recovers_a_dropped_primary() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (_server, net) = boot(ServerConfig::default()).await;
        let mut client = connect(&net).await;
        // Warm the runner so the hedged request is served quickly.
        client
            .call("mci")
            .arg(Value::U64(1_000))
            .send()
            .await
            .unwrap();

        // Swallow the primary's request frame: only the hedge, fired
        // 1 ms later, can complete this call.
        client.link_fault().drop_next(1);
        let start = now();
        let inv = client
            .call("mci")
            .arg(Value::U64(1_000))
            .hedge(Duration::from_millis(1))
            .send()
            .await
            .expect("the hedge must rescue the dropped primary");
        assert!(matches!(inv.output, Value::F64(_)));
        assert_eq!(client.link_fault().dropped(), 1);
        assert_eq!(client.metrics_registry().counter("hedges.sent"), 1);
        assert_eq!(client.metrics_registry().counter("hedges.won"), 1);
        assert!(
            now().saturating_since(start) < Duration::from_millis(50),
            "hedging must not wait out a full client timeout"
        );

        // Healthy link, generous delay: the primary wins and no hedge
        // is ever sent.
        client
            .call("mci")
            .arg(Value::U64(1_000))
            .hedge(Duration::from_secs(5))
            .send()
            .await
            .unwrap();
        assert_eq!(client.metrics_registry().counter("hedges.sent"), 1);
        assert_eq!(client.metrics_registry().counter("hedges.won"), 1);
    });
}
