//! Integration: federated multi-site deployments — kernel discovery,
//! routing, and cross-site workflows.

use std::rc::Rc;

use kaas::accel::{
    Device, DeviceId, FpgaDevice, FpgaProfile, GpuDevice, GpuProfile, QpuDevice, QpuProfile,
};
use kaas::core::{
    FederatedClient, InvokeError, KaasNetwork, KaasServer, KernelRegistry, ServerConfig,
    SiteHandle, SiteSpec, Workflow,
};
use kaas::kernels::{BitmapConversion, Kernel, MatMul, Preprocess, Value, VqeEstimator};
use kaas::net::SharedMemory;
use kaas::simtime::{spawn, Simulation};

fn boot_site(
    net: &KaasNetwork,
    addr: &str,
    devices: Vec<Device>,
    kernels: Vec<Rc<dyn Kernel>>,
) -> SharedMemory {
    let registry = KernelRegistry::new();
    for k in kernels {
        registry.register_rc(k).unwrap();
    }
    let shm = SharedMemory::host();
    let server = KaasServer::new(devices, registry, shm.clone(), ServerConfig::default());
    spawn(server.serve(net.listen(addr).unwrap()));
    shm
}

#[test]
fn discovery_finds_each_sites_kernels() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let net: KaasNetwork = KaasNetwork::new();
        let shm_a = boot_site(
            &net,
            "site-a",
            vec![GpuDevice::new(DeviceId(0), GpuProfile::p100()).into()],
            vec![Rc::new(MatMul::new())],
        );
        let _shm_b = boot_site(
            &net,
            "site-b",
            vec![FpgaDevice::new(DeviceId(1), FpgaProfile::alveo_u250()).into()],
            vec![Rc::new(BitmapConversion::default())],
        );
        let fed = FederatedClient::connect(
            &net,
            vec![SiteSpec::local("site-a", shm_a), SiteSpec::remote("site-b")],
        )
        .await
        .unwrap();
        assert_eq!(fed.site_count(), 2);
        assert_eq!(
            fed.kernels(),
            vec!["bitmap".to_owned(), "matmul".to_owned()]
        );
        let site_a = fed.site("site-a").unwrap();
        let site_b = fed.site("site-b").unwrap();
        assert_eq!(fed.route("matmul"), Some(site_a.clone()));
        assert_eq!(fed.route("bitmap"), Some(site_b));
        assert_eq!(fed.route("nope"), None);
        assert_eq!(fed.site("nope"), None);
        assert_eq!(fed.site_kernels(&site_a), ["matmul".to_owned()]);
        assert_eq!(
            fed.sites().iter().map(SiteHandle::name).collect::<Vec<_>>(),
            ["site-a", "site-b"]
        );
    });
}

#[test]
fn invocations_route_to_the_serving_site() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let net: KaasNetwork = KaasNetwork::new();
        let shm_a = boot_site(
            &net,
            "gpu-site",
            vec![GpuDevice::new(DeviceId(0), GpuProfile::p100()).into()],
            vec![Rc::new(MatMul::new())],
        );
        let _ = boot_site(
            &net,
            "qpu-site",
            vec![QpuDevice::new(DeviceId(7), QpuProfile::qasm_simulator()).into()],
            vec![Rc::new(VqeEstimator::h2(1024))],
        );
        let mut fed = FederatedClient::connect(
            &net,
            vec![
                SiteSpec::local("gpu-site", shm_a),
                SiteSpec::remote("qpu-site"),
            ],
        )
        .await
        .unwrap();
        let mm = fed.invoke("matmul", Value::U64(128)).await.unwrap();
        assert_eq!(mm.report.device, DeviceId(0));
        let vqe = fed
            .invoke("vqe-estimator", Value::F64s(vec![0.2; 4]))
            .await
            .unwrap();
        assert_eq!(vqe.report.device, DeviceId(7));
        let err = fed.invoke("missing", Value::Unit).await.unwrap_err();
        assert_eq!(err, InvokeError::UnknownKernel("missing".into()));
    });
}

#[test]
fn workflows_hop_between_sites() {
    // The Fig. 1 pipeline split across two federated hosts: CPU
    // preprocessing at the edge, FPGA bitmap conversion in the
    // datacenter (the §6 earth-observation style of deployment).
    let mut sim = Simulation::new();
    sim.block_on(async {
        let net: KaasNetwork = KaasNetwork::new();
        let shm_edge = boot_site(
            &net,
            "edge",
            vec![kaas::accel::CpuDevice::new(
                DeviceId(0),
                kaas::accel::CpuProfile::xeon_e5_2650v3_dual(),
            )
            .into()],
            vec![Rc::new(Preprocess::new())],
        );
        let _ = boot_site(
            &net,
            "dc",
            vec![FpgaDevice::new(DeviceId(1), FpgaProfile::alveo_u250()).into()],
            vec![Rc::new(BitmapConversion::default())],
        );
        let mut fed = FederatedClient::connect(
            &net,
            vec![SiteSpec::local("edge", shm_edge), SiteSpec::remote("dc")],
        )
        .await
        .unwrap();

        let frame = Value::image(vec![210u8; 96 * 96 * 3], 96, 96, 3);
        let wf = Workflow::linear("edge-to-dc", ["preprocess", "bitmap"]).unwrap();
        // The chain hops sites, so registration splits it into one
        // server-side segment per site.
        let flow = fed.register_workflow(&wf).await.unwrap();
        assert_eq!(flow.segments(), 2);
        let run = fed.run_flow(&flow, frame).await.unwrap();
        assert_eq!(run.round_trips, 2);
        assert_eq!(run.report.steps.len(), 2);
        let dev = |i: usize| run.report.steps[i].report.as_ref().unwrap().device;
        assert_ne!(dev(0), dev(1));
        assert_eq!(run.report.steps[1].step, 1);
        match &run.output {
            Value::Image {
                pixels, channels, ..
            } => {
                assert_eq!(*channels, 1);
                assert!(
                    pixels.iter().all(|&p| p == 1),
                    "bright frame → white bitmap"
                );
            }
            other => panic!("expected a bitmap, got {other:?}"),
        }
    });
}
