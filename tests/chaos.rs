//! Integration: seeded chaos. A deterministic fault storm — runner
//! crashes, device flaps, link delay spikes, dropped frames — runs over
//! 1 000 invocations. Every request must resolve (Ok or a typed
//! [`InvokeError`]), the control plane must end clean (no leaked
//! in-flight claims, no breaker stuck open), and the whole run must
//! replay byte-identically from the same seed.

use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

use kaas::accel::{CpuDevice, CpuProfile, Device, DeviceId, GpuDevice, GpuProfile};
use kaas::core::{
    AimdConfig, BreakerConfig, BreakerState, ClientRetryConfig, DispatchMode, EvictionConfig,
    ExponentialBackoff, FallbackConfig, Fault, FaultInjector, FaultPlan, InvokeError, KaasClient,
    KaasNetwork, KaasServer, KernelRegistry, RetryBudget, RetryBudgetConfig, RetryConfig,
    ServerConfig, ShardConfig, StormConfig,
};
use kaas::kernels::{MonteCarlo, Value};
use kaas::net::{LinkProfile, SharedMemory};
use kaas::simtime::{sleep, spawn, Simulation, SpanSink};

const SEED: u64 = 2026;
const CLIENTS: usize = 8;
const PER_CLIENT: usize = 125;

/// Everything observable about one chaos run; two same-seed runs must
/// compare equal field for field (including the rendered trace).
#[derive(Debug, PartialEq, Eq)]
struct ChaosSummary {
    ok: usize,
    errors: BTreeMap<&'static str, usize>,
    faults_applied: usize,
    breakers: BTreeMap<DeviceId, BreakerState>,
    in_flight: usize,
    quarantined: usize,
    registry: String,
    trace: String,
}

fn resilient_config(seed: u64, tracer: SpanSink) -> ServerConfig {
    ServerConfig::default()
        .with_tracer(tracer)
        .with_retry(
            RetryConfig::default()
                .with_max_attempts(4)
                .with_backoff(
                    ExponentialBackoff::new(Duration::from_millis(1)).with_jitter(0.5, seed),
                )
                .with_budget(Duration::from_millis(100)),
        )
        .with_breaker(
            BreakerConfig::default()
                .with_failure_threshold(3)
                .with_cooldown(Duration::from_millis(200)),
        )
        .with_eviction(EvictionConfig::default().with_failure_threshold(2))
        .with_fallback(FallbackConfig::gpu_to_cpu())
}

fn run_chaos(seed: u64) -> ChaosSummary {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let tracer = SpanSink::new();
        let devices: Vec<Device> = vec![
            GpuDevice::new(DeviceId(0), GpuProfile::p100()).into(),
            GpuDevice::new(DeviceId(1), GpuProfile::p100()).into(),
            CpuDevice::new(DeviceId(2), CpuProfile::xeon_e5_2698v4_dual()).into(),
        ];
        let registry = KernelRegistry::new();
        registry.register(MonteCarlo::default()).unwrap();
        let shm = SharedMemory::host();
        let server = KaasServer::new(
            devices,
            registry,
            shm,
            resilient_config(seed, tracer.clone()),
        );
        let net: KaasNetwork = KaasNetwork::new();
        spawn(server.clone().serve(net.listen("kaas").unwrap()));

        // Connect every client up front so their link-fault handles can
        // be registered with the injector.
        let mut clients = Vec::new();
        for _ in 0..CLIENTS {
            clients.push(
                KaasClient::connect(&net, "kaas", LinkProfile::loopback())
                    .await
                    .unwrap(),
            );
        }

        let storm = StormConfig {
            devices: vec![DeviceId(0), DeviceId(1)],
            horizon: Duration::from_secs(5),
            ..StormConfig::default()
        };
        let plan = FaultPlan::storm(seed, &storm);
        let mut injector = FaultInjector::new(&server, plan);
        for client in &clients {
            injector = injector.with_link(client.link_fault());
        }
        let fault_log = injector.log();
        let storm_done = injector.run();

        let mut workers = Vec::new();
        for (idx, mut client) in clients.into_iter().enumerate() {
            workers.push(spawn(async move {
                let mut ok = 0usize;
                let mut errors: BTreeMap<&'static str, usize> = BTreeMap::new();
                sleep(Duration::from_millis(idx as u64 * 7)).await;
                for _ in 0..PER_CLIENT {
                    let result = client
                        .call("mci")
                        .arg(Value::U64(5_000))
                        .timeout(Duration::from_secs(3))
                        .send()
                        .await;
                    match result {
                        Ok(_) => ok += 1,
                        Err(e) => *errors.entry(e.kind()).or_default() += 1,
                    }
                    sleep(Duration::from_millis(30)).await;
                }
                (ok, errors)
            }));
        }

        let mut ok = 0usize;
        let mut errors: BTreeMap<&'static str, usize> = BTreeMap::new();
        for w in workers {
            let (o, errs) = w.await;
            ok += o;
            for (k, n) in errs {
                *errors.entry(k).or_default() += n;
            }
        }
        storm_done.await;
        // Let pending restorations (devices coming back online, delay
        // spikes expiring) land and breaker cooldowns elapse.
        sleep(Duration::from_secs(1)).await;

        let snapshot = server.snapshot();
        ChaosSummary {
            ok,
            errors,
            faults_applied: fault_log.len(),
            breakers: snapshot.breakers.clone(),
            in_flight: snapshot.total_in_flight(),
            quarantined: snapshot.quarantined,
            registry: server.metrics_registry().render(),
            trace: tracer.to_chrome_json(),
        }
    })
}

#[test]
fn seeded_fault_storm_loses_zero_requests() {
    let s = run_chaos(SEED);
    let resolved = s.ok + s.errors.values().sum::<usize>();
    assert_eq!(
        resolved,
        CLIENTS * PER_CLIENT,
        "every invocation must resolve Ok or with a typed error: {s:?}"
    );
    assert!(s.ok > 0, "a healthy majority should still succeed: {s:?}");
    assert!(s.faults_applied > 0, "the storm must actually fire");
    // The control plane ends clean: nothing in flight, no breaker stuck
    // open after the cooldown window.
    assert_eq!(s.in_flight, 0, "leaked in-flight claims: {s:?}");
    assert!(
        s.breakers.values().all(|b| *b != BreakerState::Open),
        "breakers must recover to closed/half-open: {:?}",
        s.breakers
    );
}

#[test]
fn chaos_replays_byte_identically_from_the_same_seed() {
    let a = run_chaos(SEED);
    let b = run_chaos(SEED);
    assert_eq!(
        a.trace, b.trace,
        "same seed must produce a byte-identical trace"
    );
    assert_eq!(a, b, "same seed must replay the whole run identically");
}

#[test]
fn gpu_outage_degrades_to_cpu_and_recovers() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let tracer = SpanSink::new();
        let devices: Vec<Device> = vec![
            GpuDevice::new(DeviceId(0), GpuProfile::p100()).into(),
            CpuDevice::new(DeviceId(1), CpuProfile::xeon_e5_2698v4_dual()).into(),
        ];
        let registry = KernelRegistry::new();
        registry.register(MonteCarlo::default()).unwrap();
        let shm = SharedMemory::host();
        let server = KaasServer::new(devices, registry, shm, resilient_config(7, tracer));
        let net: KaasNetwork = KaasNetwork::new();
        spawn(server.clone().serve(net.listen("kaas").unwrap()));
        let mut client = KaasClient::connect(&net, "kaas", LinkProfile::loopback())
            .await
            .unwrap();

        // Warm the GPU path first.
        let warm = client
            .call("mci")
            .arg(Value::U64(5_000))
            .send()
            .await
            .unwrap();
        assert!(!warm.report.degraded);
        assert_eq!(warm.report.device, DeviceId(0));

        // Take the only GPU down for two seconds.
        let plan = FaultPlan::new(0).push(
            Duration::ZERO,
            Fault::DeviceOffline {
                device: DeviceId(0),
                down_for: Duration::from_secs(2),
            },
        );
        FaultInjector::new(&server, plan).run().await;

        // Served anyway — degraded onto the CPU.
        let deg = client
            .call("mci")
            .arg(Value::U64(5_000))
            .send()
            .await
            .unwrap();
        assert!(deg.report.degraded, "expected a degraded placement");
        assert_eq!(deg.report.device, DeviceId(1));
        assert!(server.metrics_registry().counter("degraded.served") >= 1);

        // After the outage the GPU serves again, undegraded.
        sleep(Duration::from_secs(3)).await;
        let back = client
            .call("mci")
            .arg(Value::U64(5_000))
            .send()
            .await
            .unwrap();
        assert!(!back.report.degraded);
        assert_eq!(back.report.device, DeviceId(0));
    });
}

/// Device memory dies with the runner process: every crash path —
/// direct runner crash, whole-device crash, injector-driven storm
/// faults — must invalidate the device's data-plane residency so the
/// post-fault retry re-uploads instead of reading a stale pointer.
#[test]
fn crashes_invalidate_residency_so_retries_reupload() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let devices: Vec<Device> = vec![GpuDevice::new(DeviceId(0), GpuProfile::p100()).into()];
        let registry = KernelRegistry::new();
        registry.register(kaas::kernels::MatMul::new()).unwrap();
        let shm = SharedMemory::host();
        let server = KaasServer::new(
            devices,
            registry,
            shm.clone(),
            ServerConfig::default().with_retry(RetryConfig::default().with_max_attempts(3)),
        );
        let net: KaasNetwork = KaasNetwork::new();
        spawn(server.clone().serve(net.listen("kaas").unwrap()));
        let mut client = KaasClient::connect(&net, "kaas", LinkProfile::loopback())
            .await
            .unwrap()
            .with_shared_memory(shm);

        let r = client.put(Value::U64(128)).await.unwrap();
        client.seal(r).await.unwrap();
        let dp = server.dataplane();
        let dev = DeviceId(0);
        let m = server.metrics_registry();

        client.call("matmul").arg_ref(r).send().await.unwrap();
        assert!(dp.is_resident(dev, r.hash));
        assert_eq!(m.counter("dataplane.misses"), 1);

        // 1. Direct runner crash.
        assert!(server.pool().crash_runner("matmul").is_some());
        assert!(
            !dp.is_resident(dev, r.hash),
            "crash must drop the device's residency"
        );
        assert_eq!(dp.bytes_resident(), 0);
        // The transparent retry re-uploads (fresh misses — one per
        // attempt, the first of which may land on the dead slot — and
        // never a stale hit).
        client.call("matmul").arg_ref(r).send().await.unwrap();
        assert!(dp.is_resident(dev, r.hash));
        assert!(m.counter("dataplane.misses") >= 2);
        assert_eq!(m.counter("dataplane.hits"), 0);

        // 2. Whole-device crash.
        let misses = m.counter("dataplane.misses");
        assert!(server.pool().crash_device(dev) >= 1);
        assert!(!dp.is_resident(dev, r.hash));
        client.call("matmul").arg_ref(r).send().await.unwrap();
        assert!(m.counter("dataplane.misses") > misses);

        // 3. Composed with the fault injector (the PR-3 chaos layer).
        let misses = m.counter("dataplane.misses");
        let plan = FaultPlan::new(0).push(
            Duration::ZERO,
            Fault::RunnerCrash {
                kernel: "matmul".into(),
            },
        );
        FaultInjector::new(&server, plan).run().await;
        assert!(
            !dp.is_resident(dev, r.hash),
            "injected crashes must invalidate residency too"
        );
        client.call("matmul").arg_ref(r).send().await.unwrap();
        assert!(m.counter("dataplane.misses") > misses);
        assert!(dp.is_resident(dev, r.hash));
        assert_eq!(m.counter("dataplane.hits"), 0, "no stale hit anywhere");
    });
}

/// One overload-storm run: a 5× client burst against a near-saturated
/// dispatcher with every overload control armed, optionally overlaid
/// with a runner-crash/delay-spike fault storm.
#[derive(Debug, PartialEq)]
struct OverloadStormSummary {
    ok: usize,
    errors: BTreeMap<&'static str, usize>,
    faults_applied: usize,
    shed: u64,
    ejected: u64,
    admission_limit: Option<usize>,
    breakers: BTreeMap<DeviceId, BreakerState>,
    in_flight: usize,
    registry: String,
    trace: String,
}

const STORM_BASE_CLIENTS: usize = 8;
const STORM_BASE_CALLS: usize = 40;
const STORM_BURST_CLIENTS: usize = 40;
const STORM_BURST_CALLS: usize = 10;

fn run_overload_storm(seed: u64, with_faults: bool) -> OverloadStormSummary {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let tracer = SpanSink::new();
        let devices: Vec<Device> = vec![
            GpuDevice::new(DeviceId(0), GpuProfile::p100()).into(),
            GpuDevice::new(DeviceId(1), GpuProfile::p100()).into(),
            CpuDevice::new(DeviceId(2), CpuProfile::xeon_e5_2698v4_dual()).into(),
        ];
        let registry = KernelRegistry::new();
        registry.register(MonteCarlo::default()).unwrap();
        let shm = SharedMemory::host();
        // The resilient baseline plus every overload control: bounded
        // ejecting shard queues, AIMD admission, an inflated dispatch
        // overhead so the burst actually saturates the router.
        let config = resilient_config(seed, tracer.clone())
            .with_dispatch(DispatchMode::Sharded(ShardConfig {
                shards: 2,
                queue_cap: Some(16),
                ..ShardConfig::default()
            }))
            .with_dispatch_overhead(Duration::from_micros(200))
            .with_adaptive_admission(
                AimdConfig::default()
                    .with_target_queue_wait(Duration::from_millis(1))
                    .with_limit_range(4, 32)
                    .with_initial_limit(16)
                    .with_cooldown(Duration::from_millis(5)),
            );
        let server = KaasServer::new(devices, registry, shm, config);
        let net: KaasNetwork = KaasNetwork::new();
        spawn(server.clone().serve(net.listen("kaas").unwrap()));

        // Well-behaved clients: budgeted, jittered, hint-honoring
        // retries. The budget is shared so the whole fleet's
        // retry-to-fresh ratio stays capped.
        let budget = Rc::new(RetryBudget::new(
            RetryBudgetConfig::default()
                .with_ratio_pct(20)
                .with_burst(20),
        ));
        let retry = |stream: u64| {
            ClientRetryConfig::new(3)
                .with_backoff(
                    ExponentialBackoff::new(Duration::from_millis(1))
                        .with_jitter(0.5, seed ^ stream),
                )
                .with_budget(Rc::clone(&budget))
        };

        let mut clients = Vec::new();
        for i in 0..STORM_BASE_CLIENTS + STORM_BURST_CLIENTS {
            clients.push(
                KaasClient::connect(&net, "kaas", LinkProfile::loopback())
                    .await
                    .unwrap()
                    .with_retry(retry(i as u64)),
            );
        }

        let storm_done = if with_faults {
            let storm = StormConfig {
                devices: vec![DeviceId(0), DeviceId(1)],
                horizon: Duration::from_secs(3),
                ..StormConfig::default()
            };
            let mut injector = FaultInjector::new(&server, FaultPlan::storm(seed, &storm));
            for client in &clients {
                injector = injector.with_link(client.link_fault());
            }
            let log = injector.log();
            Some((injector.run(), log))
        } else {
            None
        };

        let mut workers = Vec::new();
        for (idx, mut client) in clients.into_iter().enumerate() {
            let burst = idx >= STORM_BASE_CLIENTS;
            workers.push(spawn(async move {
                let mut ok = 0usize;
                let mut errors: BTreeMap<&'static str, usize> = BTreeMap::new();
                // Base clients trickle from the start; the burst fleet
                // slams in together at t = 500 ms with tight deadlines
                // and no think time.
                let (calls, think, start) = if burst {
                    (
                        STORM_BURST_CALLS,
                        Duration::ZERO,
                        Duration::from_millis(500),
                    )
                } else {
                    (
                        STORM_BASE_CALLS,
                        Duration::from_millis(10),
                        Duration::from_millis(idx as u64 * 3),
                    )
                };
                sleep(start).await;
                for _ in 0..calls {
                    let mut call = client
                        .call("mci")
                        .arg(Value::U64(5_000))
                        .timeout(Duration::from_secs(3));
                    if burst {
                        call = call.deadline(Duration::from_millis(50));
                    }
                    match call.send().await {
                        Ok(_) => ok += 1,
                        Err(e) => *errors.entry(e.kind()).or_default() += 1,
                    }
                    if !think.is_zero() {
                        sleep(think).await;
                    }
                }
                (ok, errors)
            }));
        }

        let mut ok = 0usize;
        let mut errors: BTreeMap<&'static str, usize> = BTreeMap::new();
        for w in workers {
            let (o, errs) = w.await;
            ok += o;
            for (k, n) in errs {
                *errors.entry(k).or_default() += n;
            }
        }
        let faults_applied = match storm_done {
            Some((done, log)) => {
                done.await;
                log.len()
            }
            None => 0,
        };
        // Drain: restorations land, breaker cooldowns elapse, the
        // backlog empties.
        sleep(Duration::from_secs(1)).await;

        let snapshot = server.snapshot();
        let m = server.metrics_registry();
        OverloadStormSummary {
            ok,
            errors,
            faults_applied,
            shed: m.counter("errors.overloaded"),
            ejected: snapshot.dispatch_ejected,
            admission_limit: snapshot.admission_limit,
            breakers: snapshot.breakers.clone(),
            in_flight: snapshot.total_in_flight(),
            registry: m.render(),
            trace: tracer.to_chrome_json(),
        }
    })
}

/// A 5× burst landing in the middle of a runner-crash/delay-spike storm:
/// every request still resolves (Ok or typed), the control plane ends
/// clean, and no breaker is left stuck open.
#[test]
fn overload_during_fault_storm_loses_zero_requests() {
    let s = run_overload_storm(SEED, true);
    let total = STORM_BASE_CLIENTS * STORM_BASE_CALLS + STORM_BURST_CLIENTS * STORM_BURST_CALLS;
    let resolved = s.ok + s.errors.values().sum::<usize>();
    assert_eq!(
        resolved, total,
        "every invocation must resolve Ok or with a typed error: {s:?}"
    );
    assert!(s.ok > 0, "a healthy majority should still succeed: {s:?}");
    assert!(s.faults_applied > 0, "the storm must actually fire");
    assert!(
        s.shed + s.ejected > 0,
        "the burst must actually trip the overload controls: {s:?}"
    );
    assert_eq!(s.in_flight, 0, "leaked in-flight claims: {s:?}");
    assert!(
        s.breakers.values().all(|b| *b != BreakerState::Open),
        "breakers must recover to closed/half-open: {:?}",
        s.breakers
    );
    let limit = s.admission_limit.expect("adaptive admission is armed");
    assert!(
        (4..=32).contains(&limit),
        "limit escaped its range: {limit}"
    );
}

/// Pure overload — the same burst with no faults at all — must never
/// trip a circuit breaker: queue pressure is shed at admission and at
/// the queues, and only real runner failures may feed the breakers.
#[test]
fn pure_overload_never_trips_breakers() {
    let s = run_overload_storm(SEED, false);
    assert!(
        s.shed + s.ejected > 0,
        "the burst must overload the server for this test to mean anything: {s:?}"
    );
    assert!(
        s.breakers.values().all(|b| *b == BreakerState::Closed),
        "queue-wait pressure must never feed the breakers: {:?}",
        s.breakers
    );
    assert_eq!(s.in_flight, 0);
}

/// The overload storm — bursty arrivals, AIMD admission, ejections,
/// budgeted retries, crashes, delay spikes — replays byte-identically
/// from its seed.
#[test]
fn overload_storm_replays_byte_identically() {
    let a = run_overload_storm(SEED, true);
    let b = run_overload_storm(SEED, true);
    assert_eq!(
        a.trace, b.trace,
        "same seed must produce a byte-identical trace"
    );
    assert_eq!(a, b, "same seed must replay the whole run identically");
}

#[test]
fn dropped_request_times_out_as_a_typed_error() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let devices: Vec<Device> = vec![GpuDevice::new(DeviceId(0), GpuProfile::p100()).into()];
        let registry = KernelRegistry::new();
        registry.register(MonteCarlo::default()).unwrap();
        let shm = SharedMemory::host();
        let server = KaasServer::new(devices, registry, shm, ServerConfig::default());
        let net: KaasNetwork = KaasNetwork::new();
        spawn(server.clone().serve(net.listen("kaas").unwrap()));
        let mut client = KaasClient::connect(&net, "kaas", LinkProfile::loopback())
            .await
            .unwrap();

        // Swallow the next request frame on the client's uplink.
        client.link_fault().drop_next(1);
        let err = client
            .call("mci")
            .arg(Value::U64(5_000))
            .timeout(Duration::from_millis(50))
            .send()
            .await
            .unwrap_err();
        assert_eq!(err, InvokeError::TimedOut);
        assert_eq!(client.link_fault().dropped(), 1);

        // The link is healthy again: the next call goes through.
        assert!(client
            .call("mci")
            .arg(Value::U64(5_000))
            .send()
            .await
            .is_ok());
        // Nothing leaked server-side.
        assert_eq!(server.snapshot().total_in_flight(), 0);
    });
}
