//! Integration tests for the server-side dataflow engine: registered
//! workflow DAGs triggered with one request, step outputs chained
//! device-to-device as object refs, flow-level retry on transient
//! faults, and deterministic replay.

use std::rc::Rc;
use std::time::Duration;

use kaas::accel::{Device, DeviceId, GpuDevice, GpuProfile};
use kaas::core::{
    InvokeError, KaasClient, KaasNetwork, KaasServer, KernelRegistry, RetryConfig, ServerConfig,
    SpanSink, Workflow,
};
use kaas::kernels::{GaGeneration, Kernel, SoftDtw, Value};
use kaas::net::{LinkProfile, SharedMemory};
use kaas::simtime::Simulation;
use kaas::simtime::{sleep, spawn};

fn gpus(n: u32) -> Vec<Device> {
    (0..n)
        .map(|i| GpuDevice::new(DeviceId(i), GpuProfile::p100()).into())
        .collect()
}

fn boot_at(
    net: &KaasNetwork,
    addr: &str,
    kernels: Vec<Rc<dyn Kernel>>,
    config: ServerConfig,
) -> (KaasServer, SharedMemory) {
    let registry = KernelRegistry::new();
    for k in kernels {
        registry.register_rc(k).unwrap();
    }
    let shm = SharedMemory::host();
    let server = KaasServer::new(gpus(2), registry, shm.clone(), config);
    spawn(server.clone().serve(net.listen(addr).unwrap()));
    (server, shm)
}

fn boot_with(
    kernels: Vec<Rc<dyn Kernel>>,
    config: ServerConfig,
) -> (KaasServer, KaasNetwork, SharedMemory) {
    let net: KaasNetwork = KaasNetwork::new();
    let (server, shm) = boot_at(&net, "kaas", kernels, config);
    (server, net, shm)
}

fn ga_dtw() -> Vec<Rc<dyn Kernel>> {
    vec![
        Rc::new(GaGeneration::seeded(1)),
        Rc::new(SoftDtw::default()),
    ]
}

/// The diamond: one source fanning out to two branches whose outputs
/// join in a fan-in step.
fn diamond() -> Workflow {
    let mut b = Workflow::builder("diamond");
    let src = b.step("ga");
    let left = b.then("ga", src);
    let right = b.then("ga", src.inline());
    b.join("dtw", [left.into(), right.into()]);
    b.build().unwrap()
}

#[test]
fn dag_fan_out_fan_in_matches_client_driven_baseline() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        // Two identically-seeded servers: the GA kernel is stateful
        // (its RNG advances per invocation), so the baseline must not
        // perturb the server the flow runs on.
        let net: KaasNetwork = KaasNetwork::new();
        let (_s1, shm1) = boot_at(&net, "kaas:base", ga_dtw(), ServerConfig::default());
        let (_s2, shm) = boot_at(&net, "kaas:flow", ga_dtw(), ServerConfig::default());

        // Client-driven baseline: four round trips, every intermediate
        // hauled through the client.
        let mut base = KaasClient::connect(&net, "kaas:base", LinkProfile::loopback())
            .await
            .unwrap()
            .with_shared_memory(shm1);
        let sent0 = base.requests_sent();
        let pop = base
            .call("ga")
            .arg(Value::U64(16))
            .send()
            .await
            .unwrap()
            .output;
        let left = base
            .call("ga")
            .arg(pop.clone())
            .send()
            .await
            .unwrap()
            .output;
        let right = base.call("ga").arg(pop).send().await.unwrap().output;
        let expected = base
            .call("dtw")
            .arg(Value::List(vec![left, right]))
            .send()
            .await
            .unwrap()
            .output;
        assert_eq!(
            base.requests_sent() - sent0,
            4,
            "baseline pays 4 round trips"
        );

        // Registered flow: one registration, one trigger. The server
        // walks the DAG and returns only the sink's output.
        let mut c = KaasClient::connect(&net, "kaas:flow", LinkProfile::loopback())
            .await
            .unwrap()
            .with_shared_memory(shm);
        let sent1 = c.requests_sent();
        let handle = c.register_workflow(&diamond()).await.unwrap();
        let run = c.flow(&handle).input(Value::U64(16)).send().await.unwrap();
        assert_eq!(
            c.requests_sent() - sent1,
            2,
            "register + trigger is the whole conversation"
        );
        assert_eq!(run.round_trips(), 1);
        assert_eq!(run.report.steps.len(), 4);
        assert_eq!(run.report.name, "diamond");
        assert!(
            run.report.steps.iter().all(|s| s.error.is_none()),
            "every step completed"
        );
        assert_eq!(
            run.output, expected,
            "the DAG must compute exactly what the client-driven chain does"
        );
    });
}

#[test]
fn chained_steps_skip_the_host_copy_entirely() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let sink = SpanSink::new();
        let (server, net, _shm) = boot_with(
            vec![Rc::new(GaGeneration::seeded(1))],
            ServerConfig::default().with_tracer(sink.clone()),
        );
        server.prewarm("ga", 1).await.unwrap();

        // A *remote* client: only the trigger and the final population
        // cross the 1 Gbps link; intermediates never leave the device.
        let mut c = KaasClient::connect(&net, "kaas", LinkProfile::lan_1gbps())
            .await
            .unwrap();
        let wf = Workflow::linear("evolve", vec!["ga"; 4]).unwrap();
        let handle = c.register_workflow(&wf).await.unwrap();
        let run = c.flow(&handle).input(Value::U64(64)).send().await.unwrap();

        assert_eq!(run.round_trips(), 1, "an N-step pipeline is one round trip");
        assert_eq!(run.chained_hits(), 3, "every downstream step chains");
        for step in &run.report.steps[1..] {
            assert!(step.chained);
            assert_eq!(
                step.report.as_ref().unwrap().copy_in,
                Duration::ZERO,
                "a chained step must not pay a host→device copy"
            );
        }
        // The trace agrees: the runner tracks carry one `copy_in` span
        // per step, and only the first has width.
        let copies: Vec<_> = sink
            .spans()
            .into_iter()
            .filter(|s| s.name == "copy_in")
            .collect();
        assert_eq!(copies.len(), 4);
        let zero_width = copies.iter().filter(|s| s.duration() == Duration::ZERO);
        assert_eq!(
            zero_width.count(),
            3,
            "three chained steps, three zero-width copies"
        );
        assert!(
            sink.spans().iter().any(|s| s.name == "workflow"),
            "the flow itself is a traced span"
        );
        assert!(
            server.metrics_registry().counter("dataplane.hits") >= 3,
            "chained inputs are served from device residency"
        );
        assert_eq!(server.metrics_registry().counter("workflow.runs"), 1);
        assert_eq!(
            server.metrics_registry().counter("workflow.chained_hits"),
            3
        );
    });
}

#[test]
fn flow_retries_steps_through_a_runner_fault_storm() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        // Dispatcher-level retry off: every RunnerFailed surfaces to the
        // flow executor, which owns the retry budget.
        let config =
            ServerConfig::default().with_retry(RetryConfig::default().with_max_attempts(1));
        let (server, net, shm) = boot_with(vec![Rc::new(GaGeneration::seeded(1))], config);
        let mut c = KaasClient::connect(&net, "kaas", LinkProfile::loopback())
            .await
            .unwrap()
            .with_shared_memory(shm);

        // Warm a runner, then kill it: the flow's first step lands on
        // the corpse and must be retried inside the flow.
        let first = c.call("ga").arg(Value::U64(64)).send().await.unwrap();
        assert!(server.kill_runner("ga", first.report.device));

        let mut b = Workflow::builder("storm");
        let mut prev = b.step("ga");
        for _ in 1..8 {
            prev = b.then("ga", prev);
        }
        b.step_attempts(3);
        let wf = b.build().unwrap();
        let handle = c.register_workflow(&wf).await.unwrap();

        // Keep the storm going mid-flow: two more kills while steps run.
        let storm_server = server.clone();
        spawn(async move {
            for _ in 0..2 {
                sleep(Duration::from_millis(400)).await;
                storm_server.kill_runner("ga", DeviceId(0));
                storm_server.kill_runner("ga", DeviceId(1));
            }
        });

        let run = c.flow(&handle).input(Value::U64(64)).send().await.unwrap();
        assert_eq!(run.report.steps.len(), 8);
        assert!(
            run.report.steps.iter().all(|s| s.error.is_none()),
            "the flow rides out the storm"
        );
        let attempts: u32 = run.report.steps.iter().map(|s| s.attempts).sum();
        assert!(
            attempts > 8,
            "at least one step must have been retried, total attempts {attempts}"
        );
        match &run.output {
            Value::F64s(pop) => assert_eq!(pop.len(), 64 * 100),
            other => panic!("expected a population, got {other:?}"),
        }
    });
}

#[test]
fn failed_step_aborts_the_flow_with_partial_results() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (server, net, shm) = boot_with(ga_dtw(), ServerConfig::default());
        let mut c = KaasClient::connect(&net, "kaas", LinkProfile::loopback())
            .await
            .unwrap()
            .with_shared_memory(shm);

        // "dtw" rejects a bare population — the second step fails with a
        // non-transient error and the flow aborts, reporting how far it
        // got.
        let wf = Workflow::linear("doomed", ["ga", "dtw"]).unwrap();
        let handle = c.register_workflow(&wf).await.unwrap();
        let err = c
            .flow(&handle)
            .input(Value::U64(8))
            .send()
            .await
            .unwrap_err();
        assert!(
            matches!(err.error, InvokeError::BadInput(_)),
            "the step's own error surfaces: {:?}",
            err.error
        );
        assert_eq!(err.partial.len(), 2, "both steps are accounted for");
        assert!(err.partial[0].error.is_none(), "step 0 completed");
        assert!(err.partial[0].report.is_some());
        assert!(err.partial[1].error.is_some(), "step 1 carries the failure");
        assert!(err.partial[1].report.is_none());
        assert_eq!(server.metrics_registry().counter("workflow.failures"), 1);
        assert_eq!(
            server
                .metrics_registry()
                .gauge("workflow.intermediates_live"),
            Some(0.0),
            "an aborted flow must release every intermediate pin"
        );
    });
}

#[test]
fn same_seed_replay_is_byte_identical() {
    // The whole dataflow engine lives inside the deterministic
    // simulation: two fresh runs of the same scenario must agree on
    // every output byte, every latency, and every per-step report.
    let episode = || {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let (_s, net, shm) = boot_with(ga_dtw(), ServerConfig::default());
            let mut c = KaasClient::connect(&net, "kaas", LinkProfile::lan_1gbps())
                .await
                .unwrap()
                .with_shared_memory(shm);
            let handle = c.register_workflow(&diamond()).await.unwrap();
            let run = c.flow(&handle).input(Value::U64(16)).send().await.unwrap();
            let steps: Vec<String> = run
                .report
                .steps
                .iter()
                .map(|s| {
                    format!(
                        "{}:{}:{}:{}:{:?}",
                        s.step,
                        s.kernel,
                        s.attempts,
                        s.chained,
                        s.report
                            .as_ref()
                            .map(|r| (r.device, r.copy_in, r.kernel_exec)),
                    )
                })
                .collect();
            format!("{:?} {:?} {}", run.output, run.latency, steps.join("|"))
        })
    };
    assert_eq!(episode(), episode(), "same seed, same bytes");
}
