//! Integration: the sharded dispatch engine and wire batching.
//!
//! Covers the PR-6 refactor guarantees: per-shard queue accounting in
//! [`ServerSnapshot`] stays consistent even mid-storm, same-seed runs
//! replay byte-identically, batch members succeed and fail
//! individually, and the serialized A/B baseline still works end to
//! end.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

use kaas::accel::{CpuDevice, CpuProfile, Device, DeviceId, GpuDevice, GpuProfile};
use kaas::core::{
    BatchCall, BreakerConfig, DispatchMode, EvictionConfig, ExponentialBackoff, FallbackConfig,
    FaultInjector, FaultPlan, InvokeError, KaasClient, KaasNetwork, KaasServer, KernelRegistry,
    RetryConfig, ServerConfig, ShardConfig, ShardPolicy, StormConfig,
};
use kaas::kernels::{MonteCarlo, Value};
use kaas::net::{LinkProfile, SharedMemory};
use kaas::simtime::{sleep, spawn, Simulation, SpanSink};

const SEED: u64 = 2026;

fn testbed() -> Vec<Device> {
    vec![
        GpuDevice::new(DeviceId(0), GpuProfile::p100()).into(),
        GpuDevice::new(DeviceId(1), GpuProfile::p100()).into(),
        CpuDevice::new(DeviceId(2), CpuProfile::xeon_e5_2698v4_dual()).into(),
    ]
}

fn boot(config: ServerConfig) -> (KaasServer, KaasNetwork) {
    let registry = KernelRegistry::new();
    registry.register(MonteCarlo::default()).unwrap();
    let server = KaasServer::new(testbed(), registry, SharedMemory::host(), config);
    let net: KaasNetwork = KaasNetwork::new();
    spawn(server.clone().serve(net.listen("kaas").unwrap()));
    (server, net)
}

async fn connect(net: &KaasNetwork) -> KaasClient {
    KaasClient::connect(net, "kaas", LinkProfile::loopback())
        .await
        .unwrap()
}

fn resilient_sharded_config(seed: u64, policy: ShardPolicy, tracer: SpanSink) -> ServerConfig {
    ServerConfig::default()
        .with_tracer(tracer)
        .with_dispatch(DispatchMode::Sharded(ShardConfig {
            shards: 3,
            policy,
            seed,
            ..ShardConfig::default()
        }))
        .with_retry(
            RetryConfig::default()
                .with_max_attempts(4)
                .with_backoff(
                    ExponentialBackoff::new(Duration::from_millis(1)).with_jitter(0.5, seed),
                )
                .with_budget(Duration::from_millis(100)),
        )
        .with_breaker(
            BreakerConfig::default()
                .with_failure_threshold(3)
                .with_cooldown(Duration::from_millis(200)),
        )
        .with_eviction(EvictionConfig::default().with_failure_threshold(2))
        .with_fallback(FallbackConfig::gpu_to_cpu())
}

/// Snapshot queue accounting holds at every sampled instant of a
/// seeded fault storm: the per-shard depths always sum to the total
/// queued work, queues actually build under the bursty load, and the
/// run drains to zero.
#[test]
fn shard_depths_sum_to_queued_under_a_fault_storm() {
    let mut sim = Simulation::new();
    let (violations, max_queued) = sim.block_on(async {
        let (server, net) = boot(resilient_sharded_config(
            SEED,
            ShardPolicy::LeastLoaded,
            SpanSink::new(),
        ));

        let mut clients = Vec::new();
        for _ in 0..6 {
            clients.push(connect(&net).await);
        }
        let storm = StormConfig {
            devices: vec![DeviceId(0), DeviceId(1)],
            horizon: Duration::from_secs(3),
            ..StormConfig::default()
        };
        let mut injector = FaultInjector::new(&server, FaultPlan::storm(SEED, &storm));
        for client in &clients {
            injector = injector.with_link(client.link_fault());
        }
        let storm_done = injector.run();

        // Sampler: checks the invariant every simulated millisecond
        // while the workers run. Violations are collected, not
        // asserted, so the executor is never unwound mid-step.
        let violations = Rc::new(RefCell::new(Vec::new()));
        let max_queued = Rc::new(Cell::new(0usize));
        let done = Rc::new(Cell::new(false));
        {
            let server = server.clone();
            let violations = Rc::clone(&violations);
            let max_queued = Rc::clone(&max_queued);
            let done = Rc::clone(&done);
            spawn(async move {
                while !done.get() {
                    let snap = server.snapshot();
                    let sum: usize = snap.shard_depths.iter().sum();
                    if sum != snap.dispatch_queued {
                        violations
                            .borrow_mut()
                            .push((snap.shard_depths.clone(), snap.dispatch_queued));
                    }
                    max_queued.set(max_queued.get().max(snap.dispatch_queued));
                    sleep(Duration::from_millis(1)).await;
                }
            });
        }

        // Bursty load: every client fires 25-call batch frames, so the
        // server sees waves of concurrent dispatches that pile onto the
        // shard queues while faults crash runners and flap devices.
        let mut workers = Vec::new();
        for (idx, mut client) in clients.into_iter().enumerate() {
            workers.push(spawn(async move {
                sleep(Duration::from_millis(idx as u64 * 7)).await;
                for _ in 0..8 {
                    let mut b = client.batch().timeout(Duration::from_secs(3));
                    for _ in 0..25 {
                        b = b.call(BatchCall::new("mci").arg(Value::U64(5_000)));
                    }
                    // Members resolve individually (Ok or typed error);
                    // only a dead connection fails the frame.
                    b.send().await.expect("batch frame resolves");
                    sleep(Duration::from_millis(40)).await;
                }
            }));
        }
        for w in workers {
            w.await;
        }
        storm_done.await;
        sleep(Duration::from_secs(1)).await;
        done.set(true);

        let snap = server.snapshot();
        assert_eq!(snap.dispatch_queued, 0, "queues must drain: {snap:?}");
        assert_eq!(snap.shard_depths, vec![0, 0, 0]);
        assert_eq!(snap.total_in_flight(), 0);
        let seen = violations.borrow().clone();
        (seen, max_queued.get())
    });
    assert!(
        violations.is_empty(),
        "shard depths must always sum to dispatch_queued: {violations:?}"
    );
    assert!(
        max_queued > 0,
        "the bursty load should actually queue work on the shards"
    );
}

/// Everything observable about one sharded chaos run.
#[derive(Debug, PartialEq, Eq)]
struct RunDigest {
    ok: usize,
    errors: BTreeMap<&'static str, usize>,
    registry: String,
    trace: String,
}

fn run_sharded_chaos(seed: u64, policy: ShardPolicy) -> RunDigest {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let tracer = SpanSink::new();
        let (server, net) = boot(resilient_sharded_config(seed, policy, tracer.clone()));
        let mut clients = Vec::new();
        for _ in 0..4 {
            clients.push(connect(&net).await);
        }
        let storm = StormConfig {
            devices: vec![DeviceId(0), DeviceId(1)],
            horizon: Duration::from_secs(2),
            ..StormConfig::default()
        };
        let mut injector = FaultInjector::new(&server, FaultPlan::storm(seed, &storm));
        for client in &clients {
            injector = injector.with_link(client.link_fault());
        }
        let storm_done = injector.run();

        let mut workers = Vec::new();
        for (idx, mut client) in clients.into_iter().enumerate() {
            workers.push(spawn(async move {
                let mut ok = 0usize;
                let mut errors: BTreeMap<&'static str, usize> = BTreeMap::new();
                sleep(Duration::from_millis(idx as u64 * 11)).await;
                for _ in 0..30 {
                    match client
                        .call("mci")
                        .arg(Value::U64(5_000))
                        .timeout(Duration::from_secs(3))
                        .send()
                        .await
                    {
                        Ok(_) => ok += 1,
                        Err(e) => *errors.entry(e.kind()).or_default() += 1,
                    }
                    sleep(Duration::from_millis(25)).await;
                }
                (ok, errors)
            }));
        }
        let mut ok = 0usize;
        let mut errors: BTreeMap<&'static str, usize> = BTreeMap::new();
        for w in workers {
            let (o, errs) = w.await;
            ok += o;
            for (k, n) in errs {
                *errors.entry(k).or_default() += n;
            }
        }
        storm_done.await;
        sleep(Duration::from_secs(1)).await;
        RunDigest {
            ok,
            errors,
            registry: server.metrics_registry().render(),
            trace: tracer.to_chrome_json(),
        }
    })
}

/// Sharded dispatch replays byte-identically from the same seed, for
/// every shard policy — including [`ShardPolicy::LeastLoaded`], whose
/// tie-breaks come from the seeded RNG stream.
#[test]
fn sharded_chaos_replays_byte_identically() {
    for policy in [
        ShardPolicy::RoundRobin,
        ShardPolicy::KernelAffinity,
        ShardPolicy::LeastLoaded,
    ] {
        let a = run_sharded_chaos(SEED, policy);
        let b = run_sharded_chaos(SEED, policy);
        assert_eq!(
            a.trace, b.trace,
            "{policy:?}: same seed must produce a byte-identical trace"
        );
        assert_eq!(a, b, "{policy:?}: same seed must replay identically");
        assert!(a.ok > 0, "{policy:?}: a healthy majority should succeed");
    }
}

/// Batch members resolve individually and in order: good members
/// succeed even when a sibling in the same frame fails.
#[test]
fn batch_members_fail_and_succeed_individually() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (server, net) = boot(ServerConfig::default());
        let mut client = connect(&net).await;

        let results = client
            .batch()
            .call(BatchCall::new("mci").arg(Value::U64(10_000)))
            .call(BatchCall::new("no-such-kernel").arg(Value::U64(1)))
            .call(BatchCall::new("mci").arg(Value::U64(20_000)))
            .send()
            .await
            .expect("the frame itself is delivered");
        assert_eq!(results.len(), 3);
        let first = results[0].as_ref().expect("member 0 succeeds");
        assert!(matches!(first.output, Value::F64(v) if (v - 10f64.ln()).abs() < 0.5));
        assert_eq!(
            results[1].as_ref().unwrap_err(),
            &InvokeError::UnknownKernel("no-such-kernel".into())
        );
        assert!(results[2].is_ok(), "member 2 unaffected by the sibling");

        // The frame counters saw one batch of three members.
        let m = server.metrics_registry();
        assert_eq!(m.counter("dispatch.batches"), 1);
        assert_eq!(m.counter("dispatch.batch_members"), 3);

        // An empty batch short-circuits client-side.
        let empty = client.batch().send().await.unwrap();
        assert!(empty.is_empty());
    });
}

/// A dropped batch frame times out as one unit: the outer send is `Ok`
/// (the protocol held) and every member reports [`InvokeError::TimedOut`].
#[test]
fn batch_timeout_fails_every_member() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (server, net) = boot(ServerConfig::default());
        let mut client = connect(&net).await;

        client.link_fault().drop_next(1);
        let results = client
            .batch()
            .timeout(Duration::from_millis(50))
            .call(BatchCall::new("mci").arg(Value::U64(5_000)))
            .call(BatchCall::new("mci").arg(Value::U64(5_000)))
            .send()
            .await
            .unwrap();
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.as_ref().unwrap_err(), &InvokeError::TimedOut);
        }

        // The connection survives: the next batch goes through.
        let ok = client
            .batch()
            .call(BatchCall::new("mci").arg(Value::U64(5_000)))
            .send()
            .await
            .unwrap();
        assert!(ok[0].is_ok());
        assert_eq!(server.snapshot().total_in_flight(), 0);
    });
}

/// The serialized A/B baseline still serves calls and batches end to
/// end, and reports no shard state in its snapshot.
#[test]
fn serialized_baseline_still_works_end_to_end() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (server, net) = boot(ServerConfig::default().with_dispatch(DispatchMode::Serialized));
        let mut client = connect(&net).await;

        let single = client.call("mci").arg(Value::U64(10_000)).send().await;
        assert!(single.is_ok());
        let batch = client
            .batch()
            .call(BatchCall::new("mci").arg(Value::U64(5_000)))
            .call(BatchCall::new("mci").arg(Value::U64(5_000)))
            .send()
            .await
            .unwrap();
        assert!(batch.iter().all(|r| r.is_ok()));

        let snap = server.snapshot();
        assert!(
            snap.shard_depths.is_empty(),
            "the serialized engine has no shards: {snap:?}"
        );
        assert_eq!(snap.dispatch_queued, 0);
    });
}
