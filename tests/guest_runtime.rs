//! Integration: the guest kernel runtime end to end.
//!
//! Covers the PR-9 guarantees: a guest bytecode kernel dispatched
//! through the sharded engine produces results identical to an
//! equivalent compiled-in kernel, the register → invoke → remove
//! lifecycle is versioned and tombstoning, the snapshot/restore
//! cold-start path is measurably cheaper than a full instantiate,
//! per-tenant fuel/byte metering bills exactly once, and a seeded run
//! with a runner crash mid-guest-invoke replays byte-identically while
//! retries keep resolving the version the request started with.

use std::rc::Rc;
use std::time::Duration;

use kaas::accel::{Device, DeviceClass, DeviceId, GpuDevice, GpuProfile, WorkUnits};
use kaas::core::{
    DispatchMode, InvokeError, KaasClient, KaasNetwork, KaasServer, KernelRegistry, RetryConfig,
    ServerConfig, ShardConfig,
};
use kaas::guest::{GuestProgram, Op};
use kaas::kernels::{Kernel, KernelError, Value};
use kaas::net::{LinkProfile, SharedMemory};
use kaas::simtime::{sleep, spawn, Simulation, SpanSink};

const SEED: u64 = 2026;

fn gpus(n: u32) -> Vec<Device> {
    (0..n)
        .map(|i| GpuDevice::new(DeviceId(i), GpuProfile::p100()).into())
        .collect()
}

fn boot(
    devices: Vec<Device>,
    kernels: Vec<Rc<dyn Kernel>>,
    config: ServerConfig,
) -> (KaasServer, KaasNetwork, SharedMemory) {
    let registry = KernelRegistry::new();
    for k in kernels {
        registry.register_rc(k).unwrap();
    }
    let shm = SharedMemory::host();
    let server = KaasServer::new(devices, registry, shm.clone(), config);
    let net: KaasNetwork = KaasNetwork::new();
    spawn(server.clone().serve(net.listen("kaas").unwrap()));
    (server, net, shm)
}

async fn connect(net: &KaasNetwork, shm: SharedMemory) -> KaasClient {
    KaasClient::connect(net, "kaas", LinkProfile::loopback())
        .await
        .expect("listening")
        .with_shared_memory(shm)
}

/// The compiled-in twin of [`scaled_sum_program`]: `sum(x · 2.5) + 7`.
#[derive(Debug)]
struct ScaledSum;

impl Kernel for ScaledSum {
    fn name(&self) -> &str {
        "scaledsum"
    }

    fn device_class(&self) -> DeviceClass {
        DeviceClass::Gpu
    }

    fn work(&self, input: &Value) -> Result<WorkUnits, KernelError> {
        Ok(WorkUnits::new(2.0 * input.wire_bytes() as f64).with_bytes(input.wire_bytes(), 16))
    }

    fn execute(&self, input: &Value) -> Result<Value, KernelError> {
        match input {
            Value::F64s(xs) => Ok(Value::F64(xs.iter().map(|x| x * 2.5).sum::<f64>() + 7.0)),
            other => Err(KernelError::BadInput(format!(
                "expected F64s, got {other:?}"
            ))),
        }
    }
}

/// The guest twin of [`ScaledSum`], with the bias in an init-time
/// global so the test also exercises instantiate state.
fn scaled_sum_program() -> GuestProgram {
    GuestProgram::new("scaledsum", DeviceClass::Gpu)
        .with_work(2.0, 0.0, 16)
        .with_init(1, vec![Op::PushF(7.0), Op::SetGlobal(0)])
        .with_body(vec![
            Op::Input,
            Op::PushF(2.5),
            Op::VecScale,
            Op::VecSum,
            Op::Global(0),
            Op::Add,
            Op::Return,
        ])
}

/// The acceptance bar for the whole subsystem: the same math registered
/// as tenant bytecode and compiled into the server binary must agree
/// bit for bit, through the sharded dispatch engine, and every guest
/// invocation must land in the per-tenant meters exactly once.
#[test]
fn guest_matches_compiled_in_through_sharded_dispatch() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let config = ServerConfig::default().with_dispatch(DispatchMode::Sharded(ShardConfig {
            shards: 2,
            ..ShardConfig::default()
        }));
        let (server, net, shm) = boot(gpus(2), vec![Rc::new(ScaledSum)], config);
        let mut client = connect(&net, shm).await;

        let full = client
            .register_kernel("acme", &scaled_sum_program())
            .await
            .unwrap();
        assert_eq!(full, "acme/scaledsum@v1");

        for n in [1usize, 3, 64, 1000] {
            let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.25 - 3.0).collect();
            let native = client
                .call("scaledsum")
                .arg(Value::F64s(xs.clone()))
                .send()
                .await
                .unwrap();
            let guest = client
                .call("acme/scaledsum")
                .arg(Value::F64s(xs))
                .send()
                .await
                .unwrap();
            assert_eq!(
                native.output.payload(),
                guest.output.payload(),
                "guest and compiled-in results diverged at n = {n}"
            );
        }

        let m = server.metrics_registry();
        assert_eq!(m.counter("guest.invocations"), 4);
        assert!(m.counter("guest.fuel_used") > 0);
        assert!(m.counter("guest.bytes") > 0);
        assert_eq!(
            m.counter("guest.tenant.acme.fuel"),
            m.counter("guest.fuel_used"),
            "a single tenant owns all the fuel"
        );
    });
}

#[test]
fn register_invoke_remove_lifecycle_is_versioned() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (server, net, shm) = boot(gpus(1), vec![], ServerConfig::default());
        let mut client = connect(&net, shm).await;
        let adder = |k: u64| {
            GuestProgram::new("adder", DeviceClass::Gpu).with_body(vec![
                Op::Input,
                Op::PushU(k),
                Op::Add,
                Op::Return,
            ])
        };

        // Registration is append-only: each upload gets the next id.
        assert_eq!(
            client.register_kernel("acme", &adder(1)).await.unwrap(),
            "acme/adder@v1"
        );
        assert_eq!(
            client.register_kernel("acme", &adder(2)).await.unwrap(),
            "acme/adder@v2"
        );
        assert_eq!(
            client.list_guest_kernels("acme").await.unwrap(),
            vec!["acme/adder@v1", "acme/adder@v2"]
        );

        // A bare name runs the latest version; `@vN` pins one.
        let ten = client
            .call("acme/adder")
            .arg(Value::U64(10))
            .send()
            .await
            .unwrap();
        assert_eq!(ten.output.payload(), &Value::U64(12));
        let pinned = client
            .call("acme/adder@v1")
            .arg(Value::U64(10))
            .send()
            .await
            .unwrap();
        assert_eq!(pinned.output.payload(), &Value::U64(11));

        // Tombstoning v2 falls the bare name back to v1 …
        assert_eq!(client.remove_kernel("acme/adder@v2").await.unwrap(), 1);
        let back = client
            .call("acme/adder")
            .arg(Value::U64(10))
            .send()
            .await
            .unwrap();
        assert_eq!(back.output.payload(), &Value::U64(11));
        // … and a tombstoned version is gone for good.
        assert_eq!(
            client.remove_kernel("acme/adder@v2").await.unwrap_err(),
            InvokeError::UnknownGuestKernel("acme/adder@v2".into())
        );

        // Removing the bare name sweeps every remaining live version.
        assert_eq!(client.remove_kernel("acme/adder").await.unwrap(), 1);
        assert!(client.list_guest_kernels("acme").await.unwrap().is_empty());
        let gone = client
            .call("acme/adder")
            .arg(Value::U64(10))
            .send()
            .await
            .unwrap_err();
        assert_eq!(gone, InvokeError::UnknownGuestKernel("acme/adder".into()));

        // Ids are never reused: the next upload is v3, not v1.
        assert_eq!(
            client.register_kernel("acme", &adder(3)).await.unwrap(),
            "acme/adder@v3"
        );

        let m = server.metrics_registry();
        assert_eq!(m.counter("guest.registered"), 3);
        assert_eq!(m.counter("guest.removed"), 2);
    });
}

/// Two equivalent programs with an expensive init table, one opted into
/// the snapshot path: both compute the same answer, but the restored
/// runner's warm-init lands in `guest.cold_start.restore` at least 3×
/// cheaper than the full instantiate.
#[test]
fn snapshot_restore_cold_start_beats_full_instantiate() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (server, net, shm) = boot(gpus(2), vec![], ServerConfig::default());
        let mut client = connect(&net, shm).await;
        let table = |name: &str| {
            GuestProgram::new(name, DeviceClass::Gpu)
                .with_init(
                    1,
                    vec![
                        Op::PushU(4096),
                        Op::PushF(0.5),
                        Op::VecFill,
                        Op::SetGlobal(0),
                    ],
                )
                .with_body(vec![Op::Global(0), Op::VecSum, Op::Return])
        };
        let full = client
            .register_kernel("acme", &table("coldfull"))
            .await
            .unwrap();
        let snap = client
            .register_kernel("acme", &table("coldsnap").with_snapshot())
            .await
            .unwrap();

        let a = client.call(&full).arg(Value::Unit).send().await.unwrap();
        let b = client.call(&snap).arg(Value::Unit).send().await.unwrap();
        assert_eq!(a.output.payload(), &Value::F64(2048.0));
        assert_eq!(a.output.payload(), b.output.payload());

        let m = server.metrics_registry();
        let full_h = m
            .summary("guest.cold_start.full")
            .expect("full instantiate was observed");
        let restore_h = m
            .summary("guest.cold_start.restore")
            .expect("snapshot restore was observed");
        assert_eq!((full_h.count, restore_h.count), (1, 1));
        assert!(
            full_h.sum >= 3.0 * restore_h.sum,
            "restore must be ≥3× cheaper: full {} vs restore {}",
            full_h.sum,
            restore_h.sum
        );

        // Warm invocations pay neither path again.
        client.call(&snap).arg(Value::Unit).send().await.unwrap();
        assert_eq!(m.summary("guest.cold_start.restore").unwrap().count, 1);
    });
}

/// One seeded crash run: a slow guest invocation is in flight when its
/// runner dies and a newer version of the same bare name is registered.
#[derive(Debug, PartialEq)]
struct GuestCrashSummary {
    inflight: Value,
    fresh: Value,
    restores: u64,
    registry: String,
    trace: String,
}

fn run_guest_crash(_seed: u64) -> GuestCrashSummary {
    let mut sim = Simulation::new();
    sim.block_on(async move {
        let tracer = SpanSink::new();
        let config = ServerConfig::default()
            .with_tracer(tracer.clone())
            .with_retry(RetryConfig::default().with_max_attempts(3));
        let (server, net, shm) = boot(gpus(1), vec![], config);
        let mut admin = connect(&net, shm.clone()).await;
        let mut worker = connect(&net, shm).await;

        // ~2 s of modeled device time per run, so the crash below lands
        // squarely mid-kernel-exec on the first attempt.
        let slow = GuestProgram::new("slow", DeviceClass::Gpu)
            .with_work(2.0e13, 0.0, 16)
            .with_snapshot()
            .with_body(vec![Op::Input, Op::PushU(1), Op::Add, Op::Return]);
        let v1 = admin.register_kernel("acme", &slow).await.unwrap();

        let inflight = spawn(async move {
            worker
                .call("acme/slow")
                .arg(Value::U64(10))
                .timeout(Duration::from_secs(30))
                .send()
                .await
        });

        // Crash the runner mid-invoke, then slide a v2 with different
        // semantics under the same bare name before the retry runs.
        sleep(Duration::from_millis(1_500)).await;
        assert!(server.pool().crash_runner(&v1).is_some());
        let fast = GuestProgram::new("slow", DeviceClass::Gpu).with_body(vec![
            Op::Input,
            Op::PushU(2),
            Op::Add,
            Op::Return,
        ]);
        assert_eq!(
            admin.register_kernel("acme", &fast).await.unwrap(),
            "acme/slow@v2"
        );

        // The retried attempt re-resolves the version the request
        // started with — v1 — even though v2 is now the latest …
        let inflight = inflight.await.unwrap().output.payload().clone();
        // … while a fresh bare-name call picks up v2.
        let fresh = admin
            .call("acme/slow")
            .arg(Value::U64(10))
            .send()
            .await
            .unwrap()
            .output
            .payload()
            .clone();

        let m = server.metrics_registry();
        GuestCrashSummary {
            inflight,
            fresh,
            restores: m
                .summary("guest.cold_start.restore")
                .map(|s| s.count)
                .unwrap_or(0),
            registry: m.render(),
            trace: tracer.to_chrome_json(),
        }
    })
}

#[test]
fn crash_mid_guest_invoke_retries_same_version_and_replays() {
    let a = run_guest_crash(SEED);
    assert_eq!(a.inflight, Value::U64(11), "retry must stay on v1: {a:?}");
    assert_eq!(a.fresh, Value::U64(12), "fresh calls resolve v2: {a:?}");
    assert!(
        a.restores >= 2,
        "the crashed snapshot runner must restore again on retry: {a:?}"
    );
    let b = run_guest_crash(SEED);
    assert_eq!(a, b, "same seed must replay the whole run identically");
}
