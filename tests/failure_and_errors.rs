//! Integration: failure injection and error paths across the stack.

use std::rc::Rc;

use kaas::accel::{Device, DeviceId, GpuDevice, GpuProfile};
use kaas::core::{InvokeError, KaasClient, KaasNetwork, KaasServer, KernelRegistry, ServerConfig};
use kaas::kernels::{Kernel, MatMul, MonteCarlo, Value};
use kaas::net::{LinkProfile, SharedMemory};
use kaas::simtime::{spawn, Simulation};

fn gpus(n: u32) -> Vec<Device> {
    (0..n)
        .map(|i| GpuDevice::new(DeviceId(i), GpuProfile::p100()).into())
        .collect()
}

fn boot(
    devices: Vec<Device>,
    kernels: Vec<Rc<dyn Kernel>>,
) -> (KaasServer, KaasNetwork, SharedMemory) {
    let registry = KernelRegistry::new();
    for k in kernels {
        registry.register_rc(k).unwrap();
    }
    let shm = SharedMemory::host();
    let server = KaasServer::new(devices, registry, shm.clone(), ServerConfig::default());
    let net: KaasNetwork = KaasNetwork::new();
    spawn(server.clone().serve(net.listen("kaas").unwrap()));
    (server, net, shm)
}

async fn connect(net: &KaasNetwork, shm: SharedMemory) -> KaasClient {
    KaasClient::connect(net, "kaas", LinkProfile::loopback())
        .await
        .expect("listening")
        .with_shared_memory(shm)
}

#[test]
fn unknown_kernel_is_reported() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (_s, net, shm) = boot(gpus(1), vec![Rc::new(MatMul::new())]);
        let mut client = connect(&net, shm).await;
        let err = client
            .call("nonexistent")
            .arg(Value::U64(1))
            .send()
            .await
            .unwrap_err();
        assert_eq!(err, InvokeError::UnknownKernel("nonexistent".into()));
    });
}

#[test]
fn bad_input_is_reported_not_fatal() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (_s, net, shm) = boot(gpus(1), vec![Rc::new(MatMul::new())]);
        let mut client = connect(&net, shm).await;
        let err = client
            .call("matmul")
            .arg(Value::Unit)
            .send()
            .await
            .unwrap_err();
        assert!(matches!(err, InvokeError::BadInput(_)), "got {err:?}");
        // The server keeps serving after a bad request.
        let ok = client.call("matmul").arg(Value::U64(64)).send().await;
        assert!(ok.is_ok());
    });
}

#[test]
fn missing_device_class_is_reported() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        // A GPU kernel on a deployment with no GPU.
        let cpu: Device = kaas::accel::CpuDevice::new(
            DeviceId(0),
            kaas::accel::CpuProfile::xeon_e5_2698v4_dual(),
        )
        .into();
        let (_s, net, shm) = boot(vec![cpu], vec![Rc::new(MatMul::new())]);
        let mut client = connect(&net, shm).await;
        let err = client
            .call("matmul")
            .arg(Value::U64(64))
            .send()
            .await
            .unwrap_err();
        assert_eq!(err, InvokeError::NoDevice("GPU".into()));
    });
}

#[test]
fn killed_runner_is_replaced_transparently() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (server, net, shm) = boot(gpus(2), vec![Rc::new(MonteCarlo::default())]);
        let mut client = connect(&net, shm).await;
        let first = client
            .call("mci")
            .arg(Value::U64(10_000))
            .out_of_band()
            .send()
            .await
            .unwrap();
        let dev0 = first.report.device;
        // Crash the runner that served us.
        assert!(server.kill_runner("mci", dev0));
        // The next invocation is retried onto a fresh runner and succeeds.
        let second = client
            .call("mci")
            .arg(Value::U64(10_000))
            .out_of_band()
            .send()
            .await
            .unwrap();
        assert!(second.report.cold_start, "replacement runner cold-starts");
        assert_ne!(
            second.report.runner, first.report.runner,
            "a new runner must serve after the crash"
        );
    });
}

#[test]
fn failed_invocation_releases_in_flight() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (server, net, shm) = boot(gpus(1), vec![Rc::new(MatMul::new())]);
        let mut client = connect(&net, shm).await;
        // Bad-input path: the kernel rejects its argument after a slot
        // was claimed.
        let err = client
            .call("matmul")
            .arg(Value::Unit)
            .send()
            .await
            .unwrap_err();
        assert!(matches!(err, InvokeError::BadInput(_)));
        assert_eq!(
            server.snapshot().in_flight("matmul"),
            0,
            "failed invocation must release its in-flight claim"
        );
        // Crash path: a runner dying mid-service must not leak claims
        // either, even after the transparent retries.
        let first = client
            .call("matmul")
            .arg(Value::U64(64))
            .send()
            .await
            .unwrap();
        assert!(server.kill_runner("matmul", first.report.device));
        client
            .call("matmul")
            .arg(Value::U64(64))
            .send()
            .await
            .unwrap();
        assert_eq!(server.snapshot().in_flight("matmul"), 0);
    });
}

#[test]
fn autoscaler_never_exceeds_device_count() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let devices = 2u32;
        let (server, net, shm) = boot(gpus(devices), vec![Rc::new(MonteCarlo::default())]);
        // Far more concurrent requests than 2 devices × default
        // per-runner capacity can absorb: the autoscaler wants to grow
        // on every saturated placement but is capped by hardware.
        let mut handles = Vec::new();
        for _ in 0..64 {
            let shm = shm.clone();
            let net = net.clone();
            handles.push(spawn(async move {
                let mut client = connect(&net, shm).await;
                client
                    .call("mci")
                    .arg(Value::U64(10_000))
                    .send()
                    .await
                    .unwrap();
            }));
        }
        let watcher = {
            let server = server.clone();
            spawn(async move {
                let mut peak = 0;
                for _ in 0..1000 {
                    peak = peak.max(server.snapshot().runners("mci"));
                    kaas::simtime::sleep(std::time::Duration::from_micros(50)).await;
                }
                peak
            })
        };
        for h in handles {
            h.await;
        }
        let peak = watcher.await;
        assert!(peak >= 2, "load this heavy should use every device");
        assert!(
            peak <= devices as usize,
            "runner fleet ({peak}) exceeded physical device count ({devices})"
        );
    });
}

#[test]
fn oob_without_shared_memory_fails_cleanly() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (_s, net, _shm) = boot(gpus(1), vec![Rc::new(MatMul::new())]);
        // No shared-memory attachment (a remote client).
        let mut client = KaasClient::connect(&net, "kaas", LinkProfile::lan_1gbps())
            .await
            .expect("listening");
        let err = client
            .call("matmul")
            .arg(Value::U64(8))
            .out_of_band()
            .send()
            .await
            .unwrap_err();
        assert_eq!(err, InvokeError::BadHandle);
        // In-band still works for remote clients.
        assert!(client
            .call("matmul")
            .arg(Value::U64(8))
            .send()
            .await
            .is_ok());
    });
}

#[test]
fn in_band_and_out_of_band_produce_identical_outputs() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (_s, net, shm) = boot(gpus(1), vec![Rc::new(MatMul::new())]);
        let mut client = connect(&net, shm).await;
        let a = client
            .call("matmul")
            .arg(Value::U64(100))
            .send()
            .await
            .unwrap();
        let b = client
            .call("matmul")
            .arg(Value::U64(100))
            .out_of_band()
            .send()
            .await
            .unwrap();
        assert_eq!(a.output, b.output);
    });
}

#[test]
fn sized_envelopes_round_trip() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (_s, net, shm) = boot(gpus(1), vec![Rc::new(MatMul::new())]);
        let mut client = connect(&net, shm).await;
        let input = Value::sized(2 * 8 * 2000 * 2000, Value::U64(2000));
        let inv = client
            .call("matmul")
            .arg(input)
            .out_of_band()
            .send()
            .await
            .unwrap();
        // The response mirrors the descriptor size (result matrix bytes).
        assert_eq!(inv.output.wire_bytes(), 8 * 2000 * 2000);
        assert!(matches!(inv.output.payload(), Value::F64(_)));
    });
}
