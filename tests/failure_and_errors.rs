//! Integration: failure injection and error paths across the stack.

use std::collections::BTreeSet;
use std::rc::Rc;
use std::time::Duration;

use kaas::accel::{Device, DeviceClass, DeviceId, GpuDevice, GpuProfile};
use kaas::core::{
    BreakerConfig, DataRef, InvokeError, KaasClient, KaasNetwork, KaasServer, KernelRegistry,
    Request, RetryConfig, ServerConfig, WorkflowHandle,
};
use kaas::guest::{GuestProgram, Op};
use kaas::kernels::{Kernel, MatMul, MonteCarlo, Value};
use kaas::net::{LinkProfile, SharedMemory};
use kaas::simtime::{sleep, spawn, timeout, Simulation};

fn gpus(n: u32) -> Vec<Device> {
    (0..n)
        .map(|i| GpuDevice::new(DeviceId(i), GpuProfile::p100()).into())
        .collect()
}

fn boot_with(
    devices: Vec<Device>,
    kernels: Vec<Rc<dyn Kernel>>,
    config: ServerConfig,
) -> (KaasServer, KaasNetwork, SharedMemory) {
    let registry = KernelRegistry::new();
    for k in kernels {
        registry.register_rc(k).unwrap();
    }
    let shm = SharedMemory::host();
    let server = KaasServer::new(devices, registry, shm.clone(), config);
    let net: KaasNetwork = KaasNetwork::new();
    spawn(server.clone().serve(net.listen("kaas").unwrap()));
    (server, net, shm)
}

fn boot(
    devices: Vec<Device>,
    kernels: Vec<Rc<dyn Kernel>>,
) -> (KaasServer, KaasNetwork, SharedMemory) {
    boot_with(devices, kernels, ServerConfig::default())
}

async fn connect(net: &KaasNetwork, shm: SharedMemory) -> KaasClient {
    KaasClient::connect(net, "kaas", LinkProfile::loopback())
        .await
        .expect("listening")
        .with_shared_memory(shm)
}

#[test]
fn unknown_kernel_is_reported() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (_s, net, shm) = boot(gpus(1), vec![Rc::new(MatMul::new())]);
        let mut client = connect(&net, shm).await;
        let err = client
            .call("nonexistent")
            .arg(Value::U64(1))
            .send()
            .await
            .unwrap_err();
        assert_eq!(err, InvokeError::UnknownKernel("nonexistent".into()));
    });
}

#[test]
fn bad_input_is_reported_not_fatal() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (_s, net, shm) = boot(gpus(1), vec![Rc::new(MatMul::new())]);
        let mut client = connect(&net, shm).await;
        let err = client
            .call("matmul")
            .arg(Value::Unit)
            .send()
            .await
            .unwrap_err();
        assert!(matches!(err, InvokeError::BadInput(_)), "got {err:?}");
        // The server keeps serving after a bad request.
        let ok = client.call("matmul").arg(Value::U64(64)).send().await;
        assert!(ok.is_ok());
    });
}

#[test]
fn missing_device_class_is_reported() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        // A GPU kernel on a deployment with no GPU.
        let cpu: Device = kaas::accel::CpuDevice::new(
            DeviceId(0),
            kaas::accel::CpuProfile::xeon_e5_2698v4_dual(),
        )
        .into();
        let (_s, net, shm) = boot(vec![cpu], vec![Rc::new(MatMul::new())]);
        let mut client = connect(&net, shm).await;
        let err = client
            .call("matmul")
            .arg(Value::U64(64))
            .send()
            .await
            .unwrap_err();
        assert_eq!(err, InvokeError::NoDevice("GPU".into()));
    });
}

#[test]
fn killed_runner_is_replaced_transparently() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (server, net, shm) = boot(gpus(2), vec![Rc::new(MonteCarlo::default())]);
        let mut client = connect(&net, shm).await;
        let first = client
            .call("mci")
            .arg(Value::U64(10_000))
            .out_of_band()
            .send()
            .await
            .unwrap();
        let dev0 = first.report.device;
        // Crash the runner that served us.
        assert!(server.kill_runner("mci", dev0));
        // The next invocation is retried onto a fresh runner and succeeds.
        let second = client
            .call("mci")
            .arg(Value::U64(10_000))
            .out_of_band()
            .send()
            .await
            .unwrap();
        assert!(second.report.cold_start, "replacement runner cold-starts");
        assert_ne!(
            second.report.runner, first.report.runner,
            "a new runner must serve after the crash"
        );
    });
}

#[test]
fn failed_invocation_releases_in_flight() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (server, net, shm) = boot(gpus(1), vec![Rc::new(MatMul::new())]);
        let mut client = connect(&net, shm).await;
        // Bad-input path: the kernel rejects its argument after a slot
        // was claimed.
        let err = client
            .call("matmul")
            .arg(Value::Unit)
            .send()
            .await
            .unwrap_err();
        assert!(matches!(err, InvokeError::BadInput(_)));
        assert_eq!(
            server.snapshot().in_flight("matmul"),
            0,
            "failed invocation must release its in-flight claim"
        );
        // Crash path: a runner dying mid-service must not leak claims
        // either, even after the transparent retries.
        let first = client
            .call("matmul")
            .arg(Value::U64(64))
            .send()
            .await
            .unwrap();
        assert!(server.kill_runner("matmul", first.report.device));
        client
            .call("matmul")
            .arg(Value::U64(64))
            .send()
            .await
            .unwrap();
        assert_eq!(server.snapshot().in_flight("matmul"), 0);
    });
}

#[test]
fn deadline_shed_releases_the_admission_slot() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        // A server-wide cap of one admitted request: any leaked
        // admission permit wedges the server permanently.
        let (server, net, shm) = boot_with(
            gpus(1),
            vec![Rc::new(MatMul::new())],
            ServerConfig::default().with_max_in_flight(1),
        );
        let mut client = connect(&net, shm).await;
        let err = client
            .call("matmul")
            .arg(Value::U64(64))
            .deadline(Duration::ZERO)
            .send()
            .await
            .unwrap_err();
        assert_eq!(err, InvokeError::DeadlineExceeded);
        assert_eq!(server.snapshot().total_in_flight(), 0);
        // The shed request released its slot: the next one is admitted.
        assert!(client
            .call("matmul")
            .arg(Value::U64(64))
            .send()
            .await
            .is_ok());
    });
}

#[test]
fn disconnect_mid_flight_does_not_wedge_the_server() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (server, net, shm) = boot_with(
            gpus(1),
            vec![Rc::new(MonteCarlo::default())],
            ServerConfig::default().with_max_in_flight(1),
        );
        // A client that gives up mid-flight and hangs up: the send
        // future is dropped while the server is still working, then the
        // connection itself is dropped with it.
        {
            let shm = shm.clone();
            let net = net.clone();
            spawn(async move {
                let mut client = connect(&net, shm).await;
                let _ = timeout(
                    Duration::from_millis(1),
                    client.call("mci").arg(Value::U64(10_000)).send(),
                )
                .await;
            })
            .await;
        }
        // Let the server finish the abandoned invocation (cold start
        // plus execution) and fail its reply send.
        sleep(Duration::from_secs(2)).await;
        assert_eq!(
            server.snapshot().total_in_flight(),
            0,
            "abandoned invocation leaked an in-flight claim"
        );
        // Both the admission slot and the pool claim are free again.
        let mut client = connect(&net, shm).await;
        assert!(client
            .call("mci")
            .arg(Value::U64(10_000))
            .send()
            .await
            .is_ok());
    });
}

#[test]
fn exhausted_retries_surface_the_failure_and_release_claims() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        // One attempt only: a crashed runner surfaces as RunnerFailed
        // instead of being retried onto a replacement.
        let (server, net, shm) = boot_with(
            gpus(1),
            vec![Rc::new(MonteCarlo::default())],
            ServerConfig::default().with_retry(RetryConfig::default().with_max_attempts(1)),
        );
        let mut client = connect(&net, shm).await;
        let first = client
            .call("mci")
            .arg(Value::U64(10_000))
            .send()
            .await
            .unwrap();
        assert!(server.kill_runner("mci", first.report.device));
        let err = client
            .call("mci")
            .arg(Value::U64(10_000))
            .send()
            .await
            .unwrap_err();
        assert!(matches!(err, InvokeError::RunnerFailed(_)), "got {err:?}");
        let snapshot = server.snapshot();
        assert_eq!(
            snapshot.total_in_flight(),
            0,
            "failed attempt leaked a claim"
        );
        assert_eq!(snapshot.quarantined, 1, "dead slot should be quarantined");
        let m = server.metrics_registry();
        assert!(m.counter("errors.runner-failed") >= 1);
        assert!(m.counter("evictions") >= 1);
        // The quarantined slot is replaced on the next invocation.
        assert!(client
            .call("mci")
            .arg(Value::U64(10_000))
            .send()
            .await
            .is_ok());
    });
}

#[test]
fn every_error_kind_is_inducible_and_counted() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let mut induced: BTreeSet<&'static str> = BTreeSet::new();

        // Server A: one GPU, retry disabled, hair-trigger breaker that
        // never cools down — covers the placement/runtime error kinds.
        let (server, net, shm) = boot_with(
            gpus(1),
            vec![Rc::new(MatMul::new()), Rc::new(MonteCarlo::default())],
            ServerConfig::default()
                .with_retry(RetryConfig::default().with_max_attempts(1))
                .with_breaker(
                    BreakerConfig::default()
                        .with_failure_threshold(1)
                        .with_cooldown(Duration::from_secs(3600)),
                ),
        );
        let mut client = connect(&net, shm.clone()).await;

        let err = client.call("nope").send().await.unwrap_err();
        induced.insert(err.kind());
        let err = client
            .call("matmul")
            .arg(Value::Unit)
            .send()
            .await
            .unwrap_err();
        induced.insert(err.kind());
        let err = client
            .call("matmul")
            .arg(Value::U64(64))
            .deadline(Duration::ZERO)
            .send()
            .await
            .unwrap_err();
        induced.insert(err.kind());

        // A stale shared-memory handle, fed straight into the server's
        // request handler (the client API never produces one).
        let stale = shm.put(Value::U64(1), 8).await;
        shm.take(stale).await.unwrap();
        let resp = server
            .handle(Request {
                id: u64::MAX,
                kernel: "matmul".into(),
                data: DataRef::OutOfBand(stale),
                tenant: None,
                deadline: None,
                span: None,
                reply_out_of_band: false,
                reply_to_store: false,
            })
            .await;
        let err = resp.result.unwrap_err();
        induced.insert(err.kind());

        // Crash the only runner: one attempt means the failure surfaces,
        // and the failure trips the device's breaker permanently.
        let first = client
            .call("mci")
            .arg(Value::U64(10_000))
            .send()
            .await
            .unwrap();
        assert!(server.kill_runner("mci", first.report.device));
        let err = client
            .call("mci")
            .arg(Value::U64(10_000))
            .send()
            .await
            .unwrap_err();
        induced.insert(err.kind());
        let err = client
            .call("mci")
            .arg(Value::U64(10_000))
            .send()
            .await
            .unwrap_err();
        assert_eq!(err, InvokeError::CircuitOpen("GPU".into()));
        induced.insert(err.kind());

        // Client-side kind: a dropped request frame times out.
        client.link_fault().drop_next(1);
        let err = client
            .call("matmul")
            .arg(Value::U64(64))
            .timeout(Duration::from_millis(20))
            .send()
            .await
            .unwrap_err();
        assert_eq!(err, InvokeError::TimedOut);
        induced.insert(err.kind());

        // Every server-side kind induced so far is counted in the
        // registry under its stable label.
        let m = server.metrics_registry();
        for kind in [
            "unknown-kernel",
            "bad-input",
            "deadline-exceeded",
            "bad-handle",
            "runner-failed",
            "circuit-open",
        ] {
            assert!(
                m.counter(&format!("errors.{kind}")) >= 1,
                "errors.{kind} missing from registry:\n{}",
                m.render()
            );
        }

        // Server B: zero admission slots — everything is shed.
        let (_b, net_b, shm_b) = boot_with(
            gpus(1),
            vec![Rc::new(MatMul::new())],
            ServerConfig::default().with_max_in_flight(0),
        );
        let mut client_b = connect(&net_b, shm_b).await;
        let err = client_b
            .call("matmul")
            .arg(Value::U64(8))
            .send()
            .await
            .unwrap_err();
        let InvokeError::Overloaded { retry_after } = &err else {
            panic!("expected Overloaded, got {err:?}");
        };
        // Cooperative backpressure: a shed always names its price. The
        // hint is a pure function of backlog, so an idle server's shed
        // quotes exactly one dispatch overhead.
        assert_eq!(
            *retry_after,
            Some(ServerConfig::default().dispatch_overhead),
            "server-side sheds must carry a deterministic retry_after hint"
        );
        induced.insert(err.kind());
        assert!(_b.metrics_registry().counter("errors.overloaded") >= 1);

        // Server C: CPU-only deployment asked for a GPU kernel.
        let cpu: Device = kaas::accel::CpuDevice::new(
            DeviceId(0),
            kaas::accel::CpuProfile::xeon_e5_2698v4_dual(),
        )
        .into();
        let (_c, net_c, shm_c) = boot(vec![cpu], vec![Rc::new(MatMul::new())]);
        let mut client_c = connect(&net_c, shm_c).await;
        let err = client_c
            .call("matmul")
            .arg(Value::U64(8))
            .send()
            .await
            .unwrap_err();
        assert_eq!(err, InvokeError::NoDevice("GPU".into()));
        induced.insert(err.kind());
        assert!(_c.metrics_registry().counter("errors.no-device") >= 1);

        // Client-side kind: the server hangs up before answering.
        let net_d: KaasNetwork = KaasNetwork::new();
        let mut listener = net_d.listen("kaas").unwrap();
        let hangup = spawn(async move {
            let conn = listener.accept().await;
            drop(conn);
            drop(listener);
        });
        let mut client_d = KaasClient::connect(&net_d, "kaas", LinkProfile::loopback())
            .await
            .expect("listening");
        hangup.await;
        let err = client_d
            .call("matmul")
            .arg(Value::U64(8))
            .send()
            .await
            .unwrap_err();
        assert_eq!(err, InvokeError::Disconnected);
        induced.insert(err.kind());

        // Server E: a GPU too small to hold the operand — a sealed
        // object larger than device memory can never be admitted, and
        // evicting everything else would not help.
        let tiny: Device = GpuDevice::new(
            DeviceId(0),
            GpuProfile {
                mem_bytes: 1 << 20,
                ..GpuProfile::p100()
            },
        )
        .into();
        let (_e, net_e, shm_e) = boot(vec![tiny], vec![Rc::new(MatMul::new())]);
        let mut client_e = connect(&net_e, shm_e).await;
        let big = client_e
            .put(Value::sized(8 << 20, Value::U64(64)))
            .await
            .unwrap();
        client_e.seal(big).await.unwrap();
        let err = client_e
            .call("matmul")
            .arg_ref(big)
            .send()
            .await
            .unwrap_err();
        assert!(matches!(err, InvokeError::DeviceOom(_)), "got {err:?}");
        induced.insert(err.kind());
        assert!(_e.metrics_registry().counter("errors.device-oom") >= 1);

        // Server F: triggering a forged (never-registered) workflow
        // handle fails with a stable error kind, not a panic.
        let (_f, net_f, shm_f) = boot(
            vec![GpuDevice::new(DeviceId(0), GpuProfile::p100()).into()],
            vec![Rc::new(MatMul::new())],
        );
        let mut client_f = connect(&net_f, shm_f).await;
        let forged = WorkflowHandle::new(999, "ghost", 1);
        let err = client_f
            .flow(&forged)
            .input(Value::U64(8))
            .send()
            .await
            .unwrap_err();
        assert_eq!(err.error, InvokeError::UnknownFlow("999".into()));
        assert!(err.partial.is_empty(), "no step ever ran");
        induced.insert(err.error.kind());
        assert!(_f.metrics_registry().counter("errors.unknown-flow") >= 1);

        // Server G: guest kernel error kinds. An unregistered
        // `tenant/name` is UnknownGuestKernel (distinct from
        // UnknownKernel), a div-by-zero body is GuestTrap, and a
        // too-small fuel budget on a loop is FuelExhausted.
        let (_g, net_g, shm_g) = boot(gpus(1), vec![Rc::new(MatMul::new())]);
        let mut client_g = connect(&net_g, shm_g).await;
        let err = client_g
            .call("ghost/tenant-code")
            .arg(Value::U64(1))
            .send()
            .await
            .unwrap_err();
        assert_eq!(
            err,
            InvokeError::UnknownGuestKernel("ghost/tenant-code".into())
        );
        induced.insert(err.kind());
        let trapping = GuestProgram::new("halver", DeviceClass::Gpu)
            .with_fuel(100)
            .with_body(vec![Op::Input, Op::PushU(0), Op::Div, Op::Return]);
        let name = client_g.register_kernel("acme", &trapping).await.unwrap();
        let err = client_g
            .call(&name)
            .arg(Value::U64(8))
            .send()
            .await
            .unwrap_err();
        assert!(matches!(err, InvokeError::GuestTrap(_)), "got {err:?}");
        induced.insert(err.kind());
        let spinner = GuestProgram::new("spinner", DeviceClass::Gpu)
            .with_fuel(16)
            .with_body(vec![Op::Jump(0)]);
        let name = client_g.register_kernel("acme", &spinner).await.unwrap();
        let err = client_g
            .call(&name)
            .arg(Value::U64(8))
            .send()
            .await
            .unwrap_err();
        assert!(matches!(err, InvokeError::FuelExhausted(_)), "got {err:?}");
        induced.insert(err.kind());
        // A provably-trapping program (stack underflow on the only
        // path) is rejected by the verifier at register time, with the
        // structured diagnostics in the payload.
        let underflow = GuestProgram::new("underflow", DeviceClass::Gpu)
            .with_fuel(100)
            .with_body(vec![Op::Pop, Op::Return]);
        let err = client_g
            .register_kernel("acme", &underflow)
            .await
            .unwrap_err();
        assert!(matches!(err, InvokeError::VerifyRejected(_)), "got {err:?}");
        assert!(
            err.to_string().contains("body@0: [underflow]"),
            "diagnostics missing from {err}"
        );
        induced.insert(err.kind());
        let m_g = _g.metrics_registry();
        for kind in [
            "unknown-guest-kernel",
            "guest-trap",
            "fuel-exhausted",
            "verify-rejected",
        ] {
            assert!(
                m_g.counter(&format!("errors.{kind}")) >= 1,
                "errors.{kind} missing from registry:\n{}",
                m_g.render()
            );
        }

        // Exhaustiveness: every variant in the stable KINDS table was
        // induced somewhere above.
        for kind in InvokeError::KINDS {
            assert!(induced.contains(kind), "error kind {kind} never induced");
        }
        assert_eq!(induced.len(), InvokeError::KINDS.len());
    });
}

#[test]
fn autoscaler_never_exceeds_device_count() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let devices = 2u32;
        let (server, net, shm) = boot(gpus(devices), vec![Rc::new(MonteCarlo::default())]);
        // Far more concurrent requests than 2 devices × default
        // per-runner capacity can absorb: the autoscaler wants to grow
        // on every saturated placement but is capped by hardware.
        let mut handles = Vec::new();
        for _ in 0..64 {
            let shm = shm.clone();
            let net = net.clone();
            handles.push(spawn(async move {
                let mut client = connect(&net, shm).await;
                client
                    .call("mci")
                    .arg(Value::U64(10_000))
                    .send()
                    .await
                    .unwrap();
            }));
        }
        let watcher = {
            let server = server.clone();
            spawn(async move {
                let mut peak = 0;
                for _ in 0..1000 {
                    peak = peak.max(server.snapshot().runners("mci"));
                    kaas::simtime::sleep(std::time::Duration::from_micros(50)).await;
                }
                peak
            })
        };
        for h in handles {
            h.await;
        }
        let peak = watcher.await;
        assert!(peak >= 2, "load this heavy should use every device");
        assert!(
            peak <= devices as usize,
            "runner fleet ({peak}) exceeded physical device count ({devices})"
        );
    });
}

#[test]
fn oob_without_shared_memory_fails_cleanly() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (_s, net, _shm) = boot(gpus(1), vec![Rc::new(MatMul::new())]);
        // No shared-memory attachment (a remote client).
        let mut client = KaasClient::connect(&net, "kaas", LinkProfile::lan_1gbps())
            .await
            .expect("listening");
        let err = client
            .call("matmul")
            .arg(Value::U64(8))
            .out_of_band()
            .send()
            .await
            .unwrap_err();
        assert_eq!(err, InvokeError::BadHandle);
        // In-band still works for remote clients.
        assert!(client
            .call("matmul")
            .arg(Value::U64(8))
            .send()
            .await
            .is_ok());
    });
}

#[test]
fn in_band_and_out_of_band_produce_identical_outputs() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (_s, net, shm) = boot(gpus(1), vec![Rc::new(MatMul::new())]);
        let mut client = connect(&net, shm).await;
        let a = client
            .call("matmul")
            .arg(Value::U64(100))
            .send()
            .await
            .unwrap();
        let b = client
            .call("matmul")
            .arg(Value::U64(100))
            .out_of_band()
            .send()
            .await
            .unwrap();
        assert_eq!(a.output, b.output);
    });
}

#[test]
fn sized_envelopes_round_trip() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (_s, net, shm) = boot(gpus(1), vec![Rc::new(MatMul::new())]);
        let mut client = connect(&net, shm).await;
        let input = Value::sized(2 * 8 * 2000 * 2000, Value::U64(2000));
        let inv = client
            .call("matmul")
            .arg(input)
            .out_of_band()
            .send()
            .await
            .unwrap();
        // The response mirrors the descriptor size (result matrix bytes).
        assert_eq!(inv.output.wire_bytes(), 8 * 2000 * 2000);
        assert!(matches!(inv.output.payload(), Value::F64(_)));
    });
}
