//! Integration: the paper's abstract headline claims, end to end.
//!
//! "KaaS reduces completion times for fine-grained tasks by up to
//!  96.0% (GPU), 68.4% (FPGA), 98.6% (TPU), and 34.9% (QPU)."

use kaas::accel::QpuProfile;
use kaas_bench::common::reduction_pct;

#[test]
fn gpu_headline_up_to_96_percent() {
    // The GPU maximum comes from the MCI kernel (Fig. 14).
    let figs = kaas_bench::fig14::run(true);
    let mci = figs
        .iter()
        .find(|f| f.id == "fig14-mci")
        .expect("mci panel present");
    let base = mci.series("Baseline").unwrap();
    let kaas = mci.series("KaaS").unwrap();
    let best = base
        .points
        .iter()
        .zip(&kaas.points)
        .map(|(&(_, b), &(_, k))| reduction_pct(b, k))
        .fold(f64::MIN, f64::max);
    assert!(
        best > 85.0,
        "GPU best reduction {best}% (paper: up to 96.0%)"
    );
}

#[test]
fn fpga_headline_about_68_percent() {
    let b = kaas_bench::fig15::baseline_time("histogram");
    let k = kaas_bench::fig15::kaas_time("histogram");
    let red = reduction_pct(b, k);
    assert!(
        (55.0..80.0).contains(&red),
        "FPGA reduction {red}% (paper: 68.4–68.5%)"
    );
}

#[test]
fn tpu_headline_up_to_98_percent() {
    let (_, ex) = kaas_bench::fig16::run_model(kaas_bench::fig16::TpuModel::Exclusive, 1000);
    let (_, ka) = kaas_bench::fig16::run_model(kaas_bench::fig16::TpuModel::Kaas, 1000);
    let red = reduction_pct(ex, ka);
    assert!(red > 93.0, "TPU reduction {red}% (paper: up to 98.6%)");
}

#[test]
fn qpu_headline_about_35_percent() {
    let b = kaas_bench::fig17::baseline_time(QpuProfile::qasm_simulator());
    let k = kaas_bench::fig17::kaas_time(QpuProfile::qasm_simulator());
    let red = reduction_pct(b, k);
    assert!(
        (28.0..42.0).contains(&red),
        "QPU reduction {red}% (paper: 34.9%)"
    );
}

#[test]
fn warm_starts_dominate_cold_starts() {
    // §3.2: "the majority of requests can then be served by a warm copy
    // ... at near-native latency".
    let figs = kaas_bench::fig06::run(true);
    let small = &figs[0];
    let kaas = small.series("KaaS").unwrap();
    let cold = kaas.first_y();
    let warm = kaas.last_y();
    assert!(cold / warm > 3.0, "cold {cold}s vs warm {warm}s");
}
