//! Integration: one KaaS deployment spanning every device class the
//! paper targets (CPU, GPU, FPGA, TPU, QPU), serving five kernels.

use kaas::accel::{
    CpuDevice, CpuProfile, Device, DeviceId, FpgaDevice, FpgaProfile, GpuDevice, GpuProfile,
    QpuDevice, QpuProfile, TpuDevice, TpuProfile,
};
use kaas::core::{KaasClient, KaasNetwork, KaasServer, KernelRegistry, ServerConfig};
use kaas::kernels::{Conv2d, Histogram, MatMul, Preprocess, Value, VqeEstimator};
use kaas::net::{LinkProfile, SharedMemory};
use kaas::simtime::{spawn, Simulation};

fn heterogeneous_devices() -> Vec<Device> {
    vec![
        CpuDevice::new(DeviceId(0), CpuProfile::xeon_e5_2698v4_dual()).into(),
        GpuDevice::new(DeviceId(1), GpuProfile::p100()).into(),
        FpgaDevice::new(DeviceId(2), FpgaProfile::alveo_u250()).into(),
        TpuDevice::new(DeviceId(3), TpuProfile::v3_8()).into(),
        QpuDevice::new(DeviceId(4), QpuProfile::qasm_simulator()).into(),
    ]
}

async fn connect(net: &KaasNetwork, shm: SharedMemory) -> KaasClient {
    KaasClient::connect(net, "kaas", LinkProfile::loopback())
        .await
        .expect("server listening")
        .with_shared_memory(shm)
}

#[test]
fn one_server_serves_all_five_device_classes() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let registry = KernelRegistry::new();
        registry.register(Preprocess::new()).unwrap(); // CPU
        registry.register(MatMul::new()).unwrap(); // GPU
        registry.register(Histogram::new()).unwrap(); // FPGA
        registry.register(Conv2d::new()).unwrap(); // TPU
        registry.register(VqeEstimator::h2(1024)).unwrap(); // QPU
        let shm = SharedMemory::host();
        let server = KaasServer::new(
            heterogeneous_devices(),
            registry,
            shm.clone(),
            ServerConfig::default(),
        );
        let net: KaasNetwork = KaasNetwork::new();
        spawn(server.clone().serve(net.listen("kaas").unwrap()));

        let mut client = connect(&net, shm).await;
        // (kernel, input, expected device id)
        let calls: Vec<(&str, Value, u32)> = vec![
            ("preprocess", Value::U64(512 * 512), 0),
            ("matmul", Value::U64(256), 1),
            ("histogram", Value::U64(100_000), 2),
            ("conv2d", Value::U64(512), 3),
            ("vqe-estimator", Value::F64s(vec![0.1; 4]), 4),
        ];
        for (kernel, input, device) in calls {
            let inv = client
                .call(kernel)
                .arg(input)
                .out_of_band()
                .send()
                .await
                .unwrap_or_else(|e| panic!("{kernel} failed: {e}"));
            assert_eq!(
                inv.report.device,
                kaas::accel::DeviceId(device),
                "{kernel} landed on the wrong device class"
            );
            assert!(inv.report.cold_start, "{kernel}: first call should be cold");
        }
        assert_eq!(server.metrics().len(), 5);
        assert_eq!(server.metrics().cold_starts(), 5);
        // Each kernel now has a warm runner.
        for kernel in [
            "preprocess",
            "matmul",
            "histogram",
            "conv2d",
            "vqe-estimator",
        ] {
            assert_eq!(server.snapshot().runners(kernel), 1);
        }
    });
}

#[test]
fn warm_runners_are_reused_across_clients() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let registry = KernelRegistry::new();
        registry.register(MatMul::new()).unwrap();
        let shm = SharedMemory::host();
        let server = KaasServer::new(
            heterogeneous_devices(),
            registry,
            shm.clone(),
            ServerConfig::default(),
        );
        let net: KaasNetwork = KaasNetwork::new();
        spawn(server.clone().serve(net.listen("kaas").unwrap()));

        let mut c1 = connect(&net, shm.clone()).await;
        let mut c2 = connect(&net, shm).await;
        let a = c1
            .call("matmul")
            .arg(Value::U64(128))
            .out_of_band()
            .send()
            .await
            .unwrap();
        let b = c2
            .call("matmul")
            .arg(Value::U64(128))
            .out_of_band()
            .send()
            .await
            .unwrap();
        assert!(a.report.cold_start);
        assert!(!b.report.cold_start, "second client must hit the warm copy");
        assert_eq!(a.report.runner, b.report.runner);
        assert_eq!(a.output, b.output, "deterministic kernel output");
    });
}

#[test]
fn kernels_are_transparently_polyglot() {
    // §3.4: a workflow mixes kernels for different hardware without the
    // client knowing which device serves it — verify by driving a
    // CPU→FPGA chain with real data.
    let mut sim = Simulation::new();
    sim.block_on(async {
        let registry = KernelRegistry::new();
        registry.register(Preprocess::new()).unwrap();
        registry
            .register(kaas::kernels::BitmapConversion::default())
            .unwrap();
        let shm = SharedMemory::host();
        let server = KaasServer::new(
            heterogeneous_devices(),
            registry,
            shm.clone(),
            ServerConfig::default(),
        );
        let net: KaasNetwork = KaasNetwork::new();
        spawn(server.clone().serve(net.listen("kaas").unwrap()));
        let mut client = connect(&net, shm).await;

        let frame = Value::image(vec![200u8; 64 * 64 * 3], 64, 64, 3);
        let resized = client
            .call("preprocess")
            .arg(frame)
            .out_of_band()
            .send()
            .await
            .unwrap()
            .output;
        match &resized {
            Value::Image { width, height, .. } => assert_eq!((*width, *height), (224, 224)),
            other => panic!("expected an image, got {other:?}"),
        }
        let bitmap = client
            .call("bitmap")
            .arg(resized)
            .out_of_band()
            .send()
            .await
            .unwrap()
            .output;
        match bitmap {
            Value::Image {
                pixels, channels, ..
            } => {
                assert_eq!(channels, 1);
                // A uniformly bright frame thresholds to all white.
                assert!(pixels.iter().all(|&p| p == 1));
            }
            other => panic!("expected a bitmap, got {other:?}"),
        }
    });
}
