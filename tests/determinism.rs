//! Integration: the whole stack is deterministic — identical runs
//! produce bit-identical figures, and simulated time is independent of
//! wall-clock conditions.

use kaas::simtime::{sleep, spawn, Simulation};
use std::time::Duration;

#[test]
fn figure_runs_are_bit_identical() {
    let a = kaas_bench::fig15::run(true);
    let b = kaas_bench::fig15::run(true);
    assert_eq!(a, b, "fig15 must be deterministic");
}

#[test]
fn autoscaling_timeline_is_deterministic() {
    let a = kaas_bench::fig13::run_timeline(60, 10);
    let b = kaas_bench::fig13::run_timeline(60, 10);
    assert_eq!(a, b);
}

#[test]
fn quantum_vqe_is_deterministic() {
    use kaas::quantum::{vqe, EstimatorMode, Hamiltonian, TwoLocalAnsatz, VqeOptimizer};
    use kaas::simtime::rng::det_rng;
    let run = || {
        let mut rng = det_rng(42);
        vqe(
            &Hamiltonian::h2_sto3g(),
            TwoLocalAnsatz::new(2, 1),
            VqeOptimizer::Spsa { iterations: 60 },
            EstimatorMode::Shots(1024),
            &mut rng,
        )
        .energy
    };
    assert_eq!(run(), run());
}

#[test]
fn thousands_of_interleaved_tasks_settle_identically() {
    let run = || {
        let mut sim = Simulation::new();
        let end = sim.block_on(async {
            let mut handles = Vec::new();
            for i in 0..2_000u64 {
                handles.push(spawn(async move {
                    sleep(Duration::from_nanos(i * 13 % 1009)).await;
                    sleep(Duration::from_nanos(i * 7 % 509)).await;
                    i
                }));
            }
            let mut acc = 0u64;
            for h in handles {
                acc = acc.wrapping_mul(31).wrapping_add(h.await);
            }
            acc
        });
        (end, sim.now())
    };
    assert_eq!(run(), run());
}
