//! Integration: the whole stack is deterministic — identical runs
//! produce bit-identical figures, and simulated time is independent of
//! wall-clock conditions.

use kaas::simtime::{sleep, spawn, Simulation};
use std::time::Duration;

#[test]
fn figure_runs_are_bit_identical() {
    let a = kaas_bench::fig15::run(true);
    let b = kaas_bench::fig15::run(true);
    assert_eq!(a, b, "fig15 must be deterministic");
}

#[test]
fn autoscaling_timeline_is_deterministic() {
    let a = kaas_bench::fig13::run_timeline(60, 10);
    let b = kaas_bench::fig13::run_timeline(60, 10);
    assert_eq!(a, b);
}

#[test]
fn quantum_vqe_is_deterministic() {
    use kaas::quantum::{vqe, EstimatorMode, Hamiltonian, TwoLocalAnsatz, VqeOptimizer};
    use kaas::simtime::rng::det_rng;
    let run = || {
        let mut rng = det_rng(42);
        vqe(
            &Hamiltonian::h2_sto3g(),
            TwoLocalAnsatz::new(2, 1),
            VqeOptimizer::Spsa { iterations: 60 },
            EstimatorMode::Shots(1024),
            &mut rng,
        )
        .energy
    };
    assert_eq!(run(), run());
}

/// Regression for the unordered-collection hazards `kaas-audit` rules
/// D1–D3 exist to keep out: a run that exercises idle reaping across
/// several kernels and LRU eviction under device-memory pressure must
/// replay byte-identically. Each `HashMap` instance in one process gets
/// its own hash seed, so a same-process double run like this one *does*
/// catch visit-order leaking into reap order, eviction order, or float
/// accumulation order — with `BTreeMap` state it cannot.
#[test]
fn reap_and_evict_order_replays_identically() {
    use kaas::accel::{Device, DeviceId, GpuDevice, GpuProfile};
    use kaas::core::{KaasClient, KaasNetwork, KaasServer, KernelRegistry, ServerConfig};
    use kaas::kernels::{MatMul, MonteCarlo, Value};
    use kaas::net::{LinkProfile, SharedMemory};

    let run = || {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let registry = KernelRegistry::new();
            registry.register(MatMul::new()).unwrap();
            registry.register(MonteCarlo::default()).unwrap();
            // Tiny device memory so repeated puts force LRU evictions.
            let devices: Vec<Device> = (0..2)
                .map(|i| {
                    GpuDevice::new(
                        DeviceId(i),
                        GpuProfile {
                            mem_bytes: 2048,
                            ..GpuProfile::p100()
                        },
                    )
                    .into()
                })
                .collect();
            let shm = SharedMemory::host();
            let config = ServerConfig::default().with_idle_timeout(Duration::from_millis(50));
            let server = KaasServer::new(devices, registry, shm.clone(), config);
            let net: KaasNetwork = KaasNetwork::new();
            spawn(server.clone().serve(net.listen("kaas").unwrap()));
            let mut client = KaasClient::connect(&net, "kaas", LinkProfile::loopback())
                .await
                .unwrap()
                .with_shared_memory(shm);

            // Several rounds of sealed-object traffic under memory
            // pressure, with idle gaps long enough to reap runners of
            // both kernels between rounds.
            for round in 0..4u64 {
                for i in 0..6u64 {
                    // A sized envelope makes the object's device
                    // footprint large without changing the payload the
                    // kernel sees; distinct content per (round, i) keeps
                    // every put a fresh object.
                    let r = client
                        .put(Value::sized(700 + 50 * i, Value::U64(16 + round)))
                        .await
                        .unwrap();
                    client.seal(r).await.unwrap();
                    client.call("matmul").arg_ref(r).send().await.unwrap();
                }
                client
                    .call("mci")
                    .arg(Value::U64(1000))
                    .send()
                    .await
                    .unwrap();
                sleep(Duration::from_millis(200)).await; // reap both kernels
            }

            let snap = server.snapshot();
            (
                server.metrics_registry().render(),
                snap.reaped,
                snap.kernels,
                server.dataplane().residency(),
                server.dataplane().evictions(),
            )
        })
    };
    let a = run();
    let b = run();
    assert!(
        a.4 > 0,
        "scenario must actually evict (got {} evictions)",
        a.4
    );
    assert!(a.1 > 0, "scenario must actually reap (got {} reaps)", a.1);
    assert_eq!(a, b, "reap/evict visit order must replay identically");
}

#[test]
fn thousands_of_interleaved_tasks_settle_identically() {
    let run = || {
        let mut sim = Simulation::new();
        let end = sim.block_on(async {
            let mut handles = Vec::new();
            for i in 0..2_000u64 {
                handles.push(spawn(async move {
                    sleep(Duration::from_nanos(i * 13 % 1009)).await;
                    sleep(Duration::from_nanos(i * 7 % 509)).await;
                    i
                }));
            }
            let mut acc = 0u64;
            for h in handles {
                acc = acc.wrapping_mul(31).wrapping_add(h.await);
            }
            acc
        });
        (end, sim.now())
    };
    assert_eq!(run(), run());
}
