//! Integration: the device-resident data plane. Content-addressed
//! put/get/seal/pin, cache hits that eliminate the host→device copy,
//! LRU eviction under memory pressure with pin protection, typed
//! [`InvokeError::DeviceOom`], cache-aware scheduling, and seeded
//! property-style invariants on the per-device memory manager.

use std::collections::BTreeSet;
use std::rc::Rc;
use std::time::Duration;

use kaas::accel::{Device, DeviceId, GpuDevice, GpuProfile, MemoryManager};
use kaas::core::{
    InvokeError, KaasClient, KaasNetwork, KaasServer, KernelRegistry, ObjectRef, ServerConfig,
    Span, SpanSink, WarmFirst,
};
use kaas::kernels::{Kernel, MatMul, Value};
use kaas::net::{LinkProfile, SharedMemory};
use kaas::simtime::rng::DetRng;
use kaas::simtime::{spawn, Simulation};

fn gpus(n: u32) -> Vec<Device> {
    (0..n)
        .map(|i| GpuDevice::new(DeviceId(i), GpuProfile::p100()).into())
        .collect()
}

/// A GPU with an artificially small memory capacity, to force eviction
/// pressure with byte-sized test objects.
fn tiny_gpu(id: u32, mem_bytes: u64) -> Device {
    GpuDevice::new(
        DeviceId(id),
        GpuProfile {
            mem_bytes,
            ..GpuProfile::p100()
        },
    )
    .into()
}

fn boot_with(
    devices: Vec<Device>,
    kernels: Vec<Rc<dyn Kernel>>,
    config: ServerConfig,
) -> (KaasServer, KaasNetwork, SharedMemory) {
    let registry = KernelRegistry::new();
    for k in kernels {
        registry.register_rc(k).unwrap();
    }
    let shm = SharedMemory::host();
    let server = KaasServer::new(devices, registry, shm.clone(), config);
    let net: KaasNetwork = KaasNetwork::new();
    spawn(server.clone().serve(net.listen("kaas").unwrap()));
    (server, net, shm)
}

async fn connect(net: &KaasNetwork, shm: SharedMemory) -> KaasClient {
    KaasClient::connect(net, "kaas", LinkProfile::loopback())
        .await
        .expect("listening")
        .with_shared_memory(shm)
}

#[test]
fn put_get_seal_pin_roundtrip() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (server, net, shm) = boot_with(
            gpus(1),
            vec![Rc::new(MatMul::new())],
            ServerConfig::default(),
        );
        let mut client = connect(&net, shm).await;

        let payload = Value::F64s(vec![1.5; 1000]);
        let r = client.put(payload.clone()).await.unwrap();
        assert_eq!(r.bytes, payload.wire_bytes());
        // Identical content deduplicates to the same address.
        let again = client.put(payload.clone()).await.unwrap();
        assert_eq!(r, again);
        assert_eq!(server.dataplane().store().len(), 1);
        assert_eq!(server.metrics_registry().counter("dataplane.puts"), 2);

        // The object round-trips byte for byte.
        assert_eq!(client.get(r).await.unwrap(), payload);

        // A forged ref (right hash, wrong length) never resolves.
        let forged = ObjectRef {
            hash: r.hash,
            bytes: r.bytes + 1,
        };
        assert_eq!(
            client.get(forged).await.unwrap_err(),
            InvokeError::BadHandle
        );
        // Sealing / pinning something that was never stored fails typed.
        let bogus = ObjectRef {
            hash: 0xbad,
            bytes: 8,
        };
        assert_eq!(
            client.seal(bogus).await.unwrap_err(),
            InvokeError::BadHandle
        );
        assert_eq!(client.pin(bogus).await.unwrap_err(), InvokeError::BadHandle);

        // Seal and pin stick.
        client.seal(r).await.unwrap();
        client.pin(r).await.unwrap();
        assert!(server.dataplane().store().is_sealed(r.hash));
        assert!(server.dataplane().store().is_pinned(r.hash));
    });
}

/// The tentpole acceptance: a warm invocation whose sealed operand is
/// already device-resident pays **zero** `copy_in` and lands strictly
/// below the warm miss path end to end — and the trace proves it.
#[test]
fn sealed_ref_hit_skips_copy_in_and_is_faster() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let tracer = SpanSink::new();
        let (server, net, shm) = boot_with(
            gpus(1),
            vec![Rc::new(MatMul::new())],
            ServerConfig::default().with_tracer(tracer.clone()),
        );
        let mut client = connect(&net, shm).await.with_tracer(tracer.clone());

        // A 1 MiB operand: sized so the declared envelope matches the
        // kernel's host→device volume for n=256 (2·8·256² bytes).
        let operand = Value::sized(1 << 20, Value::U64(256));
        let r = client.put(operand).await.unwrap();

        // Unsealed refs resolve but are never cached: both invocations
        // pay the full copy (the second is the warm *miss* baseline).
        let cold = client.call("matmul").arg_ref(r).send().await.unwrap();
        assert!(cold.report.copy_in > Duration::ZERO);
        let m = server.metrics_registry();
        assert_eq!(
            m.counter("dataplane.hits") + m.counter("dataplane.misses"),
            0
        );

        // Sealing makes it cacheable: the next invocation is the miss
        // that uploads, the one after is the hit.
        client.seal(r).await.unwrap();
        let miss = client.call("matmul").arg_ref(r).send().await.unwrap();
        let hit = client.call("matmul").arg_ref(r).send().await.unwrap();

        assert!(miss.report.copy_in > Duration::ZERO, "miss pays the upload");
        assert_eq!(hit.report.copy_in, Duration::ZERO, "hit skips copy_in");
        assert!(
            hit.report.copy_out > Duration::ZERO,
            "results still come back"
        );
        assert_eq!(hit.report.kernel_exec, miss.report.kernel_exec);
        assert!(
            hit.latency < miss.latency,
            "hit ({:?}) must beat the miss path ({:?})",
            hit.latency,
            miss.latency
        );

        assert_eq!(m.counter("dataplane.hits"), 1);
        assert_eq!(m.counter("dataplane.misses"), 1);
        assert_eq!(
            m.gauge("dataplane.bytes_resident"),
            Some(r.bytes as f64),
            "one resident object"
        );
        assert!(server.dataplane().is_resident(miss.report.device, r.hash));

        // Trace evidence. The cache was consulted twice, once each way.
        let spans = tracer.spans();
        let outcomes: Vec<&str> = spans
            .iter()
            .filter(|s| s.name == "cache_lookup")
            .filter_map(|s| {
                s.args
                    .iter()
                    .find(|(k, _)| k == "outcome")
                    .map(|(_, v)| v.as_str())
            })
            .collect();
        assert_eq!(outcomes, ["miss", "hit"]);
        // Exactly one upload (the miss), spanning the full copy_in.
        let uploads: Vec<&Span> = spans.iter().filter(|s| s.name == "upload").collect();
        assert_eq!(uploads.len(), 1);
        assert_eq!(uploads[0].duration(), miss.report.copy_in);
        // The runner still tiles its phases on every invocation; the
        // hit's copy_in span shrank to a zero-width marker.
        let copy_ins: Vec<&Span> = spans.iter().filter(|s| s.name == "copy_in").collect();
        assert_eq!(copy_ins.len(), 3);
        assert_eq!(copy_ins.last().unwrap().duration(), Duration::ZERO);
        assert!(copy_ins[..2].iter().all(|s| s.duration() > Duration::ZERO));
        // The ref resolved against the store on each of the three calls.
        assert_eq!(spans.iter().filter(|s| s.name == "ref_resolve").count(), 3);
    });
}

/// Under memory pressure the device evicts least-recently-used objects
/// (and only because the in-flight references of finished invocations
/// were released — a held refcount would make every admit fail).
#[test]
fn lru_eviction_under_memory_pressure() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        // Room for two 16-byte objects, not three.
        let (server, net, shm) = boot_with(
            vec![tiny_gpu(0, 40)],
            vec![Rc::new(MatMul::new())],
            ServerConfig::default(),
        );
        let mut client = connect(&net, shm).await;
        let mut refs = Vec::new();
        for n in [16u64, 24, 32] {
            let r = client.put(Value::U64(n)).await.unwrap();
            client.seal(r).await.unwrap();
            refs.push(r);
        }
        let (a, b, c) = (refs[0], refs[1], refs[2]);

        let dp = server.dataplane();
        let dev = DeviceId(0);
        client.call("matmul").arg_ref(a).send().await.unwrap();
        client.call("matmul").arg_ref(b).send().await.unwrap();
        assert!(dp.is_resident(dev, a.hash) && dp.is_resident(dev, b.hash));
        assert_eq!(dp.evictions(), 0);

        // C forces out A (least recently used), then re-admitting A
        // forces out B.
        client.call("matmul").arg_ref(c).send().await.unwrap();
        assert!(!dp.is_resident(dev, a.hash), "LRU victim was A");
        assert!(dp.is_resident(dev, b.hash) && dp.is_resident(dev, c.hash));
        client.call("matmul").arg_ref(a).send().await.unwrap();
        assert!(!dp.is_resident(dev, b.hash), "LRU victim was B");

        let m = server.metrics_registry();
        assert_eq!(dp.evictions(), 2);
        assert_eq!(m.counter("dataplane.evictions"), 2);
        assert_eq!(m.counter("dataplane.misses"), 4);
        assert_eq!(m.counter("dataplane.hits"), 0);
        assert!(dp.bytes_resident() <= 40, "capacity is a hard ceiling");
        assert_eq!(m.gauge("dataplane.dev0.bytes_resident"), Some(32.0));
    });
}

/// Pinned objects are never eviction victims; when pins leave no room,
/// the invocation fails with the stable `device-oom` error kind instead
/// of corrupting residency.
#[test]
fn pinned_objects_survive_pressure() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (server, net, shm) = boot_with(
            vec![tiny_gpu(0, 40)],
            vec![Rc::new(MatMul::new())],
            ServerConfig::default(),
        );
        let mut client = connect(&net, shm).await;
        let a = client.put(Value::U64(16)).await.unwrap();
        let b = client.put(Value::U64(24)).await.unwrap();
        let c = client.put(Value::U64(32)).await.unwrap();
        for r in [a, b, c] {
            client.seal(r).await.unwrap();
        }
        client.pin(a).await.unwrap();

        let dp = server.dataplane();
        let dev = DeviceId(0);
        client.call("matmul").arg_ref(a).send().await.unwrap();
        client.call("matmul").arg_ref(b).send().await.unwrap();
        // A is older than B but pinned: pressure evicts B instead.
        client.call("matmul").arg_ref(c).send().await.unwrap();
        assert!(dp.is_resident(dev, a.hash), "pinned object survived");
        assert!(!dp.is_resident(dev, b.hash));

        // Pin C too: now nothing is evictable and the third object
        // cannot fit — a typed, counted failure.
        client.pin(c).await.unwrap();
        let err = client.call("matmul").arg_ref(b).send().await.unwrap_err();
        assert!(matches!(err, InvokeError::DeviceOom(_)), "got {err:?}");
        assert_eq!(err.kind(), "device-oom");
        assert!(server.metrics_registry().counter("errors.device-oom") >= 1);
        // The failed admit evicted nothing.
        assert!(dp.is_resident(dev, a.hash) && dp.is_resident(dev, c.hash));

        // Pinned residents still serve hits.
        let hit = client.call("matmul").arg_ref(a).send().await.unwrap();
        assert_eq!(hit.report.copy_in, Duration::ZERO);
    });
}

/// Cache-aware scheduling: with [`WarmFirst`], an invocation whose
/// sealed operand is resident on one device routes there even when a
/// warm runner on another device comes first in slot order.
#[test]
fn warm_first_routes_to_the_resident_device() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (server, net, shm) = boot_with(
            gpus(2),
            vec![Rc::new(MatMul::new())],
            ServerConfig::default().with_scheduler(WarmFirst),
        );
        // Two warm runners: slot order is device 0 then device 1.
        server.prewarm("matmul", 2).await.unwrap();
        let mut client = connect(&net, shm).await;
        let r = client.put(Value::U64(128)).await.unwrap();
        client.seal(r).await.unwrap();

        // Seed residency on device 1 — the slot WarmFirst would *not*
        // pick on warmth alone.
        server.dataplane().admit(DeviceId(1), &r).unwrap();
        for _ in 0..3 {
            let inv = client.call("matmul").arg_ref(r).send().await.unwrap();
            assert_eq!(
                inv.report.device,
                DeviceId(1),
                "operand residency must steer placement"
            );
            assert_eq!(inv.report.copy_in, Duration::ZERO);
        }
        let m = server.metrics_registry();
        assert_eq!(m.counter("dataplane.hits"), 3);
        assert_eq!(m.counter("dataplane.misses"), 0);

        // Without residency anywhere, WarmFirst falls back to warmth:
        // device 0 serves (and the operand uploads there).
        server.dataplane().invalidate_device(DeviceId(1));
        let inv = client.call("matmul").arg_ref(r).send().await.unwrap();
        assert_eq!(inv.report.device, DeviceId(0));
        assert!(server.dataplane().is_resident(DeviceId(0), r.hash));
    });
}

/// Property-style: a seeded random op stream against one device's
/// memory manager. Invariants that must hold after every step:
/// residency never exceeds capacity, pinned objects are never evicted,
/// retained (in-flight) objects are never evicted, and the byte
/// ledger matches the set of resident objects exactly.
#[test]
fn seeded_random_ops_uphold_manager_invariants() {
    const CAPACITY: u64 = 1_000;
    const SEED: u64 = 0x4b61_6153; // "KaaS"
    let run = |seed: u64| -> (Vec<u64>, u64) {
        let mgr = MemoryManager::new(CAPACITY);
        let mut rng = DetRng::seed_from_u64(seed);
        let mut pinned: BTreeSet<u64> = BTreeSet::new();
        let mut retained: Vec<u64> = Vec::new();
        let mut eviction_log: Vec<u64> = Vec::new();
        for step in 0..2_000u32 {
            let hash = rng.gen_range(0u64..40);
            match rng.gen_range(0u32..10) {
                // Inserts dominate so pressure actually builds.
                0..=5 => {
                    let bytes = rng.gen_range(50u64..300);
                    match mgr.insert(hash, bytes) {
                        Ok(evicted) => {
                            for h in &evicted {
                                assert!(!pinned.contains(h), "step {step}: pinned {h:#x} evicted");
                                assert!(
                                    !retained.contains(h),
                                    "step {step}: in-flight {h:#x} evicted"
                                );
                            }
                            eviction_log.extend(evicted);
                        }
                        Err(e) => {
                            // Refusals must be honest: what it reported
                            // as evictable cannot cover the request.
                            assert!(e.evictable < e.requested || e.requested > e.capacity);
                        }
                    }
                }
                6 => {
                    if mgr.pin(hash) {
                        pinned.insert(hash);
                    }
                }
                7 => {
                    if mgr.contains(hash) {
                        mgr.retain(hash);
                        retained.push(hash);
                    }
                }
                8 => {
                    // Release one guard, as an InFlightGuard drop would.
                    if let Some(h) = retained.pop() {
                        mgr.release(h);
                    }
                }
                _ => {
                    mgr.touch(hash);
                }
            }
            assert!(
                mgr.bytes_resident() <= CAPACITY,
                "step {step}: {} bytes resident over the {CAPACITY} cap",
                mgr.bytes_resident()
            );
            for h in &pinned {
                assert!(mgr.contains(*h), "step {step}: pinned {h:#x} vanished");
            }
        }
        assert!(
            !eviction_log.is_empty(),
            "the stream must exercise eviction"
        );
        // Once every guard releases and pins stay, a full-capacity
        // insert of a fresh object evicts everything unpinned.
        for h in retained.drain(..) {
            mgr.release(h);
        }
        (eviction_log, mgr.evictions())
    };
    let (log_a, evictions_a) = run(SEED);
    let (log_b, evictions_b) = run(SEED);
    assert_eq!(log_a, log_b, "same seed, same eviction order");
    assert_eq!(evictions_a, evictions_b);
}

/// Two identical traced data-plane workloads export byte-identical
/// Chrome traces — the subsystem introduces no nondeterminism.
#[test]
fn dataplane_runs_replay_byte_identically() {
    let run = || {
        let mut sim = Simulation::new();
        sim.block_on(async {
            let tracer = SpanSink::new();
            let (_s, net, shm) = boot_with(
                vec![tiny_gpu(0, 40)],
                vec![Rc::new(MatMul::new())],
                ServerConfig::default().with_tracer(tracer.clone()),
            );
            let mut client = connect(&net, shm).await.with_tracer(tracer.clone());
            let a = client.put(Value::U64(100)).await.unwrap();
            let b = client.put(Value::U64(200)).await.unwrap();
            let c = client.put(Value::U64(300)).await.unwrap();
            for r in [a, b, c] {
                client.seal(r).await.unwrap();
            }
            for r in [a, b, a, c, b, a] {
                client.call("matmul").arg_ref(r).send().await.unwrap();
            }
            tracer.to_chrome_json()
        })
    };
    let a = run();
    let b = run();
    assert!(a.contains("cache_lookup"));
    assert!(a.contains("evict"));
    assert_eq!(a, b, "the data plane must replay deterministically");
}
