//! Integration tests for the §6 future-work extensions: workflow
//! composition, kernel fusion, idle scale-down, and the RDMA-class
//! transport profile.

use std::rc::Rc;
use std::time::Duration;

use kaas::accel::{Device, DeviceId, GpuDevice, GpuProfile};
use kaas::core::{
    fuse, FillFirst, KaasClient, KaasNetwork, KaasServer, KernelRegistry, RoundRobin, Scheduler,
    ServerConfig, Workflow,
};
use kaas::kernels::{GaGeneration, Kernel, MatMul, Value, GENERATIONS};
use kaas::net::{LinkProfile, SharedMemory};
use kaas::simtime::{now, sleep, spawn, Simulation};

fn gpus(n: u32) -> Vec<Device> {
    (0..n)
        .map(|i| GpuDevice::new(DeviceId(i), GpuProfile::p100()).into())
        .collect()
}

fn boot_with(
    kernels: Vec<Rc<dyn Kernel>>,
    config: ServerConfig,
) -> (KaasServer, KaasNetwork, SharedMemory) {
    let registry = KernelRegistry::new();
    for k in kernels {
        registry.register_rc(k).unwrap();
    }
    let shm = SharedMemory::host();
    let server = KaasServer::new(gpus(2), registry, shm.clone(), config);
    let net: KaasNetwork = KaasNetwork::new();
    spawn(server.clone().serve(net.listen("kaas").unwrap()));
    (server, net, shm)
}

async fn client(net: &KaasNetwork, shm: SharedMemory) -> KaasClient {
    KaasClient::connect(net, "kaas", LinkProfile::loopback())
        .await
        .unwrap()
        .with_shared_memory(shm)
}

#[test]
fn workflows_thread_outputs_through_steps() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (_s, net, shm) = boot_with(
            vec![Rc::new(GaGeneration::seeded(1))],
            ServerConfig::default(),
        );
        let mut c = client(&net, shm).await;
        // Three GA generations registered once, triggered with one
        // request: the server threads outputs device-to-device.
        let wf = Workflow::linear("evolve", ["ga", "ga", "ga"]).unwrap();
        let handle = c.register_workflow(&wf).await.unwrap();
        let sent_before = c.requests_sent();
        let run = c.flow(&handle).input(Value::U64(64)).send().await.unwrap();
        assert_eq!(c.requests_sent() - sent_before, 1, "one trigger round trip");
        assert_eq!(run.round_trips(), 1);
        assert_eq!(run.report.steps.len(), 3);
        assert_eq!(run.cold_starts(), 1, "only the first step cold-starts");
        assert_eq!(
            run.chained_hits(),
            2,
            "both downstream steps consume device-resident intermediates"
        );
        match &run.output {
            Value::F64s(pop) => assert_eq!(pop.len(), 64 * 100),
            other => panic!("expected a population, got {other:?}"),
        }
        assert!(run.latency > run.kernel_time());
    });
}

#[test]
fn fused_kernels_cut_invocation_and_copy_overhead() {
    // Ten GA generations: ten invocations vs five fused-pair invocations.
    let run = |fused: bool| {
        let mut sim = Simulation::new();
        sim.block_on(async move {
            let kernels: Vec<Rc<dyn Kernel>> = if fused {
                vec![Rc::new(
                    fuse(
                        "ga2",
                        vec![
                            Rc::new(GaGeneration::seeded(1)) as Rc<dyn Kernel>,
                            Rc::new(GaGeneration::seeded(2)),
                        ],
                    )
                    .unwrap(),
                )]
            } else {
                vec![Rc::new(GaGeneration::seeded(1))]
            };
            let (server, net, shm) = boot_with(kernels, ServerConfig::default());
            let name = if fused { "ga2" } else { "ga" };
            server.prewarm(name, 1).await.unwrap();
            let mut c = client(&net, shm).await;
            let t0 = now();
            let mut pop = Value::U64(2048);
            let rounds = if fused { GENERATIONS / 2 } else { GENERATIONS };
            for _ in 0..rounds {
                pop = c
                    .call(name)
                    .arg(pop)
                    .out_of_band()
                    .send()
                    .await
                    .unwrap()
                    .output;
            }
            (now() - t0).as_secs_f64()
        })
    };
    let unfused = run(false);
    let fused = run(true);
    assert!(
        fused < unfused,
        "fusion must save data movement: fused {fused}s !< unfused {unfused}s"
    );
}

#[test]
fn idle_runners_are_reaped_and_cold_start_again() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let config = ServerConfig {
            idle_timeout: Some(Duration::from_secs(30)),
            ..ServerConfig::default()
        };
        let (server, net, shm) = boot_with(vec![Rc::new(MatMul::new())], config);
        let mut c = client(&net, shm).await;
        let first = c
            .call("matmul")
            .arg(Value::U64(128))
            .out_of_band()
            .send()
            .await
            .unwrap();
        assert!(first.report.cold_start);
        // Stay active: short gaps keep the runner warm.
        for _ in 0..3 {
            sleep(Duration::from_secs(10)).await;
            let inv = c
                .call("matmul")
                .arg(Value::U64(128))
                .out_of_band()
                .send()
                .await
                .unwrap();
            assert!(!inv.report.cold_start, "active runner must stay warm");
        }
        assert_eq!(server.snapshot().reaped, 0);
        // Go idle past the timeout: the runner is reaped.
        sleep(Duration::from_secs(40)).await;
        assert_eq!(server.snapshot().reaped, 1);
        let again = c
            .call("matmul")
            .arg(Value::U64(128))
            .out_of_band()
            .send()
            .await
            .unwrap();
        assert!(again.report.cold_start, "post-reap invocation cold-starts");
    });
}

#[test]
fn rdma_transport_cuts_remote_invocation_latency() {
    let run = |profile: LinkProfile| {
        let mut sim = Simulation::new();
        sim.block_on(async move {
            let (server, net, _shm) = boot_with(
                vec![Rc::new(GaGeneration::seeded(1))],
                ServerConfig::default(),
            );
            server.prewarm("ga", 1).await.unwrap();
            let mut c = KaasClient::connect(&net, "kaas", profile).await.unwrap();
            let t0 = now();
            let mut pop = Value::U64(2048);
            for _ in 0..GENERATIONS {
                pop = c.call("ga").arg(pop).send().await.unwrap().output;
            }
            (now() - t0).as_secs_f64()
        })
    };
    let tcp = run(LinkProfile::lan_1gbps());
    let rdma = run(LinkProfile::rdma_100g());
    assert!(
        rdma < tcp - 0.1,
        "RDMA-class fabric should cut remote latency: rdma {rdma}s vs tcp {tcp}s"
    );
}

#[test]
fn scheduler_policies_trade_consolidation_for_balance() {
    // FillFirst packs work onto few runners; RoundRobin spreads it.
    let distinct_runners = |scheduler: Box<dyn Scheduler>| {
        let mut sim = Simulation::new();
        sim.block_on(async move {
            let config = ServerConfig::default().with_scheduler(scheduler);
            let (server, net, shm) = boot_with(vec![Rc::new(MatMul::new())], config);
            server.prewarm("matmul", 2).await.unwrap();
            let mut c = client(&net, shm).await;
            let mut runners = std::collections::BTreeSet::new();
            for _ in 0..6 {
                let inv = c
                    .call("matmul")
                    .arg(Value::U64(64))
                    .out_of_band()
                    .send()
                    .await
                    .unwrap();
                runners.insert(inv.report.runner);
            }
            runners.len()
        })
    };
    assert_eq!(distinct_runners(Box::new(FillFirst)), 1);
    assert_eq!(distinct_runners(RoundRobin::default().into()), 2);
}

#[test]
fn tenant_quotas_protect_polite_tenants_from_floods() {
    // A greedy tenant floods the server with long tasks; a polite tenant
    // sends one short task. With a per-tenant quota, the polite tenant's
    // latency stays bounded by one task, not the whole flood.
    let polite_latency = |quota: Option<usize>| {
        let mut sim = Simulation::new();
        sim.block_on(async move {
            let config = ServerConfig::default()
                .with_tenant_quota(quota)
                .with_runner(kaas::core::RunnerConfig {
                    max_inflight: 1,
                    ..kaas::core::RunnerConfig::default()
                })
                .with_autoscale(false);
            let registry = KernelRegistry::new();
            registry.register(MatMul::new()).unwrap();
            let shm = SharedMemory::host();
            let server = KaasServer::new(gpus(1), registry, shm.clone(), config);
            let net: KaasNetwork = KaasNetwork::new();
            spawn(server.clone().serve(net.listen("kaas").unwrap()));
            server.prewarm("matmul", 1).await.unwrap();

            // Greedy tenant: eight large tasks at once.
            for _ in 0..8 {
                let mut greedy = client(&net, shm.clone()).await.with_tenant("greedy");
                spawn(async move {
                    let _ = greedy
                        .call("matmul")
                        .arg(Value::U64(8_000))
                        .out_of_band()
                        .send()
                        .await;
                });
            }
            // Give the flood a moment to arrive first.
            sleep(Duration::from_millis(10)).await;
            let mut polite = client(&net, shm).await.with_tenant("polite");
            let inv = polite
                .call("matmul")
                .arg(Value::U64(256))
                .out_of_band()
                .send()
                .await
                .unwrap();
            inv.latency.as_secs_f64()
        })
    };
    let without = polite_latency(None);
    let with_quota = polite_latency(Some(1));
    assert!(
        with_quota < without / 2.0,
        "quota must shield the polite tenant: with={with_quota}s, without={without}s"
    );
}
