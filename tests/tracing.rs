//! Integration: end-to-end invocation tracing, the metrics registry,
//! and the builder-style invoke API.

use std::rc::Rc;
use std::time::Duration;

use kaas::accel::{Device, DeviceId, GpuDevice, GpuProfile};
use kaas::core::{
    percentile, InvokeError, KaasClient, KaasNetwork, KaasServer, KernelRegistry, ServerConfig,
    Span, SpanSink,
};
use kaas::kernels::{Kernel, MatMul, MonteCarlo, Value};
use kaas::net::{LinkProfile, SharedMemory};
use kaas::simtime::{spawn, Simulation};

fn gpus(n: u32) -> Vec<Device> {
    (0..n)
        .map(|i| GpuDevice::new(DeviceId(i), GpuProfile::p100()).into())
        .collect()
}

fn boot_traced(
    kernels: Vec<Rc<dyn Kernel>>,
    tracer: SpanSink,
) -> (KaasServer, KaasNetwork, SharedMemory) {
    let registry = KernelRegistry::new();
    for k in kernels {
        registry.register_rc(k).unwrap();
    }
    let shm = SharedMemory::host();
    let config = ServerConfig::default().with_tracer(tracer);
    let server = KaasServer::new(gpus(2), registry, shm.clone(), config);
    let net: KaasNetwork = KaasNetwork::new();
    spawn(server.clone().serve(net.listen("kaas").unwrap()));
    (server, net, shm)
}

async fn traced_client(net: &KaasNetwork, shm: SharedMemory, tracer: SpanSink) -> KaasClient {
    KaasClient::connect(net, "kaas", LinkProfile::loopback())
        .await
        .unwrap()
        .with_shared_memory(shm)
        .with_tracer(tracer)
}

/// The acceptance criterion: the root `invoke` span's direct client-side
/// children tile it exactly, so their durations sum to the
/// client-observed latency.
#[test]
fn span_durations_tile_client_latency() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let tracer = SpanSink::new();
        let (_s, net, shm) = boot_traced(vec![Rc::new(MatMul::new())], tracer.clone());
        let mut client = traced_client(&net, shm, tracer.clone()).await;
        let inv = client
            .call("matmul")
            .arg(Value::U64(256))
            .out_of_band()
            .send()
            .await
            .unwrap();

        let roots: Vec<Span> = tracer
            .roots()
            .into_iter()
            .filter(|s| s.name == "invoke")
            .collect();
        assert_eq!(roots.len(), 1, "one traced invocation, one root span");
        let root = &roots[0];
        assert_eq!(root.duration(), inv.latency, "root span IS the latency");

        // Direct client-side children tile the root: contiguous, no gaps.
        let mut children: Vec<Span> = tracer
            .children_of(root.id)
            .into_iter()
            .filter(|s| s.track == root.track)
            .collect();
        children.sort_by_key(|s| s.start);
        assert!(children.len() >= 3, "shm_put, roundtrip, shm_take");
        assert_eq!(children.first().unwrap().start, root.start);
        assert_eq!(children.last().unwrap().end, root.end);
        for pair in children.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "children must not overlap");
        }
        let sum: Duration = children.iter().map(Span::duration).sum();
        assert_eq!(sum, inv.latency, "child durations sum to the latency");
    });
}

/// Every server- and device-side hop appears in the trace, parented
/// under the client's `roundtrip` span; cold starts get their own root
/// span on the runner's track.
#[test]
fn server_and_device_hops_nest_under_roundtrip() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let tracer = SpanSink::new();
        let (_s, net, shm) = boot_traced(vec![Rc::new(MonteCarlo::default())], tracer.clone());
        let mut client = traced_client(&net, shm, tracer.clone()).await;
        client
            .call("mci")
            .arg(Value::U64(10_000))
            .send()
            .await
            .unwrap();

        let spans = tracer.spans();
        let rt = spans
            .iter()
            .find(|s| s.name == "roundtrip")
            .expect("roundtrip span");
        let under_rt: Vec<&Span> = spans.iter().filter(|s| s.parent == Some(rt.id)).collect();
        for hop in [
            "admission",
            "dispatch",
            "deserialize",
            "queue_wait",
            "copy_in",
            "kernel_exec",
            "copy_out",
            "reply",
        ] {
            assert!(
                under_rt.iter().any(|s| s.name == hop),
                "missing {hop} under roundtrip"
            );
        }
        // Device phases live on the runner's track, not the server's.
        let exec = under_rt.iter().find(|s| s.name == "kernel_exec").unwrap();
        assert!(exec.track.starts_with("runner"), "track: {}", exec.track);
        // The cold start is a root on the same runner track.
        let cold = spans
            .iter()
            .find(|s| s.name == "cold_start")
            .expect("cold-start span");
        assert_eq!(cold.parent, None);
        assert_eq!(cold.track, exec.track);
    });
}

fn traced_run_chrome_json() -> String {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let tracer = SpanSink::new();
        let (_s, net, shm) = boot_traced(
            vec![Rc::new(MatMul::new()), Rc::new(MonteCarlo::default())],
            tracer.clone(),
        );
        let mut client = traced_client(&net, shm, tracer.clone()).await;
        for n in [128u64, 256, 512] {
            client
                .call("matmul")
                .arg(Value::U64(n))
                .out_of_band()
                .send()
                .await
                .unwrap();
        }
        client
            .call("mci")
            .arg(Value::U64(50_000))
            .send()
            .await
            .unwrap();
        tracer.to_chrome_json()
    })
}

#[test]
fn identical_runs_export_byte_identical_chrome_json() {
    let a = traced_run_chrome_json();
    let b = traced_run_chrome_json();
    assert!(a.trim_start().starts_with('['), "bare event-array format");
    assert!(a.contains("\"ph\":\"X\""));
    assert!(a.contains("\"invoke\""));
    assert_eq!(a, b, "tracing must be deterministic");
}

/// The registry's histogram summaries agree with the exact per-report
/// numbers in the MetricsSink: means match, quantiles land within one
/// log-bucket (±10 %) of the exact percentile.
#[test]
fn registry_quantiles_agree_with_metrics_sink() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let registry = KernelRegistry::new();
        registry.register(MatMul::new()).unwrap();
        let shm = SharedMemory::host();
        let server = KaasServer::new(gpus(2), registry, shm.clone(), ServerConfig::default());
        let net: KaasNetwork = KaasNetwork::new();
        spawn(server.clone().serve(net.listen("kaas").unwrap()));
        let mut client = KaasClient::connect(&net, "kaas", LinkProfile::loopback())
            .await
            .unwrap()
            .with_shared_memory(shm);
        for i in 0..20u64 {
            client
                .call("matmul")
                .arg(Value::U64(64 + 32 * i))
                .out_of_band()
                .send()
                .await
                .unwrap();
        }

        let exact: Vec<f64> = server
            .metrics()
            .snapshot()
            .iter()
            .map(|r| r.server_latency().as_secs_f64())
            .collect();
        let reg = server.metrics_registry();
        assert_eq!(reg.counter("invocations"), 20);
        assert_eq!(reg.counter("invocations.matmul"), 20);
        assert_eq!(reg.counter("cold_starts"), 1);
        let summary = reg.summary("latency.server").expect("recorded");
        assert_eq!(summary.count, exact.len() as u64);
        let exact_mean = exact.iter().sum::<f64>() / exact.len() as f64;
        assert!((summary.mean - exact_mean).abs() / exact_mean < 1e-9);
        // The log-bucketed histogram resolves quantiles to nearest rank
        // within one bucket (8 buckets per octave → ≲ ±5 % at the
        // geometric midpoint); compare against the same-rank exact value.
        let mut sorted = exact.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (q, got) in [(0.50, summary.p50), (0.99, summary.p99)] {
            let rank = (q * (sorted.len() - 1) as f64).round() as usize;
            let want = sorted[rank];
            assert!(
                (got - want).abs() / want < 0.10,
                "p{}: histogram {got} vs exact {want}",
                (q * 100.0) as u32
            );
        }
        // The interpolating percentile helper stays in the same league.
        let p50_exact = percentile(&exact, 0.50);
        assert!((summary.p50 - p50_exact).abs() / p50_exact < 0.15);
    });
}

#[test]
fn expired_deadlines_shed_before_placement() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let tracer = SpanSink::new();
        let (server, net, shm) = boot_traced(vec![Rc::new(MatMul::new())], tracer);
        let mut client = KaasClient::connect(&net, "kaas", LinkProfile::lan_1gbps())
            .await
            .unwrap()
            .with_shared_memory(shm);
        // A zero deadline has always expired by the time the request
        // crosses the network and reaches dispatch.
        let err = client
            .call("matmul")
            .arg(Value::U64(64))
            .deadline(Duration::ZERO)
            .send()
            .await
            .unwrap_err();
        assert_eq!(err, InvokeError::DeadlineExceeded);
        assert_eq!(
            server
                .metrics_registry()
                .counter("errors.deadline-exceeded"),
            1
        );
        // A generous deadline sails through.
        let ok = client
            .call("matmul")
            .arg(Value::U64(64))
            .deadline(Duration::from_secs(60))
            .send()
            .await;
        assert!(ok.is_ok());
    });
}

#[test]
fn snapshot_captures_fleet_state_in_one_call() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let registry = KernelRegistry::new();
        registry.register(MatMul::new()).unwrap();
        registry.register(MonteCarlo::default()).unwrap();
        let shm = SharedMemory::host();
        let server = KaasServer::new(gpus(2), registry, shm.clone(), ServerConfig::default());
        let net: KaasNetwork = KaasNetwork::new();
        spawn(server.clone().serve(net.listen("kaas").unwrap()));
        let mut client = KaasClient::connect(&net, "kaas", LinkProfile::loopback())
            .await
            .unwrap()
            .with_shared_memory(shm);
        client
            .call("matmul")
            .arg(Value::U64(128))
            .out_of_band()
            .send()
            .await
            .unwrap();
        client
            .call("mci")
            .arg(Value::U64(10_000))
            .send()
            .await
            .unwrap();

        let snap = server.snapshot();
        assert_eq!(snap.runners("matmul"), 1);
        assert_eq!(snap.runners("mci"), 1);
        assert_eq!(snap.total_runners(), 2);
        assert_eq!(snap.in_flight("matmul"), 0);
        assert_eq!(snap.total_in_flight(), 0);
        assert_eq!(snap.reaped, 0);
        assert_eq!(snap.kernels.len(), 2);
        assert!(!snap.device_classes.is_empty());
    });
}

/// The deprecated `invoke`/`invoke_oob` shims are gone (removed after
/// PR 2 migrated every call site): the builder covers both transfer
/// modes with identical results.
#[test]
fn builder_covers_in_band_and_out_of_band() {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let registry = KernelRegistry::new();
        registry.register(MatMul::new()).unwrap();
        let shm = SharedMemory::host();
        let server = KaasServer::new(gpus(1), registry, shm.clone(), ServerConfig::default());
        let net: KaasNetwork = KaasNetwork::new();
        spawn(server.clone().serve(net.listen("kaas").unwrap()));
        let mut client = KaasClient::connect(&net, "kaas", LinkProfile::loopback())
            .await
            .unwrap()
            .with_shared_memory(shm);
        let a = client
            .call("matmul")
            .arg(Value::U64(100))
            .send()
            .await
            .unwrap();
        let b = client
            .call("matmul")
            .arg(Value::U64(100))
            .out_of_band()
            .send()
            .await
            .unwrap();
        assert_eq!(a.output, b.output);
        let snap = server.snapshot();
        assert_eq!(snap.runners("matmul"), 1);
        assert_eq!(snap.in_flight("matmul"), 0);
    });
}
