//! Integration: a chaos-style stress run — heterogeneous kernels,
//! bursty multi-tenant load, autoscaling, idle reaping, and a mid-run
//! runner crash, all in one deployment. Everything must stay correct
//! and deterministic.

use std::time::Duration;

use kaas::accel::{
    Device, DeviceId, FpgaDevice, FpgaProfile, GpuDevice, GpuProfile, QpuDevice, QpuProfile,
};
use kaas::core::{KaasClient, KaasNetwork, KaasServer, KernelRegistry, RunnerConfig, ServerConfig};
use kaas::kernels::{Histogram, MatMul, MonteCarlo, Value, VqeEstimator};
use kaas::net::{LinkProfile, SharedMemory};
use kaas::simtime::{join_all, sleep, spawn, Simulation};

fn build() -> (KaasServer, KaasNetwork, SharedMemory) {
    let devices: Vec<Device> = vec![
        GpuDevice::new(DeviceId(0), GpuProfile::p100()).into(),
        GpuDevice::new(DeviceId(1), GpuProfile::p100().with_speed_factor(0.9)).into(),
        FpgaDevice::new(DeviceId(2), FpgaProfile::alveo_u250()).into(),
        QpuDevice::new(DeviceId(3), QpuProfile::statevector_simulator()).into(),
    ];
    let registry = KernelRegistry::new();
    registry.register(MatMul::new()).unwrap();
    registry.register(MonteCarlo::default()).unwrap();
    registry.register(Histogram::new()).unwrap();
    registry.register(VqeEstimator::h2(512)).unwrap();
    let shm = SharedMemory::host();
    let config = ServerConfig::default()
        .with_idle_timeout(Duration::from_secs(120))
        .with_tenant_quota(3)
        .with_runner(RunnerConfig {
            max_inflight: 2,
            ..RunnerConfig::default()
        });
    let server = KaasServer::new(devices, registry, shm.clone(), config);
    let net: KaasNetwork = KaasNetwork::new();
    spawn(server.clone().serve(net.listen("kaas").unwrap()));
    (server, net, shm)
}

fn run_chaos() -> (usize, usize, usize) {
    let mut sim = Simulation::new();
    sim.block_on(async {
        let (server, net, shm) = build();
        // Three tenants, four kernels, staggered bursts.
        let mut workers = Vec::new();
        for (w, tenant) in ["alpha", "beta", "gamma"].iter().enumerate() {
            let mut client = KaasClient::connect(&net, "kaas", LinkProfile::loopback())
                .await
                .unwrap()
                .with_shared_memory(shm.clone())
                .with_tenant(*tenant);
            workers.push(async move {
                let mut ok = 0usize;
                for round in 0..6u64 {
                    let (kernel, input): (&str, Value) = match (round + w as u64) % 4 {
                        0 => ("matmul", Value::U64(512 + 64 * round)),
                        1 => ("mci", Value::U64(10_000)),
                        2 => ("histogram", Value::U64(200_000)),
                        _ => ("vqe-estimator", Value::F64s(vec![0.1 * round as f64; 4])),
                    };
                    if client
                        .call(kernel)
                        .arg(input)
                        .out_of_band()
                        .send()
                        .await
                        .is_ok()
                    {
                        ok += 1;
                    }
                    sleep(Duration::from_millis(350 * (w as u64 + 1))).await;
                }
                ok
            });
        }
        let worker_handles = join_all(workers);

        // Chaos: kill the first GPU's matmul runner mid-run.
        let saboteur = {
            let server = server.clone();
            spawn(async move {
                sleep(Duration::from_secs(2)).await;
                server.kill_runner("matmul", DeviceId(0));
            })
        };

        let oks = worker_handles.await;
        saboteur.await;
        let total_ok: usize = oks.iter().sum();
        (
            total_ok,
            server.metrics().len(),
            server.metrics().cold_starts(),
        )
    })
}

#[test]
fn chaos_run_completes_every_request() {
    let (ok, recorded, cold) = run_chaos();
    // 3 tenants × 6 rounds, all successful despite the killed runner.
    assert_eq!(ok, 18);
    // Retries may add extra recorded attempts; never fewer than issued.
    assert!(recorded >= 18, "recorded={recorded}");
    // Cold starts: ≥ one per (kernel, device) actually used, plus the
    // respawn after the crash.
    assert!(cold >= 4, "cold={cold}");
}

#[test]
fn chaos_run_is_deterministic() {
    assert_eq!(run_chaos(), run_chaos());
}
