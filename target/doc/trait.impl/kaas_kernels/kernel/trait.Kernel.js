(function() {
    const implementors = Object.fromEntries([["kaas_core",[["impl <a class=\"trait\" href=\"kaas_kernels/kernel/trait.Kernel.html\" title=\"trait kaas_kernels::kernel::Kernel\">Kernel</a> for <a class=\"struct\" href=\"kaas_core/struct.FusedKernel.html\" title=\"struct kaas_core::FusedKernel\">FusedKernel</a>",0]]],["kaas_core",[["impl Kernel for <a class=\"struct\" href=\"kaas_core/struct.FusedKernel.html\" title=\"struct kaas_core::FusedKernel\">FusedKernel</a>",0]]],["kaas_kernels",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[271,157,20]}