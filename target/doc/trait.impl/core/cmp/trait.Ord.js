(function() {
    const implementors = Object.fromEntries([["kaas_accel",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"enum\" href=\"kaas_accel/enum.DeviceClass.html\" title=\"enum kaas_accel::DeviceClass\">DeviceClass</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"kaas_accel/struct.DeviceId.html\" title=\"struct kaas_accel::DeviceId\">DeviceId</a>",0]]],["kaas_core",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"kaas_core/struct.RunnerId.html\" title=\"struct kaas_core::RunnerId\">RunnerId</a>",0]]],["kaas_simtime",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"kaas_simtime/struct.SimTime.html\" title=\"struct kaas_simtime::SimTime\">SimTime</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"kaas_simtime/trace/struct.SpanId.html\" title=\"struct kaas_simtime::trace::SpanId\">SpanId</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[521,265,533]}