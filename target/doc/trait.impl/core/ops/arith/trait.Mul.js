(function() {
    const implementors = Object.fromEntries([["kaas_quantum",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Mul.html\" title=\"trait core::ops::arith::Mul\">Mul</a> for <a class=\"struct\" href=\"kaas_quantum/struct.C64.html\" title=\"struct kaas_quantum::C64\">C64</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[271]}