/root/repo/target/debug/deps/all_figures-1bf61ccb31944337.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-1bf61ccb31944337: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
