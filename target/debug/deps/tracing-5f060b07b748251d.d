/root/repo/target/debug/deps/tracing-5f060b07b748251d.d: tests/tracing.rs

/root/repo/target/debug/deps/tracing-5f060b07b748251d: tests/tracing.rs

tests/tracing.rs:
