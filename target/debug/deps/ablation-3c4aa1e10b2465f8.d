/root/repo/target/debug/deps/ablation-3c4aa1e10b2465f8.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-3c4aa1e10b2465f8: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
