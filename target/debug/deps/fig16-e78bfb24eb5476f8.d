/root/repo/target/debug/deps/fig16-e78bfb24eb5476f8.d: crates/bench/src/bin/fig16.rs Cargo.toml

/root/repo/target/debug/deps/libfig16-e78bfb24eb5476f8.rmeta: crates/bench/src/bin/fig16.rs Cargo.toml

crates/bench/src/bin/fig16.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
