/root/repo/target/debug/deps/failure_and_errors-c52949c2a72591db.d: tests/failure_and_errors.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_and_errors-c52949c2a72591db.rmeta: tests/failure_and_errors.rs Cargo.toml

tests/failure_and_errors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
