/root/repo/target/debug/deps/kaas_accel-6a098a7c2e508643.d: crates/accel/src/lib.rs crates/accel/src/cpu.rs crates/accel/src/device.rs crates/accel/src/fpga.rs crates/accel/src/gpu.rs crates/accel/src/power.rs crates/accel/src/ps.rs crates/accel/src/qpu.rs crates/accel/src/tpu.rs crates/accel/src/work.rs crates/accel/src/xfer.rs

/root/repo/target/debug/deps/kaas_accel-6a098a7c2e508643: crates/accel/src/lib.rs crates/accel/src/cpu.rs crates/accel/src/device.rs crates/accel/src/fpga.rs crates/accel/src/gpu.rs crates/accel/src/power.rs crates/accel/src/ps.rs crates/accel/src/qpu.rs crates/accel/src/tpu.rs crates/accel/src/work.rs crates/accel/src/xfer.rs

crates/accel/src/lib.rs:
crates/accel/src/cpu.rs:
crates/accel/src/device.rs:
crates/accel/src/fpga.rs:
crates/accel/src/gpu.rs:
crates/accel/src/power.rs:
crates/accel/src/ps.rs:
crates/accel/src/qpu.rs:
crates/accel/src/tpu.rs:
crates/accel/src/work.rs:
crates/accel/src/xfer.rs:
