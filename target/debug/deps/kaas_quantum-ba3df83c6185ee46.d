/root/repo/target/debug/deps/kaas_quantum-ba3df83c6185ee46.d: crates/quantum/src/lib.rs crates/quantum/src/circuit.rs crates/quantum/src/complex.rs crates/quantum/src/estimator.rs crates/quantum/src/gate.rs crates/quantum/src/optimize.rs crates/quantum/src/pauli.rs crates/quantum/src/state.rs crates/quantum/src/transpile.rs crates/quantum/src/vqe.rs

/root/repo/target/debug/deps/libkaas_quantum-ba3df83c6185ee46.rlib: crates/quantum/src/lib.rs crates/quantum/src/circuit.rs crates/quantum/src/complex.rs crates/quantum/src/estimator.rs crates/quantum/src/gate.rs crates/quantum/src/optimize.rs crates/quantum/src/pauli.rs crates/quantum/src/state.rs crates/quantum/src/transpile.rs crates/quantum/src/vqe.rs

/root/repo/target/debug/deps/libkaas_quantum-ba3df83c6185ee46.rmeta: crates/quantum/src/lib.rs crates/quantum/src/circuit.rs crates/quantum/src/complex.rs crates/quantum/src/estimator.rs crates/quantum/src/gate.rs crates/quantum/src/optimize.rs crates/quantum/src/pauli.rs crates/quantum/src/state.rs crates/quantum/src/transpile.rs crates/quantum/src/vqe.rs

crates/quantum/src/lib.rs:
crates/quantum/src/circuit.rs:
crates/quantum/src/complex.rs:
crates/quantum/src/estimator.rs:
crates/quantum/src/gate.rs:
crates/quantum/src/optimize.rs:
crates/quantum/src/pauli.rs:
crates/quantum/src/state.rs:
crates/quantum/src/transpile.rs:
crates/quantum/src/vqe.rs:
