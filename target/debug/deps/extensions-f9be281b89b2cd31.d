/root/repo/target/debug/deps/extensions-f9be281b89b2cd31.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-f9be281b89b2cd31.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
