/root/repo/target/debug/deps/proptests-c7d4c9da6e3c7837.d: crates/simtime/tests/proptests.rs

/root/repo/target/debug/deps/proptests-c7d4c9da6e3c7837: crates/simtime/tests/proptests.rs

crates/simtime/tests/proptests.rs:
