/root/repo/target/debug/deps/fig02-d23f0a19b7474475.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/fig02-d23f0a19b7474475: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
