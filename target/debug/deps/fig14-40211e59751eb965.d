/root/repo/target/debug/deps/fig14-40211e59751eb965.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-40211e59751eb965: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
