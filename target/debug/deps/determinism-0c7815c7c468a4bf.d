/root/repo/target/debug/deps/determinism-0c7815c7c468a4bf.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-0c7815c7c468a4bf: tests/determinism.rs

tests/determinism.rs:
