/root/repo/target/debug/deps/kaas_simtime-e4c10368a4a58bf8.d: crates/simtime/src/lib.rs crates/simtime/src/channel.rs crates/simtime/src/combinators.rs crates/simtime/src/executor.rs crates/simtime/src/join.rs crates/simtime/src/rng.rs crates/simtime/src/sleep.rs crates/simtime/src/sync.rs crates/simtime/src/time.rs crates/simtime/src/trace.rs

/root/repo/target/debug/deps/kaas_simtime-e4c10368a4a58bf8: crates/simtime/src/lib.rs crates/simtime/src/channel.rs crates/simtime/src/combinators.rs crates/simtime/src/executor.rs crates/simtime/src/join.rs crates/simtime/src/rng.rs crates/simtime/src/sleep.rs crates/simtime/src/sync.rs crates/simtime/src/time.rs crates/simtime/src/trace.rs

crates/simtime/src/lib.rs:
crates/simtime/src/channel.rs:
crates/simtime/src/combinators.rs:
crates/simtime/src/executor.rs:
crates/simtime/src/join.rs:
crates/simtime/src/rng.rs:
crates/simtime/src/sleep.rs:
crates/simtime/src/sync.rs:
crates/simtime/src/time.rs:
crates/simtime/src/trace.rs:
