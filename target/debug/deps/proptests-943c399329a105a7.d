/root/repo/target/debug/deps/proptests-943c399329a105a7.d: crates/quantum/tests/proptests.rs

/root/repo/target/debug/deps/proptests-943c399329a105a7: crates/quantum/tests/proptests.rs

crates/quantum/tests/proptests.rs:
