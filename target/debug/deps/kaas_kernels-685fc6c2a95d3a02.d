/root/repo/target/debug/deps/kaas_kernels-685fc6c2a95d3a02.d: crates/kernels/src/lib.rs crates/kernels/src/conv2d.rs crates/kernels/src/dtw.rs crates/kernels/src/fpga.rs crates/kernels/src/ga.rs crates/kernels/src/gnn.rs crates/kernels/src/image.rs crates/kernels/src/kernel.rs crates/kernels/src/matmul.rs crates/kernels/src/mci.rs crates/kernels/src/qc.rs crates/kernels/src/resnet.rs crates/kernels/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libkaas_kernels-685fc6c2a95d3a02.rmeta: crates/kernels/src/lib.rs crates/kernels/src/conv2d.rs crates/kernels/src/dtw.rs crates/kernels/src/fpga.rs crates/kernels/src/ga.rs crates/kernels/src/gnn.rs crates/kernels/src/image.rs crates/kernels/src/kernel.rs crates/kernels/src/matmul.rs crates/kernels/src/mci.rs crates/kernels/src/qc.rs crates/kernels/src/resnet.rs crates/kernels/src/value.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/conv2d.rs:
crates/kernels/src/dtw.rs:
crates/kernels/src/fpga.rs:
crates/kernels/src/ga.rs:
crates/kernels/src/gnn.rs:
crates/kernels/src/image.rs:
crates/kernels/src/kernel.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/mci.rs:
crates/kernels/src/qc.rs:
crates/kernels/src/resnet.rs:
crates/kernels/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
