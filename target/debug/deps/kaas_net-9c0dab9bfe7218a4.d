/root/repo/target/debug/deps/kaas_net-9c0dab9bfe7218a4.d: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/profile.rs crates/net/src/shm.rs crates/net/src/wire.rs

/root/repo/target/debug/deps/libkaas_net-9c0dab9bfe7218a4.rlib: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/profile.rs crates/net/src/shm.rs crates/net/src/wire.rs

/root/repo/target/debug/deps/libkaas_net-9c0dab9bfe7218a4.rmeta: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/profile.rs crates/net/src/shm.rs crates/net/src/wire.rs

crates/net/src/lib.rs:
crates/net/src/conn.rs:
crates/net/src/profile.rs:
crates/net/src/shm.rs:
crates/net/src/wire.rs:
