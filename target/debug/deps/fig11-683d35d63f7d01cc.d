/root/repo/target/debug/deps/fig11-683d35d63f7d01cc.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-683d35d63f7d01cc: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
