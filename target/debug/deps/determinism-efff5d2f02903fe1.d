/root/repo/target/debug/deps/determinism-efff5d2f02903fe1.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-efff5d2f02903fe1.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
