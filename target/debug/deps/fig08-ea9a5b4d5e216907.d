/root/repo/target/debug/deps/fig08-ea9a5b4d5e216907.d: crates/bench/src/bin/fig08.rs Cargo.toml

/root/repo/target/debug/deps/libfig08-ea9a5b4d5e216907.rmeta: crates/bench/src/bin/fig08.rs Cargo.toml

crates/bench/src/bin/fig08.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
