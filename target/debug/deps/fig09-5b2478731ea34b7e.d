/root/repo/target/debug/deps/fig09-5b2478731ea34b7e.d: crates/bench/src/bin/fig09.rs

/root/repo/target/debug/deps/fig09-5b2478731ea34b7e: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
