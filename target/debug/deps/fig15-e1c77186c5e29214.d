/root/repo/target/debug/deps/fig15-e1c77186c5e29214.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-e1c77186c5e29214: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
