/root/repo/target/debug/deps/kaas_kernels-ea351dd3297a66e6.d: crates/kernels/src/lib.rs crates/kernels/src/conv2d.rs crates/kernels/src/dtw.rs crates/kernels/src/fpga.rs crates/kernels/src/ga.rs crates/kernels/src/gnn.rs crates/kernels/src/image.rs crates/kernels/src/kernel.rs crates/kernels/src/matmul.rs crates/kernels/src/mci.rs crates/kernels/src/qc.rs crates/kernels/src/resnet.rs crates/kernels/src/value.rs

/root/repo/target/debug/deps/libkaas_kernels-ea351dd3297a66e6.rmeta: crates/kernels/src/lib.rs crates/kernels/src/conv2d.rs crates/kernels/src/dtw.rs crates/kernels/src/fpga.rs crates/kernels/src/ga.rs crates/kernels/src/gnn.rs crates/kernels/src/image.rs crates/kernels/src/kernel.rs crates/kernels/src/matmul.rs crates/kernels/src/mci.rs crates/kernels/src/qc.rs crates/kernels/src/resnet.rs crates/kernels/src/value.rs

crates/kernels/src/lib.rs:
crates/kernels/src/conv2d.rs:
crates/kernels/src/dtw.rs:
crates/kernels/src/fpga.rs:
crates/kernels/src/ga.rs:
crates/kernels/src/gnn.rs:
crates/kernels/src/image.rs:
crates/kernels/src/kernel.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/mci.rs:
crates/kernels/src/qc.rs:
crates/kernels/src/resnet.rs:
crates/kernels/src/value.rs:
