/root/repo/target/debug/deps/failure_and_errors-b68d66e423bec6ec.d: tests/failure_and_errors.rs

/root/repo/target/debug/deps/failure_and_errors-b68d66e423bec6ec: tests/failure_and_errors.rs

tests/failure_and_errors.rs:
