/root/repo/target/debug/deps/fig09-3780728c0295ad6b.d: crates/bench/src/bin/fig09.rs Cargo.toml

/root/repo/target/debug/deps/libfig09-3780728c0295ad6b.rmeta: crates/bench/src/bin/fig09.rs Cargo.toml

crates/bench/src/bin/fig09.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
