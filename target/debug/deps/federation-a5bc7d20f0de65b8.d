/root/repo/target/debug/deps/federation-a5bc7d20f0de65b8.d: tests/federation.rs Cargo.toml

/root/repo/target/debug/deps/libfederation-a5bc7d20f0de65b8.rmeta: tests/federation.rs Cargo.toml

tests/federation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
