/root/repo/target/debug/deps/kaas_quantum-9bf5cf1e7e55a90f.d: crates/quantum/src/lib.rs crates/quantum/src/circuit.rs crates/quantum/src/complex.rs crates/quantum/src/estimator.rs crates/quantum/src/gate.rs crates/quantum/src/optimize.rs crates/quantum/src/pauli.rs crates/quantum/src/state.rs crates/quantum/src/transpile.rs crates/quantum/src/vqe.rs

/root/repo/target/debug/deps/kaas_quantum-9bf5cf1e7e55a90f: crates/quantum/src/lib.rs crates/quantum/src/circuit.rs crates/quantum/src/complex.rs crates/quantum/src/estimator.rs crates/quantum/src/gate.rs crates/quantum/src/optimize.rs crates/quantum/src/pauli.rs crates/quantum/src/state.rs crates/quantum/src/transpile.rs crates/quantum/src/vqe.rs

crates/quantum/src/lib.rs:
crates/quantum/src/circuit.rs:
crates/quantum/src/complex.rs:
crates/quantum/src/estimator.rs:
crates/quantum/src/gate.rs:
crates/quantum/src/optimize.rs:
crates/quantum/src/pauli.rs:
crates/quantum/src/state.rs:
crates/quantum/src/transpile.rs:
crates/quantum/src/vqe.rs:
