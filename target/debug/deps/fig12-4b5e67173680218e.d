/root/repo/target/debug/deps/fig12-4b5e67173680218e.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-4b5e67173680218e: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
