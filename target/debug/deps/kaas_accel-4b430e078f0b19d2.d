/root/repo/target/debug/deps/kaas_accel-4b430e078f0b19d2.d: crates/accel/src/lib.rs crates/accel/src/cpu.rs crates/accel/src/device.rs crates/accel/src/fpga.rs crates/accel/src/gpu.rs crates/accel/src/power.rs crates/accel/src/ps.rs crates/accel/src/qpu.rs crates/accel/src/tpu.rs crates/accel/src/work.rs crates/accel/src/xfer.rs

/root/repo/target/debug/deps/libkaas_accel-4b430e078f0b19d2.rmeta: crates/accel/src/lib.rs crates/accel/src/cpu.rs crates/accel/src/device.rs crates/accel/src/fpga.rs crates/accel/src/gpu.rs crates/accel/src/power.rs crates/accel/src/ps.rs crates/accel/src/qpu.rs crates/accel/src/tpu.rs crates/accel/src/work.rs crates/accel/src/xfer.rs

crates/accel/src/lib.rs:
crates/accel/src/cpu.rs:
crates/accel/src/device.rs:
crates/accel/src/fpga.rs:
crates/accel/src/gpu.rs:
crates/accel/src/power.rs:
crates/accel/src/ps.rs:
crates/accel/src/qpu.rs:
crates/accel/src/tpu.rs:
crates/accel/src/work.rs:
crates/accel/src/xfer.rs:
