/root/repo/target/debug/deps/proptests-56b76220d8a74c8f.d: crates/kernels/tests/proptests.rs

/root/repo/target/debug/deps/proptests-56b76220d8a74c8f: crates/kernels/tests/proptests.rs

crates/kernels/tests/proptests.rs:
