/root/repo/target/debug/deps/fig10-01e3d7ff14368e90.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-01e3d7ff14368e90.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
