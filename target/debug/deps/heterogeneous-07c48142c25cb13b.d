/root/repo/target/debug/deps/heterogeneous-07c48142c25cb13b.d: tests/heterogeneous.rs

/root/repo/target/debug/deps/heterogeneous-07c48142c25cb13b: tests/heterogeneous.rs

tests/heterogeneous.rs:
