/root/repo/target/debug/deps/fig06-545f476cc7d567cc.d: crates/bench/src/bin/fig06.rs Cargo.toml

/root/repo/target/debug/deps/libfig06-545f476cc7d567cc.rmeta: crates/bench/src/bin/fig06.rs Cargo.toml

crates/bench/src/bin/fig06.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
