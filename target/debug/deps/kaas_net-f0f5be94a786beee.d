/root/repo/target/debug/deps/kaas_net-f0f5be94a786beee.d: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/profile.rs crates/net/src/shm.rs crates/net/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libkaas_net-f0f5be94a786beee.rmeta: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/profile.rs crates/net/src/shm.rs crates/net/src/wire.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/conn.rs:
crates/net/src/profile.rs:
crates/net/src/shm.rs:
crates/net/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
