/root/repo/target/debug/deps/fig15-5d7a2922c9cd8188.d: crates/bench/src/bin/fig15.rs Cargo.toml

/root/repo/target/debug/deps/libfig15-5d7a2922c9cd8188.rmeta: crates/bench/src/bin/fig15.rs Cargo.toml

crates/bench/src/bin/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
