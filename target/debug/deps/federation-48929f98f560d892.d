/root/repo/target/debug/deps/federation-48929f98f560d892.d: tests/federation.rs

/root/repo/target/debug/deps/federation-48929f98f560d892: tests/federation.rs

tests/federation.rs:
