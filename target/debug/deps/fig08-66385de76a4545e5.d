/root/repo/target/debug/deps/fig08-66385de76a4545e5.d: crates/bench/src/bin/fig08.rs

/root/repo/target/debug/deps/fig08-66385de76a4545e5: crates/bench/src/bin/fig08.rs

crates/bench/src/bin/fig08.rs:
