/root/repo/target/debug/deps/kaas_simtime-16f66a0eece3ff79.d: crates/simtime/src/lib.rs crates/simtime/src/channel.rs crates/simtime/src/combinators.rs crates/simtime/src/executor.rs crates/simtime/src/join.rs crates/simtime/src/rng.rs crates/simtime/src/sleep.rs crates/simtime/src/sync.rs crates/simtime/src/time.rs crates/simtime/src/trace.rs

/root/repo/target/debug/deps/libkaas_simtime-16f66a0eece3ff79.rmeta: crates/simtime/src/lib.rs crates/simtime/src/channel.rs crates/simtime/src/combinators.rs crates/simtime/src/executor.rs crates/simtime/src/join.rs crates/simtime/src/rng.rs crates/simtime/src/sleep.rs crates/simtime/src/sync.rs crates/simtime/src/time.rs crates/simtime/src/trace.rs

crates/simtime/src/lib.rs:
crates/simtime/src/channel.rs:
crates/simtime/src/combinators.rs:
crates/simtime/src/executor.rs:
crates/simtime/src/join.rs:
crates/simtime/src/rng.rs:
crates/simtime/src/sleep.rs:
crates/simtime/src/sync.rs:
crates/simtime/src/time.rs:
crates/simtime/src/trace.rs:
