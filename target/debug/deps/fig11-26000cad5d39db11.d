/root/repo/target/debug/deps/fig11-26000cad5d39db11.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-26000cad5d39db11: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
