/root/repo/target/debug/deps/kaas-6b4f2d3203de7bae.d: src/lib.rs

/root/repo/target/debug/deps/kaas-6b4f2d3203de7bae: src/lib.rs

src/lib.rs:
