/root/repo/target/debug/deps/kaas-823bc5850c326d4c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libkaas-823bc5850c326d4c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
