/root/repo/target/debug/deps/fig16-302b8652bbcdaaf2.d: crates/bench/src/bin/fig16.rs

/root/repo/target/debug/deps/fig16-302b8652bbcdaaf2: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
