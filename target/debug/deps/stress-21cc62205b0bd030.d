/root/repo/target/debug/deps/stress-21cc62205b0bd030.d: tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-21cc62205b0bd030.rmeta: tests/stress.rs Cargo.toml

tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
