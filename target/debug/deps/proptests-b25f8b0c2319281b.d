/root/repo/target/debug/deps/proptests-b25f8b0c2319281b.d: crates/kernels/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-b25f8b0c2319281b.rmeta: crates/kernels/tests/proptests.rs Cargo.toml

crates/kernels/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
