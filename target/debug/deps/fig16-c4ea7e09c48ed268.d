/root/repo/target/debug/deps/fig16-c4ea7e09c48ed268.d: crates/bench/src/bin/fig16.rs

/root/repo/target/debug/deps/fig16-c4ea7e09c48ed268: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
