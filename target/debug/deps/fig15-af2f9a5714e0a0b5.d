/root/repo/target/debug/deps/fig15-af2f9a5714e0a0b5.d: crates/bench/src/bin/fig15.rs Cargo.toml

/root/repo/target/debug/deps/libfig15-af2f9a5714e0a0b5.rmeta: crates/bench/src/bin/fig15.rs Cargo.toml

crates/bench/src/bin/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
