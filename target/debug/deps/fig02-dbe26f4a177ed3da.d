/root/repo/target/debug/deps/fig02-dbe26f4a177ed3da.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/fig02-dbe26f4a177ed3da: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
