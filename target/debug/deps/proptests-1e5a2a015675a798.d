/root/repo/target/debug/deps/proptests-1e5a2a015675a798.d: crates/quantum/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-1e5a2a015675a798.rmeta: crates/quantum/tests/proptests.rs Cargo.toml

crates/quantum/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
