/root/repo/target/debug/deps/kaas_net-08c155ba5bf05933.d: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/profile.rs crates/net/src/shm.rs crates/net/src/wire.rs

/root/repo/target/debug/deps/libkaas_net-08c155ba5bf05933.rmeta: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/profile.rs crates/net/src/shm.rs crates/net/src/wire.rs

crates/net/src/lib.rs:
crates/net/src/conn.rs:
crates/net/src/profile.rs:
crates/net/src/shm.rs:
crates/net/src/wire.rs:
