/root/repo/target/debug/deps/fig07-0d59a96405238911.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/fig07-0d59a96405238911: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
