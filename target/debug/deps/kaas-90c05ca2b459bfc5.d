/root/repo/target/debug/deps/kaas-90c05ca2b459bfc5.d: src/lib.rs

/root/repo/target/debug/deps/libkaas-90c05ca2b459bfc5.rlib: src/lib.rs

/root/repo/target/debug/deps/libkaas-90c05ca2b459bfc5.rmeta: src/lib.rs

src/lib.rs:
