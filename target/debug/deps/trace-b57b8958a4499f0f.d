/root/repo/target/debug/deps/trace-b57b8958a4499f0f.d: crates/bench/src/bin/trace.rs Cargo.toml

/root/repo/target/debug/deps/libtrace-b57b8958a4499f0f.rmeta: crates/bench/src/bin/trace.rs Cargo.toml

crates/bench/src/bin/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
