/root/repo/target/debug/deps/trace-c76dd863845eaf5e.d: crates/bench/src/bin/trace.rs

/root/repo/target/debug/deps/trace-c76dd863845eaf5e: crates/bench/src/bin/trace.rs

crates/bench/src/bin/trace.rs:
