/root/repo/target/debug/deps/fig06-ca7a2f39cfe58673.d: crates/bench/src/bin/fig06.rs

/root/repo/target/debug/deps/fig06-ca7a2f39cfe58673: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
