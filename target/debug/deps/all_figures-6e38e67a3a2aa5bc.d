/root/repo/target/debug/deps/all_figures-6e38e67a3a2aa5bc.d: crates/bench/src/bin/all_figures.rs Cargo.toml

/root/repo/target/debug/deps/liball_figures-6e38e67a3a2aa5bc.rmeta: crates/bench/src/bin/all_figures.rs Cargo.toml

crates/bench/src/bin/all_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
