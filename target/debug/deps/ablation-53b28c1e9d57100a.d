/root/repo/target/debug/deps/ablation-53b28c1e9d57100a.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-53b28c1e9d57100a: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
