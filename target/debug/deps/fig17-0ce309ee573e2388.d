/root/repo/target/debug/deps/fig17-0ce309ee573e2388.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/fig17-0ce309ee573e2388: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
