/root/repo/target/debug/deps/kaas_core-6b7d36439625ee2d.d: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/autoscaler.rs crates/core/src/baseline.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/dispatch.rs crates/core/src/fault.rs crates/core/src/federation.rs crates/core/src/fusion.rs crates/core/src/metrics.rs crates/core/src/metrics/histogram.rs crates/core/src/metrics/registry.rs crates/core/src/pool.rs crates/core/src/protocol.rs crates/core/src/registry.rs crates/core/src/resilience.rs crates/core/src/runner.rs crates/core/src/scheduler.rs crates/core/src/server.rs crates/core/src/trace.rs crates/core/src/workflow.rs Cargo.toml

/root/repo/target/debug/deps/libkaas_core-6b7d36439625ee2d.rmeta: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/autoscaler.rs crates/core/src/baseline.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/dispatch.rs crates/core/src/fault.rs crates/core/src/federation.rs crates/core/src/fusion.rs crates/core/src/metrics.rs crates/core/src/metrics/histogram.rs crates/core/src/metrics/registry.rs crates/core/src/pool.rs crates/core/src/protocol.rs crates/core/src/registry.rs crates/core/src/resilience.rs crates/core/src/runner.rs crates/core/src/scheduler.rs crates/core/src/server.rs crates/core/src/trace.rs crates/core/src/workflow.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/admission.rs:
crates/core/src/autoscaler.rs:
crates/core/src/baseline.rs:
crates/core/src/client.rs:
crates/core/src/config.rs:
crates/core/src/dispatch.rs:
crates/core/src/fault.rs:
crates/core/src/federation.rs:
crates/core/src/fusion.rs:
crates/core/src/metrics.rs:
crates/core/src/metrics/histogram.rs:
crates/core/src/metrics/registry.rs:
crates/core/src/pool.rs:
crates/core/src/protocol.rs:
crates/core/src/registry.rs:
crates/core/src/resilience.rs:
crates/core/src/runner.rs:
crates/core/src/scheduler.rs:
crates/core/src/server.rs:
crates/core/src/trace.rs:
crates/core/src/workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
