/root/repo/target/debug/deps/fig13-9f5250b2ba12730b.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-9f5250b2ba12730b: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
