/root/repo/target/debug/deps/paper_claims-254974d0edcd34e6.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-254974d0edcd34e6: tests/paper_claims.rs

tests/paper_claims.rs:
