/root/repo/target/debug/deps/kaas_quantum-bb26319519a7cd64.d: crates/quantum/src/lib.rs crates/quantum/src/circuit.rs crates/quantum/src/complex.rs crates/quantum/src/estimator.rs crates/quantum/src/gate.rs crates/quantum/src/optimize.rs crates/quantum/src/pauli.rs crates/quantum/src/state.rs crates/quantum/src/transpile.rs crates/quantum/src/vqe.rs

/root/repo/target/debug/deps/libkaas_quantum-bb26319519a7cd64.rmeta: crates/quantum/src/lib.rs crates/quantum/src/circuit.rs crates/quantum/src/complex.rs crates/quantum/src/estimator.rs crates/quantum/src/gate.rs crates/quantum/src/optimize.rs crates/quantum/src/pauli.rs crates/quantum/src/state.rs crates/quantum/src/transpile.rs crates/quantum/src/vqe.rs

crates/quantum/src/lib.rs:
crates/quantum/src/circuit.rs:
crates/quantum/src/complex.rs:
crates/quantum/src/estimator.rs:
crates/quantum/src/gate.rs:
crates/quantum/src/optimize.rs:
crates/quantum/src/pauli.rs:
crates/quantum/src/state.rs:
crates/quantum/src/transpile.rs:
crates/quantum/src/vqe.rs:
