/root/repo/target/debug/deps/stress-751729ef4bbe60ab.d: tests/stress.rs

/root/repo/target/debug/deps/stress-751729ef4bbe60ab: tests/stress.rs

tests/stress.rs:
