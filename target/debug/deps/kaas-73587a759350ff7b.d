/root/repo/target/debug/deps/kaas-73587a759350ff7b.d: src/lib.rs

/root/repo/target/debug/deps/libkaas-73587a759350ff7b.rlib: src/lib.rs

/root/repo/target/debug/deps/libkaas-73587a759350ff7b.rmeta: src/lib.rs

src/lib.rs:
