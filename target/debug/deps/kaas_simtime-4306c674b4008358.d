/root/repo/target/debug/deps/kaas_simtime-4306c674b4008358.d: crates/simtime/src/lib.rs crates/simtime/src/channel.rs crates/simtime/src/combinators.rs crates/simtime/src/executor.rs crates/simtime/src/join.rs crates/simtime/src/rng.rs crates/simtime/src/sleep.rs crates/simtime/src/sync.rs crates/simtime/src/time.rs crates/simtime/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libkaas_simtime-4306c674b4008358.rmeta: crates/simtime/src/lib.rs crates/simtime/src/channel.rs crates/simtime/src/combinators.rs crates/simtime/src/executor.rs crates/simtime/src/join.rs crates/simtime/src/rng.rs crates/simtime/src/sleep.rs crates/simtime/src/sync.rs crates/simtime/src/time.rs crates/simtime/src/trace.rs Cargo.toml

crates/simtime/src/lib.rs:
crates/simtime/src/channel.rs:
crates/simtime/src/combinators.rs:
crates/simtime/src/executor.rs:
crates/simtime/src/join.rs:
crates/simtime/src/rng.rs:
crates/simtime/src/sleep.rs:
crates/simtime/src/sync.rs:
crates/simtime/src/time.rs:
crates/simtime/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
