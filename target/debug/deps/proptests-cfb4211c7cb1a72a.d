/root/repo/target/debug/deps/proptests-cfb4211c7cb1a72a.d: crates/simtime/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-cfb4211c7cb1a72a.rmeta: crates/simtime/tests/proptests.rs Cargo.toml

crates/simtime/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
