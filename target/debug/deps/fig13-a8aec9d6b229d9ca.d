/root/repo/target/debug/deps/fig13-a8aec9d6b229d9ca.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-a8aec9d6b229d9ca: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
