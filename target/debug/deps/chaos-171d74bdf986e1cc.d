/root/repo/target/debug/deps/chaos-171d74bdf986e1cc.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-171d74bdf986e1cc: tests/chaos.rs

tests/chaos.rs:
