/root/repo/target/debug/deps/chaos-4407a1aa247e41ca.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-4407a1aa247e41ca.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
