/root/repo/target/debug/deps/kaas_bench-9750d493910a4972.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/common.rs crates/bench/src/fig02.rs crates/bench/src/fig06.rs crates/bench/src/fig07.rs crates/bench/src/fig08.rs crates/bench/src/fig09.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig14.rs crates/bench/src/fig15.rs crates/bench/src/fig16.rs crates/bench/src/fig17.rs crates/bench/src/sharing.rs crates/bench/src/trace_replay.rs Cargo.toml

/root/repo/target/debug/deps/libkaas_bench-9750d493910a4972.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/common.rs crates/bench/src/fig02.rs crates/bench/src/fig06.rs crates/bench/src/fig07.rs crates/bench/src/fig08.rs crates/bench/src/fig09.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig14.rs crates/bench/src/fig15.rs crates/bench/src/fig16.rs crates/bench/src/fig17.rs crates/bench/src/sharing.rs crates/bench/src/trace_replay.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/common.rs:
crates/bench/src/fig02.rs:
crates/bench/src/fig06.rs:
crates/bench/src/fig07.rs:
crates/bench/src/fig08.rs:
crates/bench/src/fig09.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig12.rs:
crates/bench/src/fig13.rs:
crates/bench/src/fig14.rs:
crates/bench/src/fig15.rs:
crates/bench/src/fig16.rs:
crates/bench/src/fig17.rs:
crates/bench/src/sharing.rs:
crates/bench/src/trace_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
