/root/repo/target/debug/deps/all_figures-5ba4ffb0b82c0970.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-5ba4ffb0b82c0970: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
