/root/repo/target/debug/deps/kaas_accel-a431c0dababd5486.d: crates/accel/src/lib.rs crates/accel/src/cpu.rs crates/accel/src/device.rs crates/accel/src/fpga.rs crates/accel/src/gpu.rs crates/accel/src/power.rs crates/accel/src/ps.rs crates/accel/src/qpu.rs crates/accel/src/tpu.rs crates/accel/src/work.rs crates/accel/src/xfer.rs Cargo.toml

/root/repo/target/debug/deps/libkaas_accel-a431c0dababd5486.rmeta: crates/accel/src/lib.rs crates/accel/src/cpu.rs crates/accel/src/device.rs crates/accel/src/fpga.rs crates/accel/src/gpu.rs crates/accel/src/power.rs crates/accel/src/ps.rs crates/accel/src/qpu.rs crates/accel/src/tpu.rs crates/accel/src/work.rs crates/accel/src/xfer.rs Cargo.toml

crates/accel/src/lib.rs:
crates/accel/src/cpu.rs:
crates/accel/src/device.rs:
crates/accel/src/fpga.rs:
crates/accel/src/gpu.rs:
crates/accel/src/power.rs:
crates/accel/src/ps.rs:
crates/accel/src/qpu.rs:
crates/accel/src/tpu.rs:
crates/accel/src/work.rs:
crates/accel/src/xfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
