/root/repo/target/debug/deps/tracing-6095703455ff990e.d: tests/tracing.rs Cargo.toml

/root/repo/target/debug/deps/libtracing-6095703455ff990e.rmeta: tests/tracing.rs Cargo.toml

tests/tracing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
