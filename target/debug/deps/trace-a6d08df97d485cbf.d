/root/repo/target/debug/deps/trace-a6d08df97d485cbf.d: crates/bench/src/bin/trace.rs

/root/repo/target/debug/deps/trace-a6d08df97d485cbf: crates/bench/src/bin/trace.rs

crates/bench/src/bin/trace.rs:
