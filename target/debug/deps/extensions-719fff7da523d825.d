/root/repo/target/debug/deps/extensions-719fff7da523d825.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-719fff7da523d825: tests/extensions.rs

tests/extensions.rs:
