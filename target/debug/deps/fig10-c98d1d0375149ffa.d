/root/repo/target/debug/deps/fig10-c98d1d0375149ffa.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-c98d1d0375149ffa: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
