/root/repo/target/debug/deps/fig14-28133961a9e2127a.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-28133961a9e2127a: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
