/root/repo/target/debug/deps/proptests-49faec3e62225944.d: crates/accel/tests/proptests.rs

/root/repo/target/debug/deps/proptests-49faec3e62225944: crates/accel/tests/proptests.rs

crates/accel/tests/proptests.rs:
