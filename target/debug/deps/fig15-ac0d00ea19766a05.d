/root/repo/target/debug/deps/fig15-ac0d00ea19766a05.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-ac0d00ea19766a05: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
