/root/repo/target/debug/deps/fig17-5d17964ce55f58d0.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/fig17-5d17964ce55f58d0: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
