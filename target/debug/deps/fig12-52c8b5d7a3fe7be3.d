/root/repo/target/debug/deps/fig12-52c8b5d7a3fe7be3.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-52c8b5d7a3fe7be3: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
