/root/repo/target/debug/deps/proptests-6515b7adb4d6100a.d: crates/accel/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-6515b7adb4d6100a.rmeta: crates/accel/tests/proptests.rs Cargo.toml

crates/accel/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
