/root/repo/target/debug/deps/kaas_quantum-4758207b35ffd0e7.d: crates/quantum/src/lib.rs crates/quantum/src/circuit.rs crates/quantum/src/complex.rs crates/quantum/src/estimator.rs crates/quantum/src/gate.rs crates/quantum/src/optimize.rs crates/quantum/src/pauli.rs crates/quantum/src/state.rs crates/quantum/src/transpile.rs crates/quantum/src/vqe.rs Cargo.toml

/root/repo/target/debug/deps/libkaas_quantum-4758207b35ffd0e7.rmeta: crates/quantum/src/lib.rs crates/quantum/src/circuit.rs crates/quantum/src/complex.rs crates/quantum/src/estimator.rs crates/quantum/src/gate.rs crates/quantum/src/optimize.rs crates/quantum/src/pauli.rs crates/quantum/src/state.rs crates/quantum/src/transpile.rs crates/quantum/src/vqe.rs Cargo.toml

crates/quantum/src/lib.rs:
crates/quantum/src/circuit.rs:
crates/quantum/src/complex.rs:
crates/quantum/src/estimator.rs:
crates/quantum/src/gate.rs:
crates/quantum/src/optimize.rs:
crates/quantum/src/pauli.rs:
crates/quantum/src/state.rs:
crates/quantum/src/transpile.rs:
crates/quantum/src/vqe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
