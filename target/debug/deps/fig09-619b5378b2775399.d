/root/repo/target/debug/deps/fig09-619b5378b2775399.d: crates/bench/src/bin/fig09.rs

/root/repo/target/debug/deps/fig09-619b5378b2775399: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
