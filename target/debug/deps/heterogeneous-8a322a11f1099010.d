/root/repo/target/debug/deps/heterogeneous-8a322a11f1099010.d: tests/heterogeneous.rs Cargo.toml

/root/repo/target/debug/deps/libheterogeneous-8a322a11f1099010.rmeta: tests/heterogeneous.rs Cargo.toml

tests/heterogeneous.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
