/root/repo/target/debug/deps/fig08-f96d027917fcaa3c.d: crates/bench/src/bin/fig08.rs

/root/repo/target/debug/deps/fig08-f96d027917fcaa3c: crates/bench/src/bin/fig08.rs

crates/bench/src/bin/fig08.rs:
