/root/repo/target/debug/deps/trace-17906cdb41e1343d.d: crates/bench/src/bin/trace.rs Cargo.toml

/root/repo/target/debug/deps/libtrace-17906cdb41e1343d.rmeta: crates/bench/src/bin/trace.rs Cargo.toml

crates/bench/src/bin/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
