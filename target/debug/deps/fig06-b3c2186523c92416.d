/root/repo/target/debug/deps/fig06-b3c2186523c92416.d: crates/bench/src/bin/fig06.rs

/root/repo/target/debug/deps/fig06-b3c2186523c92416: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
