/root/repo/target/debug/deps/fig07-77ad66cc14d0f685.d: crates/bench/src/bin/fig07.rs Cargo.toml

/root/repo/target/debug/deps/libfig07-77ad66cc14d0f685.rmeta: crates/bench/src/bin/fig07.rs Cargo.toml

crates/bench/src/bin/fig07.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
