/root/repo/target/debug/deps/kaas_core-a32d309a37777cf0.d: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/autoscaler.rs crates/core/src/baseline.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/dispatch.rs crates/core/src/fault.rs crates/core/src/federation.rs crates/core/src/fusion.rs crates/core/src/metrics.rs crates/core/src/metrics/histogram.rs crates/core/src/metrics/registry.rs crates/core/src/pool.rs crates/core/src/protocol.rs crates/core/src/registry.rs crates/core/src/resilience.rs crates/core/src/runner.rs crates/core/src/scheduler.rs crates/core/src/server.rs crates/core/src/trace.rs crates/core/src/workflow.rs

/root/repo/target/debug/deps/kaas_core-a32d309a37777cf0: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/autoscaler.rs crates/core/src/baseline.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/dispatch.rs crates/core/src/fault.rs crates/core/src/federation.rs crates/core/src/fusion.rs crates/core/src/metrics.rs crates/core/src/metrics/histogram.rs crates/core/src/metrics/registry.rs crates/core/src/pool.rs crates/core/src/protocol.rs crates/core/src/registry.rs crates/core/src/resilience.rs crates/core/src/runner.rs crates/core/src/scheduler.rs crates/core/src/server.rs crates/core/src/trace.rs crates/core/src/workflow.rs

crates/core/src/lib.rs:
crates/core/src/admission.rs:
crates/core/src/autoscaler.rs:
crates/core/src/baseline.rs:
crates/core/src/client.rs:
crates/core/src/config.rs:
crates/core/src/dispatch.rs:
crates/core/src/fault.rs:
crates/core/src/federation.rs:
crates/core/src/fusion.rs:
crates/core/src/metrics.rs:
crates/core/src/metrics/histogram.rs:
crates/core/src/metrics/registry.rs:
crates/core/src/pool.rs:
crates/core/src/protocol.rs:
crates/core/src/registry.rs:
crates/core/src/resilience.rs:
crates/core/src/runner.rs:
crates/core/src/scheduler.rs:
crates/core/src/server.rs:
crates/core/src/trace.rs:
crates/core/src/workflow.rs:
