/root/repo/target/debug/deps/kaas_simtime-eb0da413032b98fe.d: crates/simtime/src/lib.rs crates/simtime/src/channel.rs crates/simtime/src/combinators.rs crates/simtime/src/executor.rs crates/simtime/src/join.rs crates/simtime/src/rng.rs crates/simtime/src/sleep.rs crates/simtime/src/sync.rs crates/simtime/src/time.rs crates/simtime/src/trace.rs

/root/repo/target/debug/deps/libkaas_simtime-eb0da413032b98fe.rlib: crates/simtime/src/lib.rs crates/simtime/src/channel.rs crates/simtime/src/combinators.rs crates/simtime/src/executor.rs crates/simtime/src/join.rs crates/simtime/src/rng.rs crates/simtime/src/sleep.rs crates/simtime/src/sync.rs crates/simtime/src/time.rs crates/simtime/src/trace.rs

/root/repo/target/debug/deps/libkaas_simtime-eb0da413032b98fe.rmeta: crates/simtime/src/lib.rs crates/simtime/src/channel.rs crates/simtime/src/combinators.rs crates/simtime/src/executor.rs crates/simtime/src/join.rs crates/simtime/src/rng.rs crates/simtime/src/sleep.rs crates/simtime/src/sync.rs crates/simtime/src/time.rs crates/simtime/src/trace.rs

crates/simtime/src/lib.rs:
crates/simtime/src/channel.rs:
crates/simtime/src/combinators.rs:
crates/simtime/src/executor.rs:
crates/simtime/src/join.rs:
crates/simtime/src/rng.rs:
crates/simtime/src/sleep.rs:
crates/simtime/src/sync.rs:
crates/simtime/src/time.rs:
crates/simtime/src/trace.rs:
