/root/repo/target/debug/deps/kaas-68bc08dc8734a8c2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libkaas-68bc08dc8734a8c2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
