/root/repo/target/debug/deps/kaas_net-7978fe03dd39e936.d: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/profile.rs crates/net/src/shm.rs crates/net/src/wire.rs

/root/repo/target/debug/deps/kaas_net-7978fe03dd39e936: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/profile.rs crates/net/src/shm.rs crates/net/src/wire.rs

crates/net/src/lib.rs:
crates/net/src/conn.rs:
crates/net/src/profile.rs:
crates/net/src/shm.rs:
crates/net/src/wire.rs:
