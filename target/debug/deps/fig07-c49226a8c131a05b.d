/root/repo/target/debug/deps/fig07-c49226a8c131a05b.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/fig07-c49226a8c131a05b: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
