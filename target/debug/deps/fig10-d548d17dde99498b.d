/root/repo/target/debug/deps/fig10-d548d17dde99498b.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-d548d17dde99498b: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
