/root/repo/target/debug/examples/image_pipeline-3866bb6ae1808c06.d: examples/image_pipeline.rs

/root/repo/target/debug/examples/image_pipeline-3866bb6ae1808c06: examples/image_pipeline.rs

examples/image_pipeline.rs:
