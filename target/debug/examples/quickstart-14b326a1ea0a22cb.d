/root/repo/target/debug/examples/quickstart-14b326a1ea0a22cb.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-14b326a1ea0a22cb: examples/quickstart.rs

examples/quickstart.rs:
