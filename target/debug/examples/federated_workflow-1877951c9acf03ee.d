/root/repo/target/debug/examples/federated_workflow-1877951c9acf03ee.d: examples/federated_workflow.rs

/root/repo/target/debug/examples/federated_workflow-1877951c9acf03ee: examples/federated_workflow.rs

examples/federated_workflow.rs:
