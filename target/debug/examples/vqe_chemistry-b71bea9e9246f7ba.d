/root/repo/target/debug/examples/vqe_chemistry-b71bea9e9246f7ba.d: examples/vqe_chemistry.rs

/root/repo/target/debug/examples/vqe_chemistry-b71bea9e9246f7ba: examples/vqe_chemistry.rs

examples/vqe_chemistry.rs:
