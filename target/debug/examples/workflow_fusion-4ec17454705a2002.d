/root/repo/target/debug/examples/workflow_fusion-4ec17454705a2002.d: examples/workflow_fusion.rs

/root/repo/target/debug/examples/workflow_fusion-4ec17454705a2002: examples/workflow_fusion.rs

examples/workflow_fusion.rs:
