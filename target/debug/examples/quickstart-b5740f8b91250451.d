/root/repo/target/debug/examples/quickstart-b5740f8b91250451.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b5740f8b91250451: examples/quickstart.rs

examples/quickstart.rs:
