/root/repo/target/debug/examples/vqe_chemistry-6f6ddaefc71ac41b.d: examples/vqe_chemistry.rs Cargo.toml

/root/repo/target/debug/examples/libvqe_chemistry-6f6ddaefc71ac41b.rmeta: examples/vqe_chemistry.rs Cargo.toml

examples/vqe_chemistry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
