/root/repo/target/debug/examples/image_pipeline-3321aa40c518f5f3.d: examples/image_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libimage_pipeline-3321aa40c518f5f3.rmeta: examples/image_pipeline.rs Cargo.toml

examples/image_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
