/root/repo/target/debug/examples/remote_offload-1c95dd92d26d064e.d: examples/remote_offload.rs

/root/repo/target/debug/examples/remote_offload-1c95dd92d26d064e: examples/remote_offload.rs

examples/remote_offload.rs:
