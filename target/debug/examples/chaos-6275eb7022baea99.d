/root/repo/target/debug/examples/chaos-6275eb7022baea99.d: examples/chaos.rs Cargo.toml

/root/repo/target/debug/examples/libchaos-6275eb7022baea99.rmeta: examples/chaos.rs Cargo.toml

examples/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
