/root/repo/target/debug/examples/workflow_fusion-12ccd847766c9a39.d: examples/workflow_fusion.rs Cargo.toml

/root/repo/target/debug/examples/libworkflow_fusion-12ccd847766c9a39.rmeta: examples/workflow_fusion.rs Cargo.toml

examples/workflow_fusion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
