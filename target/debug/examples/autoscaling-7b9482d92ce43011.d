/root/repo/target/debug/examples/autoscaling-7b9482d92ce43011.d: examples/autoscaling.rs

/root/repo/target/debug/examples/autoscaling-7b9482d92ce43011: examples/autoscaling.rs

examples/autoscaling.rs:
