/root/repo/target/debug/examples/remote_offload-e1ef95d09245fbff.d: examples/remote_offload.rs Cargo.toml

/root/repo/target/debug/examples/libremote_offload-e1ef95d09245fbff.rmeta: examples/remote_offload.rs Cargo.toml

examples/remote_offload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
