/root/repo/target/debug/examples/chaos-d6dc0916627281a0.d: examples/chaos.rs

/root/repo/target/debug/examples/chaos-d6dc0916627281a0: examples/chaos.rs

examples/chaos.rs:
