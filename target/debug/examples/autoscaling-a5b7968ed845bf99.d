/root/repo/target/debug/examples/autoscaling-a5b7968ed845bf99.d: examples/autoscaling.rs Cargo.toml

/root/repo/target/debug/examples/libautoscaling-a5b7968ed845bf99.rmeta: examples/autoscaling.rs Cargo.toml

examples/autoscaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
