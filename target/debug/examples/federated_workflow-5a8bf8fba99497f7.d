/root/repo/target/debug/examples/federated_workflow-5a8bf8fba99497f7.d: examples/federated_workflow.rs Cargo.toml

/root/repo/target/debug/examples/libfederated_workflow-5a8bf8fba99497f7.rmeta: examples/federated_workflow.rs Cargo.toml

examples/federated_workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
