/root/repo/target/release/examples/vqe_chemistry-470bf3830286cb95.d: examples/vqe_chemistry.rs

/root/repo/target/release/examples/vqe_chemistry-470bf3830286cb95: examples/vqe_chemistry.rs

examples/vqe_chemistry.rs:
