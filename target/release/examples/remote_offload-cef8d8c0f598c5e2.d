/root/repo/target/release/examples/remote_offload-cef8d8c0f598c5e2.d: examples/remote_offload.rs

/root/repo/target/release/examples/remote_offload-cef8d8c0f598c5e2: examples/remote_offload.rs

examples/remote_offload.rs:
