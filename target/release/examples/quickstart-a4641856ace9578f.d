/root/repo/target/release/examples/quickstart-a4641856ace9578f.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-a4641856ace9578f.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
