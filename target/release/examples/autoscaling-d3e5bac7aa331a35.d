/root/repo/target/release/examples/autoscaling-d3e5bac7aa331a35.d: examples/autoscaling.rs

/root/repo/target/release/examples/autoscaling-d3e5bac7aa331a35: examples/autoscaling.rs

examples/autoscaling.rs:
