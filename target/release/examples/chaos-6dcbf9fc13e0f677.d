/root/repo/target/release/examples/chaos-6dcbf9fc13e0f677.d: examples/chaos.rs

/root/repo/target/release/examples/chaos-6dcbf9fc13e0f677: examples/chaos.rs

examples/chaos.rs:
