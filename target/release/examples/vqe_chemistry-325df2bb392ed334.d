/root/repo/target/release/examples/vqe_chemistry-325df2bb392ed334.d: examples/vqe_chemistry.rs Cargo.toml

/root/repo/target/release/examples/libvqe_chemistry-325df2bb392ed334.rmeta: examples/vqe_chemistry.rs Cargo.toml

examples/vqe_chemistry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
