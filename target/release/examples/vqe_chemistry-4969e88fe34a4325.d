/root/repo/target/release/examples/vqe_chemistry-4969e88fe34a4325.d: examples/vqe_chemistry.rs Cargo.toml

/root/repo/target/release/examples/libvqe_chemistry-4969e88fe34a4325.rmeta: examples/vqe_chemistry.rs Cargo.toml

examples/vqe_chemistry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
