/root/repo/target/release/examples/autoscaling-82493012c08aa70e.d: examples/autoscaling.rs Cargo.toml

/root/repo/target/release/examples/libautoscaling-82493012c08aa70e.rmeta: examples/autoscaling.rs Cargo.toml

examples/autoscaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
