/root/repo/target/release/examples/workflow_fusion-d1cc5f32b315fcc5.d: examples/workflow_fusion.rs

/root/repo/target/release/examples/workflow_fusion-d1cc5f32b315fcc5: examples/workflow_fusion.rs

examples/workflow_fusion.rs:
