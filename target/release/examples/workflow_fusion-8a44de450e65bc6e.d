/root/repo/target/release/examples/workflow_fusion-8a44de450e65bc6e.d: examples/workflow_fusion.rs

/root/repo/target/release/examples/workflow_fusion-8a44de450e65bc6e: examples/workflow_fusion.rs

examples/workflow_fusion.rs:
