/root/repo/target/release/examples/workflow_fusion-47f27cff4cd26e4d.d: examples/workflow_fusion.rs Cargo.toml

/root/repo/target/release/examples/libworkflow_fusion-47f27cff4cd26e4d.rmeta: examples/workflow_fusion.rs Cargo.toml

examples/workflow_fusion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
