/root/repo/target/release/examples/chaos-87d94ef5e5f1efb6.d: examples/chaos.rs Cargo.toml

/root/repo/target/release/examples/libchaos-87d94ef5e5f1efb6.rmeta: examples/chaos.rs Cargo.toml

examples/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
