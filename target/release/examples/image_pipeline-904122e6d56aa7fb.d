/root/repo/target/release/examples/image_pipeline-904122e6d56aa7fb.d: examples/image_pipeline.rs Cargo.toml

/root/repo/target/release/examples/libimage_pipeline-904122e6d56aa7fb.rmeta: examples/image_pipeline.rs Cargo.toml

examples/image_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
