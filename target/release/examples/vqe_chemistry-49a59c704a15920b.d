/root/repo/target/release/examples/vqe_chemistry-49a59c704a15920b.d: examples/vqe_chemistry.rs

/root/repo/target/release/examples/vqe_chemistry-49a59c704a15920b: examples/vqe_chemistry.rs

examples/vqe_chemistry.rs:
