/root/repo/target/release/examples/image_pipeline-36025a951a74b264.d: examples/image_pipeline.rs

/root/repo/target/release/examples/image_pipeline-36025a951a74b264: examples/image_pipeline.rs

examples/image_pipeline.rs:
