/root/repo/target/release/examples/chaos-774ecdfa71bbda1b.d: examples/chaos.rs

/root/repo/target/release/examples/chaos-774ecdfa71bbda1b: examples/chaos.rs

examples/chaos.rs:
