/root/repo/target/release/examples/remote_offload-e23d983884459b3d.d: examples/remote_offload.rs

/root/repo/target/release/examples/remote_offload-e23d983884459b3d: examples/remote_offload.rs

examples/remote_offload.rs:
