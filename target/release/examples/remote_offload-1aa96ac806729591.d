/root/repo/target/release/examples/remote_offload-1aa96ac806729591.d: examples/remote_offload.rs Cargo.toml

/root/repo/target/release/examples/libremote_offload-1aa96ac806729591.rmeta: examples/remote_offload.rs Cargo.toml

examples/remote_offload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
