/root/repo/target/release/examples/autoscaling-2f4ab7dace603683.d: examples/autoscaling.rs

/root/repo/target/release/examples/autoscaling-2f4ab7dace603683: examples/autoscaling.rs

examples/autoscaling.rs:
