/root/repo/target/release/examples/vqe_chemistry-438e0e8c29bb3a07.d: examples/vqe_chemistry.rs Cargo.toml

/root/repo/target/release/examples/libvqe_chemistry-438e0e8c29bb3a07.rmeta: examples/vqe_chemistry.rs Cargo.toml

examples/vqe_chemistry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
