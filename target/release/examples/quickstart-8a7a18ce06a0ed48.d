/root/repo/target/release/examples/quickstart-8a7a18ce06a0ed48.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8a7a18ce06a0ed48: examples/quickstart.rs

examples/quickstart.rs:
