/root/repo/target/release/examples/remote_offload-2bc2d20e92f2aa59.d: examples/remote_offload.rs Cargo.toml

/root/repo/target/release/examples/libremote_offload-2bc2d20e92f2aa59.rmeta: examples/remote_offload.rs Cargo.toml

examples/remote_offload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
