/root/repo/target/release/examples/federated_workflow-8cef4b4456f6429d.d: examples/federated_workflow.rs Cargo.toml

/root/repo/target/release/examples/libfederated_workflow-8cef4b4456f6429d.rmeta: examples/federated_workflow.rs Cargo.toml

examples/federated_workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
