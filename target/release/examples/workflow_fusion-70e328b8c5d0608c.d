/root/repo/target/release/examples/workflow_fusion-70e328b8c5d0608c.d: examples/workflow_fusion.rs Cargo.toml

/root/repo/target/release/examples/libworkflow_fusion-70e328b8c5d0608c.rmeta: examples/workflow_fusion.rs Cargo.toml

examples/workflow_fusion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
