/root/repo/target/release/examples/remote_offload-da4b03a83b6a7389.d: examples/remote_offload.rs

/root/repo/target/release/examples/remote_offload-da4b03a83b6a7389: examples/remote_offload.rs

examples/remote_offload.rs:
