/root/repo/target/release/examples/vqe_chemistry-4ba8995a12366525.d: examples/vqe_chemistry.rs

/root/repo/target/release/examples/vqe_chemistry-4ba8995a12366525: examples/vqe_chemistry.rs

examples/vqe_chemistry.rs:
