/root/repo/target/release/examples/autoscaling-4e7d557c3eee9c83.d: examples/autoscaling.rs Cargo.toml

/root/repo/target/release/examples/libautoscaling-4e7d557c3eee9c83.rmeta: examples/autoscaling.rs Cargo.toml

examples/autoscaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
