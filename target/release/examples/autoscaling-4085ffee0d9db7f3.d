/root/repo/target/release/examples/autoscaling-4085ffee0d9db7f3.d: examples/autoscaling.rs

/root/repo/target/release/examples/autoscaling-4085ffee0d9db7f3: examples/autoscaling.rs

examples/autoscaling.rs:
