/root/repo/target/release/examples/federated_workflow-049e08d48dcec689.d: examples/federated_workflow.rs

/root/repo/target/release/examples/federated_workflow-049e08d48dcec689: examples/federated_workflow.rs

examples/federated_workflow.rs:
