/root/repo/target/release/examples/chaos-deeb3a3cc9f9a9d8.d: examples/chaos.rs Cargo.toml

/root/repo/target/release/examples/libchaos-deeb3a3cc9f9a9d8.rmeta: examples/chaos.rs Cargo.toml

examples/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
