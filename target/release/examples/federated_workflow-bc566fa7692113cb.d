/root/repo/target/release/examples/federated_workflow-bc566fa7692113cb.d: examples/federated_workflow.rs Cargo.toml

/root/repo/target/release/examples/libfederated_workflow-bc566fa7692113cb.rmeta: examples/federated_workflow.rs Cargo.toml

examples/federated_workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
