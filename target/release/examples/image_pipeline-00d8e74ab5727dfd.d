/root/repo/target/release/examples/image_pipeline-00d8e74ab5727dfd.d: examples/image_pipeline.rs

/root/repo/target/release/examples/image_pipeline-00d8e74ab5727dfd: examples/image_pipeline.rs

examples/image_pipeline.rs:
