/root/repo/target/release/examples/chaos-de21b81a34cd75bc.d: examples/chaos.rs

/root/repo/target/release/examples/chaos-de21b81a34cd75bc: examples/chaos.rs

examples/chaos.rs:
