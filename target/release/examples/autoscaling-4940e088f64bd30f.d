/root/repo/target/release/examples/autoscaling-4940e088f64bd30f.d: examples/autoscaling.rs

/root/repo/target/release/examples/autoscaling-4940e088f64bd30f: examples/autoscaling.rs

examples/autoscaling.rs:
