/root/repo/target/release/examples/workflow_fusion-d53939af424dd755.d: examples/workflow_fusion.rs

/root/repo/target/release/examples/workflow_fusion-d53939af424dd755: examples/workflow_fusion.rs

examples/workflow_fusion.rs:
