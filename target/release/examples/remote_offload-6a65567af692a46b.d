/root/repo/target/release/examples/remote_offload-6a65567af692a46b.d: examples/remote_offload.rs

/root/repo/target/release/examples/remote_offload-6a65567af692a46b: examples/remote_offload.rs

examples/remote_offload.rs:
