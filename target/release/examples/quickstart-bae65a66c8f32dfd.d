/root/repo/target/release/examples/quickstart-bae65a66c8f32dfd.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-bae65a66c8f32dfd.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
