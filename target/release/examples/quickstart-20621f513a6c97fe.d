/root/repo/target/release/examples/quickstart-20621f513a6c97fe.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-20621f513a6c97fe: examples/quickstart.rs

examples/quickstart.rs:
