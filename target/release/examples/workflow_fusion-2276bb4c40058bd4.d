/root/repo/target/release/examples/workflow_fusion-2276bb4c40058bd4.d: examples/workflow_fusion.rs Cargo.toml

/root/repo/target/release/examples/libworkflow_fusion-2276bb4c40058bd4.rmeta: examples/workflow_fusion.rs Cargo.toml

examples/workflow_fusion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
