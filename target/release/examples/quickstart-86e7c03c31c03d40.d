/root/repo/target/release/examples/quickstart-86e7c03c31c03d40.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-86e7c03c31c03d40.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
