/root/repo/target/release/examples/quickstart-e67f06aa4d9b6848.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-e67f06aa4d9b6848: examples/quickstart.rs

examples/quickstart.rs:
