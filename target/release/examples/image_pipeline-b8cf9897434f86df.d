/root/repo/target/release/examples/image_pipeline-b8cf9897434f86df.d: examples/image_pipeline.rs

/root/repo/target/release/examples/image_pipeline-b8cf9897434f86df: examples/image_pipeline.rs

examples/image_pipeline.rs:
