/root/repo/target/release/examples/autoscaling-2d56a5bcf8f12d99.d: examples/autoscaling.rs Cargo.toml

/root/repo/target/release/examples/libautoscaling-2d56a5bcf8f12d99.rmeta: examples/autoscaling.rs Cargo.toml

examples/autoscaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
