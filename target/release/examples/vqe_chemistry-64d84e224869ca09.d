/root/repo/target/release/examples/vqe_chemistry-64d84e224869ca09.d: examples/vqe_chemistry.rs

/root/repo/target/release/examples/vqe_chemistry-64d84e224869ca09: examples/vqe_chemistry.rs

examples/vqe_chemistry.rs:
