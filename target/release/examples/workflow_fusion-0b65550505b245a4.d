/root/repo/target/release/examples/workflow_fusion-0b65550505b245a4.d: examples/workflow_fusion.rs

/root/repo/target/release/examples/workflow_fusion-0b65550505b245a4: examples/workflow_fusion.rs

examples/workflow_fusion.rs:
