/root/repo/target/release/examples/federated_workflow-11d9e9f0217a7812.d: examples/federated_workflow.rs

/root/repo/target/release/examples/federated_workflow-11d9e9f0217a7812: examples/federated_workflow.rs

examples/federated_workflow.rs:
