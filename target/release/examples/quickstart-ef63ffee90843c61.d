/root/repo/target/release/examples/quickstart-ef63ffee90843c61.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ef63ffee90843c61: examples/quickstart.rs

examples/quickstart.rs:
