/root/repo/target/release/examples/image_pipeline-ee7c757eef680fa0.d: examples/image_pipeline.rs Cargo.toml

/root/repo/target/release/examples/libimage_pipeline-ee7c757eef680fa0.rmeta: examples/image_pipeline.rs Cargo.toml

examples/image_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
