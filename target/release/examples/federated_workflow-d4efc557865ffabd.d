/root/repo/target/release/examples/federated_workflow-d4efc557865ffabd.d: examples/federated_workflow.rs

/root/repo/target/release/examples/federated_workflow-d4efc557865ffabd: examples/federated_workflow.rs

examples/federated_workflow.rs:
