/root/repo/target/release/examples/federated_workflow-8eeea41cd7ae93a4.d: examples/federated_workflow.rs

/root/repo/target/release/examples/federated_workflow-8eeea41cd7ae93a4: examples/federated_workflow.rs

examples/federated_workflow.rs:
