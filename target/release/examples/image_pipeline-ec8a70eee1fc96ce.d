/root/repo/target/release/examples/image_pipeline-ec8a70eee1fc96ce.d: examples/image_pipeline.rs

/root/repo/target/release/examples/image_pipeline-ec8a70eee1fc96ce: examples/image_pipeline.rs

examples/image_pipeline.rs:
