/root/repo/target/release/examples/autoscaling-cd5657c8a150ac6b.d: examples/autoscaling.rs Cargo.toml

/root/repo/target/release/examples/libautoscaling-cd5657c8a150ac6b.rmeta: examples/autoscaling.rs Cargo.toml

examples/autoscaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
