/root/repo/target/release/examples/federated_workflow-c4caca137b711ef4.d: examples/federated_workflow.rs Cargo.toml

/root/repo/target/release/examples/libfederated_workflow-c4caca137b711ef4.rmeta: examples/federated_workflow.rs Cargo.toml

examples/federated_workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
