/root/repo/target/release/deps/paper_claims-92fd258c49404990.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/release/deps/libpaper_claims-92fd258c49404990.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
