/root/repo/target/release/deps/extensions-cbb3cbe64e371261.d: tests/extensions.rs Cargo.toml

/root/repo/target/release/deps/libextensions-cbb3cbe64e371261.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
