/root/repo/target/release/deps/fig07-0c861db198d35139.d: crates/bench/src/bin/fig07.rs

/root/repo/target/release/deps/fig07-0c861db198d35139: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
