/root/repo/target/release/deps/kaas-06f3097f74d27363.d: crates/bench/benches/kaas.rs Cargo.toml

/root/repo/target/release/deps/libkaas-06f3097f74d27363.rmeta: crates/bench/benches/kaas.rs Cargo.toml

crates/bench/benches/kaas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
