/root/repo/target/release/deps/federation-b76c6d42d90ad332.d: tests/federation.rs Cargo.toml

/root/repo/target/release/deps/libfederation-b76c6d42d90ad332.rmeta: tests/federation.rs Cargo.toml

tests/federation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
