/root/repo/target/release/deps/kaas_net-6700bdf28d3e43a5.d: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/profile.rs crates/net/src/shm.rs crates/net/src/wire.rs

/root/repo/target/release/deps/libkaas_net-6700bdf28d3e43a5.rlib: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/profile.rs crates/net/src/shm.rs crates/net/src/wire.rs

/root/repo/target/release/deps/libkaas_net-6700bdf28d3e43a5.rmeta: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/profile.rs crates/net/src/shm.rs crates/net/src/wire.rs

crates/net/src/lib.rs:
crates/net/src/conn.rs:
crates/net/src/profile.rs:
crates/net/src/shm.rs:
crates/net/src/wire.rs:
