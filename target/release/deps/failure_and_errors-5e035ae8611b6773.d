/root/repo/target/release/deps/failure_and_errors-5e035ae8611b6773.d: tests/failure_and_errors.rs Cargo.toml

/root/repo/target/release/deps/libfailure_and_errors-5e035ae8611b6773.rmeta: tests/failure_and_errors.rs Cargo.toml

tests/failure_and_errors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
