/root/repo/target/release/deps/fig10-86bdc3a6f00d3816.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-86bdc3a6f00d3816: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
