/root/repo/target/release/deps/fig06-af77b9c24f5b7956.d: crates/bench/src/bin/fig06.rs

/root/repo/target/release/deps/fig06-af77b9c24f5b7956: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
