/root/repo/target/release/deps/fig06-6dc7ccde0d4a4e37.d: crates/bench/src/bin/fig06.rs

/root/repo/target/release/deps/fig06-6dc7ccde0d4a4e37: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
