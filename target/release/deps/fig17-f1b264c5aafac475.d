/root/repo/target/release/deps/fig17-f1b264c5aafac475.d: crates/bench/src/bin/fig17.rs

/root/repo/target/release/deps/fig17-f1b264c5aafac475: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
