/root/repo/target/release/deps/fig14-4e5ca88b9b285814.d: crates/bench/src/bin/fig14.rs Cargo.toml

/root/repo/target/release/deps/libfig14-4e5ca88b9b285814.rmeta: crates/bench/src/bin/fig14.rs Cargo.toml

crates/bench/src/bin/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
