/root/repo/target/release/deps/trace-e89c115a75231a47.d: crates/bench/src/bin/trace.rs Cargo.toml

/root/repo/target/release/deps/libtrace-e89c115a75231a47.rmeta: crates/bench/src/bin/trace.rs Cargo.toml

crates/bench/src/bin/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
