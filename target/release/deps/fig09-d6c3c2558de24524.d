/root/repo/target/release/deps/fig09-d6c3c2558de24524.d: crates/bench/src/bin/fig09.rs Cargo.toml

/root/repo/target/release/deps/libfig09-d6c3c2558de24524.rmeta: crates/bench/src/bin/fig09.rs Cargo.toml

crates/bench/src/bin/fig09.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
