/root/repo/target/release/deps/fig13-07d36cfffaa9be73.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-07d36cfffaa9be73: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
