/root/repo/target/release/deps/fig15-1285c8d49008ad5a.d: crates/bench/src/bin/fig15.rs

/root/repo/target/release/deps/fig15-1285c8d49008ad5a: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
