/root/repo/target/release/deps/paper_claims-b95360a80c391b4e.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-b95360a80c391b4e: tests/paper_claims.rs

tests/paper_claims.rs:
