/root/repo/target/release/deps/fig16-f433b080eb99a11d.d: crates/bench/src/bin/fig16.rs

/root/repo/target/release/deps/fig16-f433b080eb99a11d: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
