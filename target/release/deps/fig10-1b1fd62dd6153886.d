/root/repo/target/release/deps/fig10-1b1fd62dd6153886.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-1b1fd62dd6153886: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
