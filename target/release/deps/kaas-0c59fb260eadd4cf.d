/root/repo/target/release/deps/kaas-0c59fb260eadd4cf.d: crates/bench/benches/kaas.rs

/root/repo/target/release/deps/kaas-0c59fb260eadd4cf: crates/bench/benches/kaas.rs

crates/bench/benches/kaas.rs:
