/root/repo/target/release/deps/fig10-8bf03e9b7877cf96.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/release/deps/libfig10-8bf03e9b7877cf96.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
