/root/repo/target/release/deps/fig11-0332359044656545.d: crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/release/deps/libfig11-0332359044656545.rmeta: crates/bench/src/bin/fig11.rs Cargo.toml

crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
