/root/repo/target/release/deps/paper_claims-1c3f902f9d9108c7.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/release/deps/libpaper_claims-1c3f902f9d9108c7.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
