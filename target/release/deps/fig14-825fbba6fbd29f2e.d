/root/repo/target/release/deps/fig14-825fbba6fbd29f2e.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-825fbba6fbd29f2e: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
