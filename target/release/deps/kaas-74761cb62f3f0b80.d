/root/repo/target/release/deps/kaas-74761cb62f3f0b80.d: src/lib.rs

/root/repo/target/release/deps/libkaas-74761cb62f3f0b80.rlib: src/lib.rs

/root/repo/target/release/deps/libkaas-74761cb62f3f0b80.rmeta: src/lib.rs

src/lib.rs:
