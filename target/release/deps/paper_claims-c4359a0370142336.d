/root/repo/target/release/deps/paper_claims-c4359a0370142336.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-c4359a0370142336: tests/paper_claims.rs

tests/paper_claims.rs:
