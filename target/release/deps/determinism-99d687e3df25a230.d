/root/repo/target/release/deps/determinism-99d687e3df25a230.d: tests/determinism.rs Cargo.toml

/root/repo/target/release/deps/libdeterminism-99d687e3df25a230.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
