/root/repo/target/release/deps/fig16-9e0ded8183b81125.d: crates/bench/src/bin/fig16.rs

/root/repo/target/release/deps/fig16-9e0ded8183b81125: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
