/root/repo/target/release/deps/proptests-a53e0dd0cae88bd1.d: crates/kernels/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-a53e0dd0cae88bd1.rmeta: crates/kernels/tests/proptests.rs Cargo.toml

crates/kernels/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
