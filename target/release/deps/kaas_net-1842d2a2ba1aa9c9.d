/root/repo/target/release/deps/kaas_net-1842d2a2ba1aa9c9.d: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/profile.rs crates/net/src/shm.rs crates/net/src/wire.rs Cargo.toml

/root/repo/target/release/deps/libkaas_net-1842d2a2ba1aa9c9.rmeta: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/profile.rs crates/net/src/shm.rs crates/net/src/wire.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/conn.rs:
crates/net/src/profile.rs:
crates/net/src/shm.rs:
crates/net/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
