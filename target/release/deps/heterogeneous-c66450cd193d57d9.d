/root/repo/target/release/deps/heterogeneous-c66450cd193d57d9.d: tests/heterogeneous.rs Cargo.toml

/root/repo/target/release/deps/libheterogeneous-c66450cd193d57d9.rmeta: tests/heterogeneous.rs Cargo.toml

tests/heterogeneous.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
