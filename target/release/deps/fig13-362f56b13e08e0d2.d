/root/repo/target/release/deps/fig13-362f56b13e08e0d2.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-362f56b13e08e0d2: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
