/root/repo/target/release/deps/fig11-7b270518aae4ab45.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-7b270518aae4ab45: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
