/root/repo/target/release/deps/determinism-693bcb368d38ce9b.d: tests/determinism.rs Cargo.toml

/root/repo/target/release/deps/libdeterminism-693bcb368d38ce9b.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
