/root/repo/target/release/deps/fig14-b3f8fabb6b0fb8db.d: crates/bench/src/bin/fig14.rs Cargo.toml

/root/repo/target/release/deps/libfig14-b3f8fabb6b0fb8db.rmeta: crates/bench/src/bin/fig14.rs Cargo.toml

crates/bench/src/bin/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
