/root/repo/target/release/deps/fig12-300370be8bc2243f.d: crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/release/deps/libfig12-300370be8bc2243f.rmeta: crates/bench/src/bin/fig12.rs Cargo.toml

crates/bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
