/root/repo/target/release/deps/fig15-1d7b5d41df38e15c.d: crates/bench/src/bin/fig15.rs

/root/repo/target/release/deps/fig15-1d7b5d41df38e15c: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
