/root/repo/target/release/deps/heterogeneous-b52ee923ec2eb8cd.d: tests/heterogeneous.rs Cargo.toml

/root/repo/target/release/deps/libheterogeneous-b52ee923ec2eb8cd.rmeta: tests/heterogeneous.rs Cargo.toml

tests/heterogeneous.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
