/root/repo/target/release/deps/fig09-74f30d46878f3ee3.d: crates/bench/src/bin/fig09.rs

/root/repo/target/release/deps/fig09-74f30d46878f3ee3: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
