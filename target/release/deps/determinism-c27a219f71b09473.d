/root/repo/target/release/deps/determinism-c27a219f71b09473.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-c27a219f71b09473: tests/determinism.rs

tests/determinism.rs:
