/root/repo/target/release/deps/ablation-1ab3edda361e25a9.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-1ab3edda361e25a9: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
