/root/repo/target/release/deps/fig10-d9947a6c78404d97.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-d9947a6c78404d97: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
