/root/repo/target/release/deps/fig11-4984afc7b6191e55.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-4984afc7b6191e55: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
