/root/repo/target/release/deps/fig08-d0acfe397d815c47.d: crates/bench/src/bin/fig08.rs Cargo.toml

/root/repo/target/release/deps/libfig08-d0acfe397d815c47.rmeta: crates/bench/src/bin/fig08.rs Cargo.toml

crates/bench/src/bin/fig08.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
