/root/repo/target/release/deps/fig09-41ac7a9623101564.d: crates/bench/src/bin/fig09.rs Cargo.toml

/root/repo/target/release/deps/libfig09-41ac7a9623101564.rmeta: crates/bench/src/bin/fig09.rs Cargo.toml

crates/bench/src/bin/fig09.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
