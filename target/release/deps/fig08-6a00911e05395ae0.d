/root/repo/target/release/deps/fig08-6a00911e05395ae0.d: crates/bench/src/bin/fig08.rs Cargo.toml

/root/repo/target/release/deps/libfig08-6a00911e05395ae0.rmeta: crates/bench/src/bin/fig08.rs Cargo.toml

crates/bench/src/bin/fig08.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
