/root/repo/target/release/deps/fig11-0e55c41d1fc07692.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-0e55c41d1fc07692: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
