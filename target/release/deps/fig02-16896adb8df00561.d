/root/repo/target/release/deps/fig02-16896adb8df00561.d: crates/bench/src/bin/fig02.rs

/root/repo/target/release/deps/fig02-16896adb8df00561: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
