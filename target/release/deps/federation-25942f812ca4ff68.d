/root/repo/target/release/deps/federation-25942f812ca4ff68.d: tests/federation.rs Cargo.toml

/root/repo/target/release/deps/libfederation-25942f812ca4ff68.rmeta: tests/federation.rs Cargo.toml

tests/federation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
