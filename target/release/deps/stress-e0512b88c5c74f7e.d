/root/repo/target/release/deps/stress-e0512b88c5c74f7e.d: tests/stress.rs Cargo.toml

/root/repo/target/release/deps/libstress-e0512b88c5c74f7e.rmeta: tests/stress.rs Cargo.toml

tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
