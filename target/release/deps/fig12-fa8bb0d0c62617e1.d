/root/repo/target/release/deps/fig12-fa8bb0d0c62617e1.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-fa8bb0d0c62617e1: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
