/root/repo/target/release/deps/fig08-2bdc02cbc8a79449.d: crates/bench/src/bin/fig08.rs

/root/repo/target/release/deps/fig08-2bdc02cbc8a79449: crates/bench/src/bin/fig08.rs

crates/bench/src/bin/fig08.rs:
