/root/repo/target/release/deps/kaas_quantum-a63f64f12d985e73.d: crates/quantum/src/lib.rs crates/quantum/src/circuit.rs crates/quantum/src/complex.rs crates/quantum/src/estimator.rs crates/quantum/src/gate.rs crates/quantum/src/optimize.rs crates/quantum/src/pauli.rs crates/quantum/src/state.rs crates/quantum/src/transpile.rs crates/quantum/src/vqe.rs

/root/repo/target/release/deps/libkaas_quantum-a63f64f12d985e73.rlib: crates/quantum/src/lib.rs crates/quantum/src/circuit.rs crates/quantum/src/complex.rs crates/quantum/src/estimator.rs crates/quantum/src/gate.rs crates/quantum/src/optimize.rs crates/quantum/src/pauli.rs crates/quantum/src/state.rs crates/quantum/src/transpile.rs crates/quantum/src/vqe.rs

/root/repo/target/release/deps/libkaas_quantum-a63f64f12d985e73.rmeta: crates/quantum/src/lib.rs crates/quantum/src/circuit.rs crates/quantum/src/complex.rs crates/quantum/src/estimator.rs crates/quantum/src/gate.rs crates/quantum/src/optimize.rs crates/quantum/src/pauli.rs crates/quantum/src/state.rs crates/quantum/src/transpile.rs crates/quantum/src/vqe.rs

crates/quantum/src/lib.rs:
crates/quantum/src/circuit.rs:
crates/quantum/src/complex.rs:
crates/quantum/src/estimator.rs:
crates/quantum/src/gate.rs:
crates/quantum/src/optimize.rs:
crates/quantum/src/pauli.rs:
crates/quantum/src/state.rs:
crates/quantum/src/transpile.rs:
crates/quantum/src/vqe.rs:
