/root/repo/target/release/deps/fig17-460047b5b9f219f5.d: crates/bench/src/bin/fig17.rs

/root/repo/target/release/deps/fig17-460047b5b9f219f5: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
