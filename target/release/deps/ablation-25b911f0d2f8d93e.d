/root/repo/target/release/deps/ablation-25b911f0d2f8d93e.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-25b911f0d2f8d93e: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
