/root/repo/target/release/deps/trace-158d2d604b9fa5f4.d: crates/bench/src/bin/trace.rs Cargo.toml

/root/repo/target/release/deps/libtrace-158d2d604b9fa5f4.rmeta: crates/bench/src/bin/trace.rs Cargo.toml

crates/bench/src/bin/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
