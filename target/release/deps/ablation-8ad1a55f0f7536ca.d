/root/repo/target/release/deps/ablation-8ad1a55f0f7536ca.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-8ad1a55f0f7536ca: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
