/root/repo/target/release/deps/trace-17422a882b97d56b.d: crates/bench/src/bin/trace.rs

/root/repo/target/release/deps/trace-17422a882b97d56b: crates/bench/src/bin/trace.rs

crates/bench/src/bin/trace.rs:
