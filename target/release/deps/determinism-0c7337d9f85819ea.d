/root/repo/target/release/deps/determinism-0c7337d9f85819ea.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-0c7337d9f85819ea: tests/determinism.rs

tests/determinism.rs:
