/root/repo/target/release/deps/fig15-dc6c2936aa194887.d: crates/bench/src/bin/fig15.rs Cargo.toml

/root/repo/target/release/deps/libfig15-dc6c2936aa194887.rmeta: crates/bench/src/bin/fig15.rs Cargo.toml

crates/bench/src/bin/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
