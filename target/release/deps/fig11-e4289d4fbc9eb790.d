/root/repo/target/release/deps/fig11-e4289d4fbc9eb790.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-e4289d4fbc9eb790: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
