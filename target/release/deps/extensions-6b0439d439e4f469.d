/root/repo/target/release/deps/extensions-6b0439d439e4f469.d: tests/extensions.rs

/root/repo/target/release/deps/extensions-6b0439d439e4f469: tests/extensions.rs

tests/extensions.rs:
