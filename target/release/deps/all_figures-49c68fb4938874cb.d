/root/repo/target/release/deps/all_figures-49c68fb4938874cb.d: crates/bench/src/bin/all_figures.rs Cargo.toml

/root/repo/target/release/deps/liball_figures-49c68fb4938874cb.rmeta: crates/bench/src/bin/all_figures.rs Cargo.toml

crates/bench/src/bin/all_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
