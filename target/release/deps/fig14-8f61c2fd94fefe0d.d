/root/repo/target/release/deps/fig14-8f61c2fd94fefe0d.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-8f61c2fd94fefe0d: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
