/root/repo/target/release/deps/fig15-52b3066350ac703c.d: crates/bench/src/bin/fig15.rs

/root/repo/target/release/deps/fig15-52b3066350ac703c: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
