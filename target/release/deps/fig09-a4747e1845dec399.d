/root/repo/target/release/deps/fig09-a4747e1845dec399.d: crates/bench/src/bin/fig09.rs

/root/repo/target/release/deps/fig09-a4747e1845dec399: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
