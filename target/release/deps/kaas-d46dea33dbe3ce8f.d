/root/repo/target/release/deps/kaas-d46dea33dbe3ce8f.d: src/lib.rs

/root/repo/target/release/deps/libkaas-d46dea33dbe3ce8f.rlib: src/lib.rs

/root/repo/target/release/deps/libkaas-d46dea33dbe3ce8f.rmeta: src/lib.rs

src/lib.rs:
