/root/repo/target/release/deps/fig13-982cd887c04a601a.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-982cd887c04a601a: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
