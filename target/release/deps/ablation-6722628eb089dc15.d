/root/repo/target/release/deps/ablation-6722628eb089dc15.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-6722628eb089dc15: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
