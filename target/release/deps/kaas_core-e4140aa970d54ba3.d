/root/repo/target/release/deps/kaas_core-e4140aa970d54ba3.d: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/autoscaler.rs crates/core/src/baseline.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/dispatch.rs crates/core/src/fault.rs crates/core/src/federation.rs crates/core/src/fusion.rs crates/core/src/metrics.rs crates/core/src/metrics/histogram.rs crates/core/src/metrics/registry.rs crates/core/src/pool.rs crates/core/src/protocol.rs crates/core/src/registry.rs crates/core/src/resilience.rs crates/core/src/runner.rs crates/core/src/scheduler.rs crates/core/src/server.rs crates/core/src/trace.rs crates/core/src/workflow.rs

/root/repo/target/release/deps/libkaas_core-e4140aa970d54ba3.rlib: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/autoscaler.rs crates/core/src/baseline.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/dispatch.rs crates/core/src/fault.rs crates/core/src/federation.rs crates/core/src/fusion.rs crates/core/src/metrics.rs crates/core/src/metrics/histogram.rs crates/core/src/metrics/registry.rs crates/core/src/pool.rs crates/core/src/protocol.rs crates/core/src/registry.rs crates/core/src/resilience.rs crates/core/src/runner.rs crates/core/src/scheduler.rs crates/core/src/server.rs crates/core/src/trace.rs crates/core/src/workflow.rs

/root/repo/target/release/deps/libkaas_core-e4140aa970d54ba3.rmeta: crates/core/src/lib.rs crates/core/src/admission.rs crates/core/src/autoscaler.rs crates/core/src/baseline.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/dispatch.rs crates/core/src/fault.rs crates/core/src/federation.rs crates/core/src/fusion.rs crates/core/src/metrics.rs crates/core/src/metrics/histogram.rs crates/core/src/metrics/registry.rs crates/core/src/pool.rs crates/core/src/protocol.rs crates/core/src/registry.rs crates/core/src/resilience.rs crates/core/src/runner.rs crates/core/src/scheduler.rs crates/core/src/server.rs crates/core/src/trace.rs crates/core/src/workflow.rs

crates/core/src/lib.rs:
crates/core/src/admission.rs:
crates/core/src/autoscaler.rs:
crates/core/src/baseline.rs:
crates/core/src/client.rs:
crates/core/src/config.rs:
crates/core/src/dispatch.rs:
crates/core/src/fault.rs:
crates/core/src/federation.rs:
crates/core/src/fusion.rs:
crates/core/src/metrics.rs:
crates/core/src/metrics/histogram.rs:
crates/core/src/metrics/registry.rs:
crates/core/src/pool.rs:
crates/core/src/protocol.rs:
crates/core/src/registry.rs:
crates/core/src/resilience.rs:
crates/core/src/runner.rs:
crates/core/src/scheduler.rs:
crates/core/src/server.rs:
crates/core/src/trace.rs:
crates/core/src/workflow.rs:
