/root/repo/target/release/deps/ablation-714b51675c57e80f.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/release/deps/libablation-714b51675c57e80f.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
