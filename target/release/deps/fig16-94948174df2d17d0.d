/root/repo/target/release/deps/fig16-94948174df2d17d0.d: crates/bench/src/bin/fig16.rs

/root/repo/target/release/deps/fig16-94948174df2d17d0: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
