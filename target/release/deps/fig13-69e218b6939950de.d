/root/repo/target/release/deps/fig13-69e218b6939950de.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-69e218b6939950de: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
