/root/repo/target/release/deps/stress-928a2ad3417a46c2.d: tests/stress.rs Cargo.toml

/root/repo/target/release/deps/libstress-928a2ad3417a46c2.rmeta: tests/stress.rs Cargo.toml

tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
