/root/repo/target/release/deps/stress-08a192de36344ad0.d: tests/stress.rs

/root/repo/target/release/deps/stress-08a192de36344ad0: tests/stress.rs

tests/stress.rs:
