/root/repo/target/release/deps/fig08-78538666edd25a7d.d: crates/bench/src/bin/fig08.rs

/root/repo/target/release/deps/fig08-78538666edd25a7d: crates/bench/src/bin/fig08.rs

crates/bench/src/bin/fig08.rs:
