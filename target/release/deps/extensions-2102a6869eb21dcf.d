/root/repo/target/release/deps/extensions-2102a6869eb21dcf.d: tests/extensions.rs

/root/repo/target/release/deps/extensions-2102a6869eb21dcf: tests/extensions.rs

tests/extensions.rs:
