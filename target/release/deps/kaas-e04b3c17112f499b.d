/root/repo/target/release/deps/kaas-e04b3c17112f499b.d: src/lib.rs

/root/repo/target/release/deps/libkaas-e04b3c17112f499b.rlib: src/lib.rs

/root/repo/target/release/deps/libkaas-e04b3c17112f499b.rmeta: src/lib.rs

src/lib.rs:
