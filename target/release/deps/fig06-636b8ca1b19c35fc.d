/root/repo/target/release/deps/fig06-636b8ca1b19c35fc.d: crates/bench/src/bin/fig06.rs Cargo.toml

/root/repo/target/release/deps/libfig06-636b8ca1b19c35fc.rmeta: crates/bench/src/bin/fig06.rs Cargo.toml

crates/bench/src/bin/fig06.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
