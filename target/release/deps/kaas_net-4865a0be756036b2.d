/root/repo/target/release/deps/kaas_net-4865a0be756036b2.d: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/profile.rs crates/net/src/shm.rs crates/net/src/wire.rs

/root/repo/target/release/deps/kaas_net-4865a0be756036b2: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/profile.rs crates/net/src/shm.rs crates/net/src/wire.rs

crates/net/src/lib.rs:
crates/net/src/conn.rs:
crates/net/src/profile.rs:
crates/net/src/shm.rs:
crates/net/src/wire.rs:
