/root/repo/target/release/deps/paper_claims-b3212e6e3640995a.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-b3212e6e3640995a: tests/paper_claims.rs

tests/paper_claims.rs:
