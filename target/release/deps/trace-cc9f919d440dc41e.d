/root/repo/target/release/deps/trace-cc9f919d440dc41e.d: crates/bench/src/bin/trace.rs

/root/repo/target/release/deps/trace-cc9f919d440dc41e: crates/bench/src/bin/trace.rs

crates/bench/src/bin/trace.rs:
