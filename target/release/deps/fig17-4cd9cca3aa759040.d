/root/repo/target/release/deps/fig17-4cd9cca3aa759040.d: crates/bench/src/bin/fig17.rs

/root/repo/target/release/deps/fig17-4cd9cca3aa759040: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
