/root/repo/target/release/deps/failure_and_errors-60b5ba8b32f536f1.d: tests/failure_and_errors.rs

/root/repo/target/release/deps/failure_and_errors-60b5ba8b32f536f1: tests/failure_and_errors.rs

tests/failure_and_errors.rs:
