/root/repo/target/release/deps/fig14-381897cb566d5c38.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-381897cb566d5c38: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
