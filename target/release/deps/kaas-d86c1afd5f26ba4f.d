/root/repo/target/release/deps/kaas-d86c1afd5f26ba4f.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libkaas-d86c1afd5f26ba4f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
