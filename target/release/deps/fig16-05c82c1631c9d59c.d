/root/repo/target/release/deps/fig16-05c82c1631c9d59c.d: crates/bench/src/bin/fig16.rs

/root/repo/target/release/deps/fig16-05c82c1631c9d59c: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
