/root/repo/target/release/deps/fig07-0797873d6da83fc5.d: crates/bench/src/bin/fig07.rs

/root/repo/target/release/deps/fig07-0797873d6da83fc5: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
