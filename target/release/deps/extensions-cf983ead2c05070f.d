/root/repo/target/release/deps/extensions-cf983ead2c05070f.d: tests/extensions.rs

/root/repo/target/release/deps/extensions-cf983ead2c05070f: tests/extensions.rs

tests/extensions.rs:
