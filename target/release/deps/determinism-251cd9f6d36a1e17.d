/root/repo/target/release/deps/determinism-251cd9f6d36a1e17.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-251cd9f6d36a1e17: tests/determinism.rs

tests/determinism.rs:
