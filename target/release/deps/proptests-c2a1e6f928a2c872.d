/root/repo/target/release/deps/proptests-c2a1e6f928a2c872.d: crates/quantum/tests/proptests.rs

/root/repo/target/release/deps/proptests-c2a1e6f928a2c872: crates/quantum/tests/proptests.rs

crates/quantum/tests/proptests.rs:
