/root/repo/target/release/deps/tracing-b05d2a990c4ed647.d: tests/tracing.rs Cargo.toml

/root/repo/target/release/deps/libtracing-b05d2a990c4ed647.rmeta: tests/tracing.rs Cargo.toml

tests/tracing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
