/root/repo/target/release/deps/fig17-4a8d605022515884.d: crates/bench/src/bin/fig17.rs

/root/repo/target/release/deps/fig17-4a8d605022515884: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
