/root/repo/target/release/deps/fig09-e5ece4c15df97664.d: crates/bench/src/bin/fig09.rs

/root/repo/target/release/deps/fig09-e5ece4c15df97664: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
