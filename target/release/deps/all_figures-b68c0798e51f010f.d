/root/repo/target/release/deps/all_figures-b68c0798e51f010f.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-b68c0798e51f010f: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
