/root/repo/target/release/deps/all_figures-5ed47d2894388392.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-5ed47d2894388392: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
