/root/repo/target/release/deps/fig12-568748c1cd33e930.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-568748c1cd33e930: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
