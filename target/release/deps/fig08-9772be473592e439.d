/root/repo/target/release/deps/fig08-9772be473592e439.d: crates/bench/src/bin/fig08.rs Cargo.toml

/root/repo/target/release/deps/libfig08-9772be473592e439.rmeta: crates/bench/src/bin/fig08.rs Cargo.toml

crates/bench/src/bin/fig08.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
