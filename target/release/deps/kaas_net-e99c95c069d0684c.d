/root/repo/target/release/deps/kaas_net-e99c95c069d0684c.d: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/profile.rs crates/net/src/shm.rs crates/net/src/wire.rs

/root/repo/target/release/deps/libkaas_net-e99c95c069d0684c.rlib: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/profile.rs crates/net/src/shm.rs crates/net/src/wire.rs

/root/repo/target/release/deps/libkaas_net-e99c95c069d0684c.rmeta: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/profile.rs crates/net/src/shm.rs crates/net/src/wire.rs

crates/net/src/lib.rs:
crates/net/src/conn.rs:
crates/net/src/profile.rs:
crates/net/src/shm.rs:
crates/net/src/wire.rs:
