/root/repo/target/release/deps/fig08-39332118d7aa6025.d: crates/bench/src/bin/fig08.rs

/root/repo/target/release/deps/fig08-39332118d7aa6025: crates/bench/src/bin/fig08.rs

crates/bench/src/bin/fig08.rs:
