/root/repo/target/release/deps/kaas-ec430bc58ec352ee.d: src/lib.rs

/root/repo/target/release/deps/kaas-ec430bc58ec352ee: src/lib.rs

src/lib.rs:
