/root/repo/target/release/deps/fig02-4c34c296490bec2c.d: crates/bench/src/bin/fig02.rs

/root/repo/target/release/deps/fig02-4c34c296490bec2c: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
