/root/repo/target/release/deps/fig07-77f289a8a374fd43.d: crates/bench/src/bin/fig07.rs Cargo.toml

/root/repo/target/release/deps/libfig07-77f289a8a374fd43.rmeta: crates/bench/src/bin/fig07.rs Cargo.toml

crates/bench/src/bin/fig07.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
