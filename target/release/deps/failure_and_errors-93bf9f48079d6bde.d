/root/repo/target/release/deps/failure_and_errors-93bf9f48079d6bde.d: tests/failure_and_errors.rs Cargo.toml

/root/repo/target/release/deps/libfailure_and_errors-93bf9f48079d6bde.rmeta: tests/failure_and_errors.rs Cargo.toml

tests/failure_and_errors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
