/root/repo/target/release/deps/stress-f267eb4a92f62616.d: tests/stress.rs Cargo.toml

/root/repo/target/release/deps/libstress-f267eb4a92f62616.rmeta: tests/stress.rs Cargo.toml

tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
