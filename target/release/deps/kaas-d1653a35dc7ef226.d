/root/repo/target/release/deps/kaas-d1653a35dc7ef226.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libkaas-d1653a35dc7ef226.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
