/root/repo/target/release/deps/heterogeneous-cf46032d976b0d93.d: tests/heterogeneous.rs

/root/repo/target/release/deps/heterogeneous-cf46032d976b0d93: tests/heterogeneous.rs

tests/heterogeneous.rs:
