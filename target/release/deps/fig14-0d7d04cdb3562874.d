/root/repo/target/release/deps/fig14-0d7d04cdb3562874.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-0d7d04cdb3562874: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
