/root/repo/target/release/deps/kaas-1547b0396607b23b.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libkaas-1547b0396607b23b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
