/root/repo/target/release/deps/all_figures-4e75b09a4cd36ab9.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-4e75b09a4cd36ab9: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
