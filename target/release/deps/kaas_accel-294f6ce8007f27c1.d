/root/repo/target/release/deps/kaas_accel-294f6ce8007f27c1.d: crates/accel/src/lib.rs crates/accel/src/cpu.rs crates/accel/src/device.rs crates/accel/src/fpga.rs crates/accel/src/gpu.rs crates/accel/src/power.rs crates/accel/src/ps.rs crates/accel/src/qpu.rs crates/accel/src/tpu.rs crates/accel/src/work.rs crates/accel/src/xfer.rs Cargo.toml

/root/repo/target/release/deps/libkaas_accel-294f6ce8007f27c1.rmeta: crates/accel/src/lib.rs crates/accel/src/cpu.rs crates/accel/src/device.rs crates/accel/src/fpga.rs crates/accel/src/gpu.rs crates/accel/src/power.rs crates/accel/src/ps.rs crates/accel/src/qpu.rs crates/accel/src/tpu.rs crates/accel/src/work.rs crates/accel/src/xfer.rs Cargo.toml

crates/accel/src/lib.rs:
crates/accel/src/cpu.rs:
crates/accel/src/device.rs:
crates/accel/src/fpga.rs:
crates/accel/src/gpu.rs:
crates/accel/src/power.rs:
crates/accel/src/ps.rs:
crates/accel/src/qpu.rs:
crates/accel/src/tpu.rs:
crates/accel/src/work.rs:
crates/accel/src/xfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
