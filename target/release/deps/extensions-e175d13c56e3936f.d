/root/repo/target/release/deps/extensions-e175d13c56e3936f.d: tests/extensions.rs Cargo.toml

/root/repo/target/release/deps/libextensions-e175d13c56e3936f.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
