/root/repo/target/release/deps/fig13-1381957f674b5bc2.d: crates/bench/src/bin/fig13.rs Cargo.toml

/root/repo/target/release/deps/libfig13-1381957f674b5bc2.rmeta: crates/bench/src/bin/fig13.rs Cargo.toml

crates/bench/src/bin/fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
