/root/repo/target/release/deps/proptests-b77c9a7c02749d3b.d: crates/kernels/tests/proptests.rs

/root/repo/target/release/deps/proptests-b77c9a7c02749d3b: crates/kernels/tests/proptests.rs

crates/kernels/tests/proptests.rs:
