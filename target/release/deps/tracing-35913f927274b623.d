/root/repo/target/release/deps/tracing-35913f927274b623.d: tests/tracing.rs Cargo.toml

/root/repo/target/release/deps/libtracing-35913f927274b623.rmeta: tests/tracing.rs Cargo.toml

tests/tracing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
