/root/repo/target/release/deps/determinism-6517a360255aa5b7.d: tests/determinism.rs Cargo.toml

/root/repo/target/release/deps/libdeterminism-6517a360255aa5b7.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
