/root/repo/target/release/deps/federation-2a27622db2a10bc6.d: tests/federation.rs

/root/repo/target/release/deps/federation-2a27622db2a10bc6: tests/federation.rs

tests/federation.rs:
