/root/repo/target/release/deps/fig07-d5174667ce5bdc61.d: crates/bench/src/bin/fig07.rs

/root/repo/target/release/deps/fig07-d5174667ce5bdc61: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
