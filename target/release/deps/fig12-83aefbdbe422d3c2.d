/root/repo/target/release/deps/fig12-83aefbdbe422d3c2.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-83aefbdbe422d3c2: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
