/root/repo/target/release/deps/proptests-8d2b3c4dae84cf57.d: crates/accel/tests/proptests.rs

/root/repo/target/release/deps/proptests-8d2b3c4dae84cf57: crates/accel/tests/proptests.rs

crates/accel/tests/proptests.rs:
