/root/repo/target/release/deps/stress-5a55f913e23b314f.d: tests/stress.rs

/root/repo/target/release/deps/stress-5a55f913e23b314f: tests/stress.rs

tests/stress.rs:
