/root/repo/target/release/deps/stress-5ea18a4d93b42d8b.d: tests/stress.rs Cargo.toml

/root/repo/target/release/deps/libstress-5ea18a4d93b42d8b.rmeta: tests/stress.rs Cargo.toml

tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
