/root/repo/target/release/deps/fig13-f1e3463021ee5b4b.d: crates/bench/src/bin/fig13.rs Cargo.toml

/root/repo/target/release/deps/libfig13-f1e3463021ee5b4b.rmeta: crates/bench/src/bin/fig13.rs Cargo.toml

crates/bench/src/bin/fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
