/root/repo/target/release/deps/fig14-81694f287f94570c.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-81694f287f94570c: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
