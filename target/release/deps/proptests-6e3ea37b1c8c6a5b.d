/root/repo/target/release/deps/proptests-6e3ea37b1c8c6a5b.d: crates/simtime/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-6e3ea37b1c8c6a5b.rmeta: crates/simtime/tests/proptests.rs Cargo.toml

crates/simtime/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
