/root/repo/target/release/deps/fig12-f4ebd843154559d1.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-f4ebd843154559d1: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
