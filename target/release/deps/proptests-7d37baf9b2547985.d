/root/repo/target/release/deps/proptests-7d37baf9b2547985.d: crates/accel/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-7d37baf9b2547985.rmeta: crates/accel/tests/proptests.rs Cargo.toml

crates/accel/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
