/root/repo/target/release/deps/trace-2b3d2a5467966aa9.d: crates/bench/src/bin/trace.rs

/root/repo/target/release/deps/trace-2b3d2a5467966aa9: crates/bench/src/bin/trace.rs

crates/bench/src/bin/trace.rs:
