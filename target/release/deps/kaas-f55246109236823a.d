/root/repo/target/release/deps/kaas-f55246109236823a.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libkaas-f55246109236823a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
