/root/repo/target/release/deps/proptests-126d176ee16d24aa.d: crates/accel/tests/proptests.rs

/root/repo/target/release/deps/proptests-126d176ee16d24aa: crates/accel/tests/proptests.rs

crates/accel/tests/proptests.rs:
