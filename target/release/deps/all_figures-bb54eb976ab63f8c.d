/root/repo/target/release/deps/all_figures-bb54eb976ab63f8c.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-bb54eb976ab63f8c: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
