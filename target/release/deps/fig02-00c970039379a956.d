/root/repo/target/release/deps/fig02-00c970039379a956.d: crates/bench/src/bin/fig02.rs

/root/repo/target/release/deps/fig02-00c970039379a956: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
