/root/repo/target/release/deps/fig06-bd87f0eff98cb865.d: crates/bench/src/bin/fig06.rs

/root/repo/target/release/deps/fig06-bd87f0eff98cb865: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
