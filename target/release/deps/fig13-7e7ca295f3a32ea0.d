/root/repo/target/release/deps/fig13-7e7ca295f3a32ea0.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-7e7ca295f3a32ea0: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
