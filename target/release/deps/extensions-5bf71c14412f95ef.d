/root/repo/target/release/deps/extensions-5bf71c14412f95ef.d: tests/extensions.rs Cargo.toml

/root/repo/target/release/deps/libextensions-5bf71c14412f95ef.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
