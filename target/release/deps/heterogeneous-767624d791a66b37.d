/root/repo/target/release/deps/heterogeneous-767624d791a66b37.d: tests/heterogeneous.rs Cargo.toml

/root/repo/target/release/deps/libheterogeneous-767624d791a66b37.rmeta: tests/heterogeneous.rs Cargo.toml

tests/heterogeneous.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
