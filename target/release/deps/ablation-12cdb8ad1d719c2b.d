/root/repo/target/release/deps/ablation-12cdb8ad1d719c2b.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-12cdb8ad1d719c2b: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
