/root/repo/target/release/deps/fig08-3b8c7ca7c1de6f34.d: crates/bench/src/bin/fig08.rs

/root/repo/target/release/deps/fig08-3b8c7ca7c1de6f34: crates/bench/src/bin/fig08.rs

crates/bench/src/bin/fig08.rs:
