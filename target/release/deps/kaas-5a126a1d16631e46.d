/root/repo/target/release/deps/kaas-5a126a1d16631e46.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libkaas-5a126a1d16631e46.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
