/root/repo/target/release/deps/fig07-2a871c368d877819.d: crates/bench/src/bin/fig07.rs Cargo.toml

/root/repo/target/release/deps/libfig07-2a871c368d877819.rmeta: crates/bench/src/bin/fig07.rs Cargo.toml

crates/bench/src/bin/fig07.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
