/root/repo/target/release/deps/fig16-0811549bd4460c23.d: crates/bench/src/bin/fig16.rs

/root/repo/target/release/deps/fig16-0811549bd4460c23: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
