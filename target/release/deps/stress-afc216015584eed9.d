/root/repo/target/release/deps/stress-afc216015584eed9.d: tests/stress.rs

/root/repo/target/release/deps/stress-afc216015584eed9: tests/stress.rs

tests/stress.rs:
