/root/repo/target/release/deps/trace-f25a153438dabeca.d: crates/bench/src/bin/trace.rs

/root/repo/target/release/deps/trace-f25a153438dabeca: crates/bench/src/bin/trace.rs

crates/bench/src/bin/trace.rs:
