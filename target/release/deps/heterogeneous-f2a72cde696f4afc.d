/root/repo/target/release/deps/heterogeneous-f2a72cde696f4afc.d: tests/heterogeneous.rs

/root/repo/target/release/deps/heterogeneous-f2a72cde696f4afc: tests/heterogeneous.rs

tests/heterogeneous.rs:
