/root/repo/target/release/deps/fig11-4098641bb43c3f8a.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-4098641bb43c3f8a: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
