/root/repo/target/release/deps/determinism-c981fe881a5c32db.d: tests/determinism.rs Cargo.toml

/root/repo/target/release/deps/libdeterminism-c981fe881a5c32db.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
