/root/repo/target/release/deps/fig09-4bfd9651eb7c06aa.d: crates/bench/src/bin/fig09.rs

/root/repo/target/release/deps/fig09-4bfd9651eb7c06aa: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
