/root/repo/target/release/deps/fig17-fc010308b7b120cd.d: crates/bench/src/bin/fig17.rs Cargo.toml

/root/repo/target/release/deps/libfig17-fc010308b7b120cd.rmeta: crates/bench/src/bin/fig17.rs Cargo.toml

crates/bench/src/bin/fig17.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
