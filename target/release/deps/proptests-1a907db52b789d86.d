/root/repo/target/release/deps/proptests-1a907db52b789d86.d: crates/quantum/tests/proptests.rs

/root/repo/target/release/deps/proptests-1a907db52b789d86: crates/quantum/tests/proptests.rs

crates/quantum/tests/proptests.rs:
