/root/repo/target/release/deps/fig13-4032da0712193712.d: crates/bench/src/bin/fig13.rs Cargo.toml

/root/repo/target/release/deps/libfig13-4032da0712193712.rmeta: crates/bench/src/bin/fig13.rs Cargo.toml

crates/bench/src/bin/fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
