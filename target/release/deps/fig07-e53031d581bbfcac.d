/root/repo/target/release/deps/fig07-e53031d581bbfcac.d: crates/bench/src/bin/fig07.rs

/root/repo/target/release/deps/fig07-e53031d581bbfcac: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
