/root/repo/target/release/deps/heterogeneous-de36b56b18ca0a3d.d: tests/heterogeneous.rs Cargo.toml

/root/repo/target/release/deps/libheterogeneous-de36b56b18ca0a3d.rmeta: tests/heterogeneous.rs Cargo.toml

tests/heterogeneous.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
