/root/repo/target/release/deps/proptests-d403d165b7a3372b.d: crates/simtime/tests/proptests.rs

/root/repo/target/release/deps/proptests-d403d165b7a3372b: crates/simtime/tests/proptests.rs

crates/simtime/tests/proptests.rs:
