/root/repo/target/release/deps/fig02-48bdb17032aeaa01.d: crates/bench/src/bin/fig02.rs Cargo.toml

/root/repo/target/release/deps/libfig02-48bdb17032aeaa01.rmeta: crates/bench/src/bin/fig02.rs Cargo.toml

crates/bench/src/bin/fig02.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
