/root/repo/target/release/deps/federation-c86b7e98b90148d6.d: tests/federation.rs

/root/repo/target/release/deps/federation-c86b7e98b90148d6: tests/federation.rs

tests/federation.rs:
