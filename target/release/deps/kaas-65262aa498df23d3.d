/root/repo/target/release/deps/kaas-65262aa498df23d3.d: src/lib.rs

/root/repo/target/release/deps/kaas-65262aa498df23d3: src/lib.rs

src/lib.rs:
