/root/repo/target/release/deps/proptests-51310d58635502f2.d: crates/quantum/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-51310d58635502f2.rmeta: crates/quantum/tests/proptests.rs Cargo.toml

crates/quantum/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
