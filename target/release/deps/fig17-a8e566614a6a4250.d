/root/repo/target/release/deps/fig17-a8e566614a6a4250.d: crates/bench/src/bin/fig17.rs Cargo.toml

/root/repo/target/release/deps/libfig17-a8e566614a6a4250.rmeta: crates/bench/src/bin/fig17.rs Cargo.toml

crates/bench/src/bin/fig17.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
