/root/repo/target/release/deps/fig12-6532a98a1086f243.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-6532a98a1086f243: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
