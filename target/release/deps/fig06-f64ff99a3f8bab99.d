/root/repo/target/release/deps/fig06-f64ff99a3f8bab99.d: crates/bench/src/bin/fig06.rs

/root/repo/target/release/deps/fig06-f64ff99a3f8bab99: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
