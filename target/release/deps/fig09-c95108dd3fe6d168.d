/root/repo/target/release/deps/fig09-c95108dd3fe6d168.d: crates/bench/src/bin/fig09.rs Cargo.toml

/root/repo/target/release/deps/libfig09-c95108dd3fe6d168.rmeta: crates/bench/src/bin/fig09.rs Cargo.toml

crates/bench/src/bin/fig09.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
