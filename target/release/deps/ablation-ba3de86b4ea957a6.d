/root/repo/target/release/deps/ablation-ba3de86b4ea957a6.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/release/deps/libablation-ba3de86b4ea957a6.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
