/root/repo/target/release/deps/fig02-089d7ec0bb6defa9.d: crates/bench/src/bin/fig02.rs

/root/repo/target/release/deps/fig02-089d7ec0bb6defa9: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
