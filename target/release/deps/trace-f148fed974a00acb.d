/root/repo/target/release/deps/trace-f148fed974a00acb.d: crates/bench/src/bin/trace.rs

/root/repo/target/release/deps/trace-f148fed974a00acb: crates/bench/src/bin/trace.rs

crates/bench/src/bin/trace.rs:
