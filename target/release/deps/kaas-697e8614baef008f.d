/root/repo/target/release/deps/kaas-697e8614baef008f.d: src/lib.rs

/root/repo/target/release/deps/kaas-697e8614baef008f: src/lib.rs

src/lib.rs:
