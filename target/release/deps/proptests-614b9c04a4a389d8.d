/root/repo/target/release/deps/proptests-614b9c04a4a389d8.d: crates/kernels/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-614b9c04a4a389d8.rmeta: crates/kernels/tests/proptests.rs Cargo.toml

crates/kernels/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
