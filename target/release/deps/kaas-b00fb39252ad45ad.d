/root/repo/target/release/deps/kaas-b00fb39252ad45ad.d: src/lib.rs

/root/repo/target/release/deps/libkaas-b00fb39252ad45ad.rlib: src/lib.rs

/root/repo/target/release/deps/libkaas-b00fb39252ad45ad.rmeta: src/lib.rs

src/lib.rs:
