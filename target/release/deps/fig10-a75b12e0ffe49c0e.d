/root/repo/target/release/deps/fig10-a75b12e0ffe49c0e.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/release/deps/libfig10-a75b12e0ffe49c0e.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
