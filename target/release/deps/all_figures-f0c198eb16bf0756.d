/root/repo/target/release/deps/all_figures-f0c198eb16bf0756.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-f0c198eb16bf0756: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
