/root/repo/target/release/deps/fig10-3c64f5d54d8fd15b.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/release/deps/libfig10-3c64f5d54d8fd15b.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
