/root/repo/target/release/deps/fig10-62d54254dbf133ca.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-62d54254dbf133ca: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
