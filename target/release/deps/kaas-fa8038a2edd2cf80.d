/root/repo/target/release/deps/kaas-fa8038a2edd2cf80.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libkaas-fa8038a2edd2cf80.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
