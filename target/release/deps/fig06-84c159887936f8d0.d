/root/repo/target/release/deps/fig06-84c159887936f8d0.d: crates/bench/src/bin/fig06.rs Cargo.toml

/root/repo/target/release/deps/libfig06-84c159887936f8d0.rmeta: crates/bench/src/bin/fig06.rs Cargo.toml

crates/bench/src/bin/fig06.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
