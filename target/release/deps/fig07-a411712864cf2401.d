/root/repo/target/release/deps/fig07-a411712864cf2401.d: crates/bench/src/bin/fig07.rs

/root/repo/target/release/deps/fig07-a411712864cf2401: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
