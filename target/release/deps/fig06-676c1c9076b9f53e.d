/root/repo/target/release/deps/fig06-676c1c9076b9f53e.d: crates/bench/src/bin/fig06.rs

/root/repo/target/release/deps/fig06-676c1c9076b9f53e: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
