/root/repo/target/release/deps/trace-ae1d26bcbdcc6d64.d: crates/bench/src/bin/trace.rs Cargo.toml

/root/repo/target/release/deps/libtrace-ae1d26bcbdcc6d64.rmeta: crates/bench/src/bin/trace.rs Cargo.toml

crates/bench/src/bin/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
