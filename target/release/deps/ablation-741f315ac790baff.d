/root/repo/target/release/deps/ablation-741f315ac790baff.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/release/deps/libablation-741f315ac790baff.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
