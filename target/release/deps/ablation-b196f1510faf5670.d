/root/repo/target/release/deps/ablation-b196f1510faf5670.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/release/deps/libablation-b196f1510faf5670.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
