/root/repo/target/release/deps/fig11-6d7a5d480d6f119a.d: crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/release/deps/libfig11-6d7a5d480d6f119a.rmeta: crates/bench/src/bin/fig11.rs Cargo.toml

crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
