/root/repo/target/release/deps/fig17-bd7b1b148fcde4db.d: crates/bench/src/bin/fig17.rs

/root/repo/target/release/deps/fig17-bd7b1b148fcde4db: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
