/root/repo/target/release/deps/proptests-b624276767612622.d: crates/simtime/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-b624276767612622.rmeta: crates/simtime/tests/proptests.rs Cargo.toml

crates/simtime/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
