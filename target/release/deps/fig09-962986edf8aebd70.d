/root/repo/target/release/deps/fig09-962986edf8aebd70.d: crates/bench/src/bin/fig09.rs

/root/repo/target/release/deps/fig09-962986edf8aebd70: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
