/root/repo/target/release/deps/fig15-2f6620892822c29f.d: crates/bench/src/bin/fig15.rs

/root/repo/target/release/deps/fig15-2f6620892822c29f: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
