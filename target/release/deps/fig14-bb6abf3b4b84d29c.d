/root/repo/target/release/deps/fig14-bb6abf3b4b84d29c.d: crates/bench/src/bin/fig14.rs Cargo.toml

/root/repo/target/release/deps/libfig14-bb6abf3b4b84d29c.rmeta: crates/bench/src/bin/fig14.rs Cargo.toml

crates/bench/src/bin/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
