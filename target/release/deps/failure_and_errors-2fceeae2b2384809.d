/root/repo/target/release/deps/failure_and_errors-2fceeae2b2384809.d: tests/failure_and_errors.rs

/root/repo/target/release/deps/failure_and_errors-2fceeae2b2384809: tests/failure_and_errors.rs

tests/failure_and_errors.rs:
