/root/repo/target/release/deps/chaos-5efe717af079e19a.d: tests/chaos.rs

/root/repo/target/release/deps/chaos-5efe717af079e19a: tests/chaos.rs

tests/chaos.rs:
