/root/repo/target/release/deps/fig12-db32777073c58c2f.d: crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/release/deps/libfig12-db32777073c58c2f.rmeta: crates/bench/src/bin/fig12.rs Cargo.toml

crates/bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
