/root/repo/target/release/deps/chaos-628349d028cbced4.d: tests/chaos.rs Cargo.toml

/root/repo/target/release/deps/libchaos-628349d028cbced4.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
