/root/repo/target/release/deps/fig02-85f39e46f782a1d6.d: crates/bench/src/bin/fig02.rs Cargo.toml

/root/repo/target/release/deps/libfig02-85f39e46f782a1d6.rmeta: crates/bench/src/bin/fig02.rs Cargo.toml

crates/bench/src/bin/fig02.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
