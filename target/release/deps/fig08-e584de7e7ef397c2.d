/root/repo/target/release/deps/fig08-e584de7e7ef397c2.d: crates/bench/src/bin/fig08.rs

/root/repo/target/release/deps/fig08-e584de7e7ef397c2: crates/bench/src/bin/fig08.rs

crates/bench/src/bin/fig08.rs:
