/root/repo/target/release/deps/tracing-6bf20d4f397663fa.d: tests/tracing.rs

/root/repo/target/release/deps/tracing-6bf20d4f397663fa: tests/tracing.rs

tests/tracing.rs:
