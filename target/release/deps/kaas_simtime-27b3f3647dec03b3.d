/root/repo/target/release/deps/kaas_simtime-27b3f3647dec03b3.d: crates/simtime/src/lib.rs crates/simtime/src/channel.rs crates/simtime/src/combinators.rs crates/simtime/src/executor.rs crates/simtime/src/join.rs crates/simtime/src/rng.rs crates/simtime/src/sleep.rs crates/simtime/src/sync.rs crates/simtime/src/time.rs crates/simtime/src/trace.rs

/root/repo/target/release/deps/libkaas_simtime-27b3f3647dec03b3.rlib: crates/simtime/src/lib.rs crates/simtime/src/channel.rs crates/simtime/src/combinators.rs crates/simtime/src/executor.rs crates/simtime/src/join.rs crates/simtime/src/rng.rs crates/simtime/src/sleep.rs crates/simtime/src/sync.rs crates/simtime/src/time.rs crates/simtime/src/trace.rs

/root/repo/target/release/deps/libkaas_simtime-27b3f3647dec03b3.rmeta: crates/simtime/src/lib.rs crates/simtime/src/channel.rs crates/simtime/src/combinators.rs crates/simtime/src/executor.rs crates/simtime/src/join.rs crates/simtime/src/rng.rs crates/simtime/src/sleep.rs crates/simtime/src/sync.rs crates/simtime/src/time.rs crates/simtime/src/trace.rs

crates/simtime/src/lib.rs:
crates/simtime/src/channel.rs:
crates/simtime/src/combinators.rs:
crates/simtime/src/executor.rs:
crates/simtime/src/join.rs:
crates/simtime/src/rng.rs:
crates/simtime/src/sleep.rs:
crates/simtime/src/sync.rs:
crates/simtime/src/time.rs:
crates/simtime/src/trace.rs:
