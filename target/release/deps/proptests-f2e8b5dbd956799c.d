/root/repo/target/release/deps/proptests-f2e8b5dbd956799c.d: crates/kernels/tests/proptests.rs

/root/repo/target/release/deps/proptests-f2e8b5dbd956799c: crates/kernels/tests/proptests.rs

crates/kernels/tests/proptests.rs:
