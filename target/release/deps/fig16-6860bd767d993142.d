/root/repo/target/release/deps/fig16-6860bd767d993142.d: crates/bench/src/bin/fig16.rs Cargo.toml

/root/repo/target/release/deps/libfig16-6860bd767d993142.rmeta: crates/bench/src/bin/fig16.rs Cargo.toml

crates/bench/src/bin/fig16.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
