/root/repo/target/release/deps/extensions-f231036e78e898c0.d: tests/extensions.rs Cargo.toml

/root/repo/target/release/deps/libextensions-f231036e78e898c0.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
