/root/repo/target/release/deps/fig15-a0048bc380a0a914.d: crates/bench/src/bin/fig15.rs Cargo.toml

/root/repo/target/release/deps/libfig15-a0048bc380a0a914.rmeta: crates/bench/src/bin/fig15.rs Cargo.toml

crates/bench/src/bin/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
