/root/repo/target/release/deps/proptests-87cc471898e28d38.d: crates/simtime/tests/proptests.rs

/root/repo/target/release/deps/proptests-87cc471898e28d38: crates/simtime/tests/proptests.rs

crates/simtime/tests/proptests.rs:
