/root/repo/target/release/deps/failure_and_errors-2a553c5d6da0a0e8.d: tests/failure_and_errors.rs

/root/repo/target/release/deps/failure_and_errors-2a553c5d6da0a0e8: tests/failure_and_errors.rs

tests/failure_and_errors.rs:
