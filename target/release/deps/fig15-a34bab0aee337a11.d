/root/repo/target/release/deps/fig15-a34bab0aee337a11.d: crates/bench/src/bin/fig15.rs Cargo.toml

/root/repo/target/release/deps/libfig15-a34bab0aee337a11.rmeta: crates/bench/src/bin/fig15.rs Cargo.toml

crates/bench/src/bin/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
