/root/repo/target/release/deps/fig10-7f535df9dbcbf87b.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-7f535df9dbcbf87b: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
