/root/repo/target/release/deps/federation-65d3fb82c2a1d1da.d: tests/federation.rs

/root/repo/target/release/deps/federation-65d3fb82c2a1d1da: tests/federation.rs

tests/federation.rs:
