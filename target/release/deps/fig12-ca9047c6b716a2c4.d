/root/repo/target/release/deps/fig12-ca9047c6b716a2c4.d: crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/release/deps/libfig12-ca9047c6b716a2c4.rmeta: crates/bench/src/bin/fig12.rs Cargo.toml

crates/bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
