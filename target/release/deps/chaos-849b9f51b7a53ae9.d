/root/repo/target/release/deps/chaos-849b9f51b7a53ae9.d: tests/chaos.rs Cargo.toml

/root/repo/target/release/deps/libchaos-849b9f51b7a53ae9.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
