/root/repo/target/release/deps/kaas-fce94f19a6154ccb.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libkaas-fce94f19a6154ccb.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
