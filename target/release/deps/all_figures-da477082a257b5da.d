/root/repo/target/release/deps/all_figures-da477082a257b5da.d: crates/bench/src/bin/all_figures.rs Cargo.toml

/root/repo/target/release/deps/liball_figures-da477082a257b5da.rmeta: crates/bench/src/bin/all_figures.rs Cargo.toml

crates/bench/src/bin/all_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
