/root/repo/target/release/deps/failure_and_errors-92bd28388374b2d2.d: tests/failure_and_errors.rs Cargo.toml

/root/repo/target/release/deps/libfailure_and_errors-92bd28388374b2d2.rmeta: tests/failure_and_errors.rs Cargo.toml

tests/failure_and_errors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
