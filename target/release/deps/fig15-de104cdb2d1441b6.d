/root/repo/target/release/deps/fig15-de104cdb2d1441b6.d: crates/bench/src/bin/fig15.rs

/root/repo/target/release/deps/fig15-de104cdb2d1441b6: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
