/root/repo/target/release/deps/chaos-2cd8b0f827d5530f.d: tests/chaos.rs

/root/repo/target/release/deps/chaos-2cd8b0f827d5530f: tests/chaos.rs

tests/chaos.rs:
