/root/repo/target/release/deps/heterogeneous-25914b320ac372a2.d: tests/heterogeneous.rs

/root/repo/target/release/deps/heterogeneous-25914b320ac372a2: tests/heterogeneous.rs

tests/heterogeneous.rs:
