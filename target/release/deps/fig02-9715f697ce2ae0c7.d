/root/repo/target/release/deps/fig02-9715f697ce2ae0c7.d: crates/bench/src/bin/fig02.rs

/root/repo/target/release/deps/fig02-9715f697ce2ae0c7: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
