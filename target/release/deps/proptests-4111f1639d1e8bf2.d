/root/repo/target/release/deps/proptests-4111f1639d1e8bf2.d: crates/quantum/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-4111f1639d1e8bf2.rmeta: crates/quantum/tests/proptests.rs Cargo.toml

crates/quantum/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
