/root/repo/target/release/deps/kaas-275865612cdcb44d.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libkaas-275865612cdcb44d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
