/root/repo/target/release/deps/tracing-b284fe80104c5e0d.d: tests/tracing.rs

/root/repo/target/release/deps/tracing-b284fe80104c5e0d: tests/tracing.rs

tests/tracing.rs:
