//! # KaaS — Kernel-as-a-Service in Rust
//!
//! A full reproduction of *"Kernel-as-a-Service: A Serverless Programming
//! Model for Heterogeneous Hardware Accelerators"* (Pfandzelter et al.,
//! Middleware '23): the KaaS runtime (server, task runners, client API,
//! autoscaler), the delivery-model baselines (time sharing and space
//! sharing), calibrated device models for GPU/FPGA/TPU/QPU/CPU, real
//! kernel implementations, and a benchmark harness regenerating every
//! figure of the paper's evaluation.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`simtime`] — deterministic discrete-event async runtime.
//! * [`net`] — simulated network, serialization, shared memory.
//! * [`accel`] — accelerator device models and power metering.
//! * [`quantum`] — state-vector quantum circuit simulator and VQE.
//! * [`kernels`] — real kernel implementations with work profiles.
//! * [`guest`] — deterministic bytecode interpreter for tenant kernels.
//! * [`core`] — the KaaS runtime itself.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use kaas_accel as accel;
pub use kaas_core as core;
pub use kaas_guest as guest;
pub use kaas_kernels as kernels;
pub use kaas_net as net;
pub use kaas_quantum as quantum;
pub use kaas_simtime as simtime;
